//! Property tests for the bump arena and pools.

use pathalias_arena::{Bump, Pool};
use proptest::prelude::*;

proptest! {
    /// Every pushed string reads back exactly, whatever the chunking.
    #[test]
    fn bump_roundtrip(
        chunk in 1usize..128,
        strings in proptest::collection::vec("[ -~]{0,40}", 0..60),
    ) {
        let mut arena = Bump::with_chunk_size(chunk);
        let spans: Vec<_> = strings.iter().map(|s| arena.push_str(s)).collect();
        for (span, s) in spans.iter().zip(&strings) {
            prop_assert_eq!(arena.str(*span), s.as_str());
        }
        let st = arena.stats();
        prop_assert_eq!(st.allocations, strings.len());
        prop_assert_eq!(st.used, strings.iter().map(|s| s.len()).sum::<usize>());
        prop_assert!(st.reserved >= st.used);
    }

    /// Pool handles stay valid and ordered under interleaved allocation
    /// and mutation.
    #[test]
    fn pool_model(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut pool = Pool::new();
        let handles: Vec<_> = values.iter().map(|&v| pool.alloc(v)).collect();
        prop_assert_eq!(pool.len(), values.len());
        for (h, v) in handles.iter().zip(&values) {
            prop_assert_eq!(pool[*h], *v);
        }
        // Mutate through handles; reads reflect it.
        for h in &handles {
            pool[*h] = pool[*h].wrapping_mul(3);
        }
        for (h, v) in handles.iter().zip(&values) {
            prop_assert_eq!(pool[*h], v.wrapping_mul(3));
        }
        // Iteration order is allocation order.
        let order: Vec<u32> = pool.handles().map(|h| h.raw()).collect();
        let expect: Vec<u32> = (0..values.len() as u32).collect();
        prop_assert_eq!(order, expect);
    }
}
