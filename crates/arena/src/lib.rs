//! Memory allocation substrate for the pathalias reproduction.
//!
//! The 1986 pathalias paper reports that "a buffered `sbrk` scheme for
//! allocation, with no attempt to re-use freed space, gives superior
//! performance in both time and space", because almost all allocation
//! happens during parsing and almost nothing is freed until the program
//! exits. This crate reproduces that allocation discipline in safe Rust:
//!
//! * [`Bump`] — a chunked bump arena for byte/string data. Data is
//!   addressed by [`Span`] handles (chunk index + offset), which keeps the
//!   API free of `unsafe` self-referential lifetimes while preserving the
//!   "allocate forward, never free" behaviour of the original.
//! * [`Pool`] — a typed object pool handing out stable, `Copy`able
//!   [`Handle`]s. This is the index-based Rust idiom for the paper's
//!   pointer-linked `node` and `link` structures.
//! * [`counting`] — a counting wrapper around the system allocator, used
//!   by the benchmark harness to measure bytes and calls for the
//!   allocator comparison (experiment E4 in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use pathalias_arena::{Bump, Pool};
//!
//! let mut names = Bump::new();
//! let span = names.push_str("princeton");
//! assert_eq!(names.str(span), "princeton");
//!
//! let mut pool: Pool<u64> = Pool::new();
//! let h = pool.alloc(42);
//! assert_eq!(pool[h], 42);
//! ```

#![deny(unsafe_code)] // Allowed only in `counting`, with SAFETY comments.
#![warn(missing_docs)]

mod bump;
pub mod counting;
mod pool;

pub use bump::{Bump, BumpStats, Span};
pub use pool::{Handle, Pool};
