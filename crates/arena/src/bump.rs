//! Chunked bump arena for string data.
//!
//! The original pathalias obtained memory from a buffered `sbrk` and
//! never freed it; host names, being the bulk of parse-time data, were
//! laid down end to end in those buffers. [`Bump`] reproduces this:
//! fixed-size chunks are allocated as needed and bytes are bumped into
//! the current chunk. Nothing is ever freed short of dropping the whole
//! arena, and existing data never moves, so [`Span`] handles stay valid
//! for the arena's lifetime.

/// Default chunk size, mirroring the modest buffer the original used on
/// 64 kbyte-segment machines.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// A handle to a byte range stored in a [`Bump`] arena.
///
/// Spans are small, `Copy`, and remain valid for the lifetime of the
/// arena that produced them. Resolving a span from a *different* arena
/// is not memory-unsafe but yields unspecified contents or a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    chunk: u32,
    off: u32,
    len: u32,
}

impl Span {
    /// Length in bytes of the spanned data.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the span is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Allocation statistics for a [`Bump`] arena.
///
/// Used by the allocator experiment (E4) to compare space behaviour with
/// a general-purpose allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BumpStats {
    /// Number of chunks obtained from the system allocator.
    pub chunks: usize,
    /// Total bytes reserved across all chunks.
    pub reserved: usize,
    /// Bytes handed out to callers.
    pub used: usize,
    /// Bytes stranded at chunk tails by oversized requests.
    pub wasted: usize,
    /// Number of allocation requests served.
    pub allocations: usize,
}

/// A chunked bump arena ("buffered sbrk") for bytes and strings.
///
/// # Examples
///
/// ```
/// use pathalias_arena::Bump;
///
/// let mut arena = Bump::new();
/// let a = arena.push_str("ihnp4");
/// let b = arena.push_str("seismo");
/// assert_eq!(arena.str(a), "ihnp4");
/// assert_eq!(arena.str(b), "seismo");
/// assert_eq!(arena.stats().allocations, 2);
/// ```
#[derive(Debug)]
pub struct Bump {
    chunks: Vec<Vec<u8>>,
    chunk_size: usize,
    used: usize,
    wasted: usize,
    allocations: usize,
}

impl Default for Bump {
    fn default() -> Self {
        Self::new()
    }
}

impl Bump {
    /// Creates an arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK)
    }

    /// Creates an arena whose chunks hold `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Bump {
            chunks: Vec::new(),
            chunk_size,
            used: 0,
            wasted: 0,
            allocations: 0,
        }
    }

    /// Copies `bytes` into the arena and returns a handle to the copy.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Span {
        let need = bytes.len();
        // Oversized requests get a dedicated chunk, like an sbrk call
        // larger than the buffering granule.
        let fits_last = self
            .chunks
            .last()
            .is_some_and(|c| c.capacity() - c.len() >= need);
        if !fits_last {
            if let Some(last) = self.chunks.last() {
                self.wasted += last.capacity() - last.len();
            }
            let cap = need.max(self.chunk_size);
            self.chunks.push(Vec::with_capacity(cap));
        }
        let chunk_idx = self.chunks.len() - 1;
        let chunk = &mut self.chunks[chunk_idx];
        let off = chunk.len();
        chunk.extend_from_slice(bytes);
        self.used += need;
        self.allocations += 1;
        Span {
            chunk: u32::try_from(chunk_idx).expect("too many chunks"),
            off: u32::try_from(off).expect("chunk offset overflow"),
            len: u32::try_from(need).expect("allocation too large"),
        }
    }

    /// Copies `s` into the arena and returns a handle to the copy.
    pub fn push_str(&mut self, s: &str) -> Span {
        self.push_bytes(s.as_bytes())
    }

    /// Resolves a span to its bytes.
    ///
    /// # Panics
    ///
    /// Panics if the span does not belong to this arena.
    #[inline]
    pub fn bytes(&self, span: Span) -> &[u8] {
        let chunk = &self.chunks[span.chunk as usize];
        &chunk[span.off as usize..span.off as usize + span.len as usize]
    }

    /// Resolves a span to a string slice.
    ///
    /// # Panics
    ///
    /// Panics if the span does not belong to this arena or the bytes are
    /// not valid UTF-8 (impossible for spans created by [`push_str`]).
    ///
    /// [`push_str`]: Bump::push_str
    #[inline]
    pub fn str(&self, span: Span) -> &str {
        std::str::from_utf8(self.bytes(span)).expect("span does not hold UTF-8")
    }

    /// Returns allocation statistics.
    pub fn stats(&self) -> BumpStats {
        let reserved: usize = self.chunks.iter().map(|c| c.capacity()).sum();
        BumpStats {
            chunks: self.chunks.len(),
            reserved,
            used: self.used,
            wasted: self.wasted,
            allocations: self.allocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let mut b = Bump::new();
        let s = b.push_str("unc");
        assert_eq!(b.str(s), "unc");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_span() {
        let mut b = Bump::new();
        let s = b.push_str("");
        assert_eq!(b.str(s), "");
        assert!(s.is_empty());
    }

    #[test]
    fn data_survives_chunk_growth() {
        let mut b = Bump::with_chunk_size(8);
        let spans: Vec<(Span, String)> = (0..100)
            .map(|i| {
                let name = format!("host{i}");
                (b.push_str(&name), name)
            })
            .collect();
        for (span, name) in &spans {
            assert_eq!(b.str(*span), name);
        }
        assert!(b.stats().chunks > 1, "growth must have chunked");
    }

    #[test]
    fn oversized_request_gets_own_chunk() {
        let mut b = Bump::with_chunk_size(4);
        let big = "a".repeat(100);
        let s = b.push_str(&big);
        assert_eq!(b.str(s), big);
    }

    #[test]
    fn stats_track_use_and_waste() {
        let mut b = Bump::with_chunk_size(10);
        b.push_str("12345678"); // 8 of 10 used.
        b.push_str("abcdef"); // Needs 6, only 2 left: new chunk, 2 wasted.
        let st = b.stats();
        assert_eq!(st.used, 14);
        assert_eq!(st.wasted, 2);
        assert_eq!(st.chunks, 2);
        assert_eq!(st.allocations, 2);
        assert!(st.reserved >= st.used);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = Bump::with_chunk_size(0);
    }

    #[test]
    fn interleaved_reads_and_writes() {
        let mut b = Bump::with_chunk_size(16);
        let a = b.push_str("first");
        assert_eq!(b.str(a), "first");
        let c = b.push_str("second-name-long-enough-to-spill");
        assert_eq!(b.str(a), "first");
        assert_eq!(b.str(c), "second-name-long-enough-to-spill");
    }

    #[test]
    fn non_utf8_bytes_roundtrip() {
        let mut b = Bump::new();
        let s = b.push_bytes(&[0xff, 0x00, 0x7f]);
        assert_eq!(b.bytes(s), &[0xff, 0x00, 0x7f]);
    }
}
