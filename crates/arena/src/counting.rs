//! A counting wrapper around the system allocator.
//!
//! The paper's allocator experiments (Korn & Vo's malloc study) compared
//! time *and space*. To measure space on the Rust side, benchmark
//! binaries install [`CountingAlloc`] as the global allocator and read
//! the counters around the workload under test (experiment E4).
//!
//! The wrapper defers entirely to [`std::alloc::System`] and only
//! maintains atomic counters, so it is safe to install process-wide.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static FREED: AtomicUsize = AtomicUsize::new(0);
static CALLS: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A snapshot of allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Total bytes ever allocated.
    pub allocated: usize,
    /// Total bytes ever freed.
    pub freed: usize,
    /// Number of allocation calls (alloc + realloc).
    pub calls: usize,
    /// High-water mark of live bytes.
    pub peak: usize,
}

impl AllocSnapshot {
    /// Live bytes at snapshot time.
    pub fn live(&self) -> usize {
        self.allocated.saturating_sub(self.freed)
    }

    /// Counter deltas between two snapshots (`self` taken after `before`).
    pub fn since(&self, before: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocated: self.allocated - before.allocated,
            freed: self.freed - before.freed,
            calls: self.calls - before.calls,
            peak: self.peak,
        }
    }
}

/// Reads the current counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocated: ALLOCATED.load(Ordering::Relaxed),
        freed: FREED.load(Ordering::Relaxed),
        calls: CALLS.load(Ordering::Relaxed),
        peak: PEAK.load(Ordering::Relaxed),
    }
}

fn on_alloc(size: usize) {
    let total = ALLOCATED.fetch_add(size, Ordering::Relaxed) + size;
    CALLS.fetch_add(1, Ordering::Relaxed);
    let live = total.saturating_sub(FREED.load(Ordering::Relaxed));
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Global allocator that counts bytes and calls, deferring to the system
/// allocator for all actual memory management.
///
/// # Examples
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pathalias_arena::counting::CountingAlloc =
///     pathalias_arena::counting::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: every method forwards to `System`, which satisfies the
// `GlobalAlloc` contract; the wrapper adds only atomic counter updates,
// which cannot violate allocation invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract and
        // we pass the layout through unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` via this wrapper with
        // the same layout, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: contract forwarded unchanged from the caller.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            FREED.fetch_add(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_math() {
        let before = AllocSnapshot {
            allocated: 100,
            freed: 40,
            calls: 7,
            peak: 90,
        };
        let after = AllocSnapshot {
            allocated: 250,
            freed: 60,
            calls: 9,
            peak: 200,
        };
        let d = after.since(&before);
        assert_eq!(d.allocated, 150);
        assert_eq!(d.freed, 20);
        assert_eq!(d.calls, 2);
        assert_eq!(d.peak, 200);
        assert_eq!(after.live(), 190);
    }

    #[test]
    fn live_saturates() {
        let s = AllocSnapshot {
            allocated: 10,
            freed: 20,
            ..Default::default()
        };
        assert_eq!(s.live(), 0);
    }
}
