//! Typed object pools with stable handles.
//!
//! The original pathalias allocated `node` and `link` structures from its
//! bump arena and wired them together with raw pointers. The safe Rust
//! equivalent is an append-only pool indexed by a typed handle: handles
//! are 32-bit, `Copy`, comparable, and remain valid for the life of the
//! pool, which matches the "nothing is freed until exit" discipline the
//! paper describes.

use std::fmt;
use std::marker::PhantomData;

/// A typed index into a [`Pool`].
///
/// The phantom type parameter prevents handles from one pool type being
/// used with another (e.g. a node handle indexing the link pool), which
/// is the class of bug raw pointers made easy in the original C.
pub struct Handle<T> {
    idx: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// Builds a handle from a raw index.
    ///
    /// Intended for serialization and for iteration helpers; passing an
    /// out-of-range index produces a handle whose accesses panic.
    #[inline]
    pub fn from_raw(idx: u32) -> Self {
        Handle {
            idx,
            _marker: PhantomData,
        }
    }

    /// The raw index value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.idx
    }

    /// The raw index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx
    }
}
impl<T> Eq for Handle<T> {}
impl<T> PartialOrd for Handle<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Handle<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.idx.cmp(&other.idx)
    }
}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.idx.hash(state);
    }
}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.idx)
    }
}

/// An append-only typed pool.
///
/// # Examples
///
/// ```
/// use pathalias_arena::Pool;
///
/// let mut pool = Pool::new();
/// let a = pool.alloc("duke");
/// let b = pool.alloc("unc");
/// assert_eq!(pool[a], "duke");
/// assert_eq!(pool[b], "unc");
/// assert_eq!(pool.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pool<T> {
    items: Vec<T>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool { items: Vec::new() }
    }

    /// Creates an empty pool with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        Pool {
            items: Vec::with_capacity(cap),
        }
    }

    /// Stores `value` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the pool exceeds `u32::MAX` items.
    pub fn alloc(&mut self, value: T) -> Handle<T> {
        let idx = u32::try_from(self.items.len()).expect("pool overflow");
        self.items.push(value);
        Handle::from_raw(idx)
    }

    /// Number of items stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Shared access without panicking.
    #[inline]
    pub fn get(&self, h: Handle<T>) -> Option<&T> {
        self.items.get(h.index())
    }

    /// Mutable access without panicking.
    #[inline]
    pub fn get_mut(&mut self, h: Handle<T>) -> Option<&mut T> {
        self.items.get_mut(h.index())
    }

    /// Iterates over `(handle, item)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (Handle::from_raw(i as u32), v))
    }

    /// Iterates over all handles in allocation order.
    pub fn handles(&self) -> impl Iterator<Item = Handle<T>> {
        (0..self.items.len() as u32).map(Handle::from_raw)
    }

    /// Iterates over items in allocation order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates mutably over items in allocation order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }
}

impl<T> std::ops::Index<Handle<T>> for Pool<T> {
    type Output = T;
    #[inline]
    fn index(&self, h: Handle<T>) -> &T {
        &self.items[h.index()]
    }
}

impl<T> std::ops::IndexMut<Handle<T>> for Pool<T> {
    #[inline]
    fn index_mut(&mut self, h: Handle<T>) -> &mut T {
        &mut self.items[h.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_index() {
        let mut p = Pool::new();
        let a = p.alloc(10);
        let b = p.alloc(20);
        assert_eq!(p[a], 10);
        assert_eq!(p[b], 20);
        p[a] = 11;
        assert_eq!(p[a], 11);
    }

    #[test]
    fn handles_are_dense_and_ordered() {
        let mut p = Pool::new();
        let hs: Vec<_> = (0..5).map(|i| p.alloc(i)).collect();
        for w in hs.windows(2) {
            assert!(w[0] < w[1]);
        }
        let collected: Vec<_> = p.handles().collect();
        assert_eq!(collected, hs);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p: Pool<i32> = Pool::new();
        assert!(p.get(Handle::from_raw(0)).is_none());
    }

    #[test]
    fn iter_pairs() {
        let mut p = Pool::new();
        p.alloc("a");
        p.alloc("b");
        let v: Vec<_> = p.iter().map(|(h, s)| (h.raw(), *s)).collect();
        assert_eq!(v, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn values_mut_updates() {
        let mut p = Pool::new();
        p.alloc(1);
        p.alloc(2);
        for v in p.values_mut() {
            *v *= 10;
        }
        assert_eq!(p.values().copied().collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn debug_format() {
        let h: Handle<i32> = Handle::from_raw(7);
        assert_eq!(format!("{h:?}"), "#7");
    }
}
