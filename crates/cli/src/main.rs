//! The `pathalias` command-line tool.
//!
//! Flag-compatible with the original where the paper describes
//! behaviour, plus two modern subcommands:
//!
//! ```text
//! pathalias [-l host] [-c] [-i] [-v] [-n] [-s] [-t host]... [file ...]
//! pathalias mapgen [--hosts N] [--seed N] [--paper-scale]
//! pathalias query -d route-file destination [user]
//! pathalias serve (--padb F | --routes F | --map F...) [--listen addr] [--unix path]
//! pathalias serve (--connect addr | --unix path) (--query host | --stats | ...)
//! ```
//!
//! With no input files, the map is read from standard input. Routes go
//! to standard output; warnings, unreachable hosts and statistics go to
//! standard error.

use pathalias_core::{Options, Parsed, Pathalias, Sort};
use pathalias_mailer::RouteDb;
use pathalias_mapgen::{generate, MapSpec};
use pathalias_server::{Client, Logger, MapSource, Server, ServerConfig, UdpClient};
use std::io::{Read, Write};
use std::process::ExitCode;

mod args;

use args::{
    Backend, ClientAction, ClientArgs, Command, DaemonArgs, FreezeArgs, MapgenArgs, QueryArgs,
    RunArgs, ServeArgs, SourceKind,
};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(Command::Run(run)) => cmd_run(run),
        Ok(Command::Mapgen(mg)) => cmd_mapgen(mg),
        Ok(Command::Freeze(fz)) => cmd_freeze(fz),
        Ok(Command::Query(q)) => cmd_query(q),
        Ok(Command::Serve(ServeArgs::Daemon(d))) => cmd_serve_daemon(*d),
        Ok(Command::Serve(ServeArgs::Client(c))) => cmd_serve_client(*c),
        Ok(Command::Help) => {
            print!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("pathalias: {msg}");
            eprint!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}

fn cmd_run(run: RunArgs) -> ExitCode {
    let options = Options {
        local: run.local,
        ignore_case: run.ignore_case,
        with_costs: run.with_costs,
        sort: if run.sort_by_name {
            Sort::ByName
        } else {
            Sort::ByCost
        },
        trace: run.trace,
        second_best: run.second_best,
        ..Options::default()
    };
    let verbose = run.verbose;
    let mut pa = Pathalias::with_options(options);

    if run.files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("pathalias: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = pa.parse_str("<stdin>", &text) {
            eprintln!("pathalias: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        for f in &run.files {
            if let Err(e) = pa.parse_file(f) {
                eprintln!("pathalias: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match pa.run() {
        Ok(out) => {
            print!("{}", out.rendered);
            for w in &out.warnings {
                eprintln!("pathalias: warning: {w}");
            }
            if !out.tree.trace.is_empty() {
                eprint!(
                    "{}",
                    pathalias_core::format_trace(out.tree.frozen(), &out.tree.trace)
                );
            }
            if !out.unreachable.is_empty() {
                eprintln!(
                    "pathalias: {} unreachable host(s): {}",
                    out.unreachable.len(),
                    out.unreachable.join(", ")
                );
            }
            if verbose {
                let s = out.tree.stats;
                eprintln!(
                    "pathalias: {} nodes, {} links, {} mapped",
                    pa.graph().node_count(),
                    pa.graph().link_count(),
                    s.mapped
                );
                eprintln!(
                    "pathalias: heap: {} pushes, {} pops ({} stale); {} relaxations",
                    s.pushes, s.pops, s.stale_pops, s.relaxations
                );
                eprintln!(
                    "pathalias: penalties: {} gate, {} relay, {} mixed; back links: {} in {} rounds",
                    s.gate_penalties,
                    s.relay_penalties,
                    s.mixed_penalties,
                    s.invented_links,
                    s.backlink_rounds
                );
                eprintln!(
                    "pathalias: timings: parse {:?}, freeze {:?}, map {:?}, print {:?}",
                    out.timings.parse, out.timings.freeze, out.timings.map, out.timings.print
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pathalias: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_mapgen(mg: MapgenArgs) -> ExitCode {
    let spec = if mg.paper_scale {
        MapSpec::usenet_1986(mg.seed)
    } else {
        MapSpec::small(mg.hosts, mg.seed)
    };
    let map = generate(&spec);
    print!("{}", map.concatenated());
    eprintln!(
        "mapgen: {} hosts, {} links, {} networks, {} domains; home hub: {}",
        map.stats.hosts, map.stats.links, map.stats.networks, map.stats.domains, map.home
    );
    ExitCode::SUCCESS
}

/// `pathalias freeze`: run parse → build → freeze and write the
/// snapshot, so later runs (and daemons) can cold-start from it.
fn cmd_freeze(fz: FreezeArgs) -> ExitCode {
    let options = Options {
        ignore_case: fz.ignore_case,
        ..Options::default()
    };
    let mut parsed = Parsed::new();
    if fz.files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("pathalias: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        parsed.push_str("<stdin>", &text);
    } else {
        for f in &fz.files {
            if let Err(e) = parsed.push_file(f) {
                eprintln!("pathalias: {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let built = match parsed.build(&options) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("pathalias: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut frozen = built.freeze();
    for w in frozen.warnings() {
        eprintln!("pathalias: warning: {w}");
    }
    // The snapshot carries the reverse index too, so a daemon serving
    // it answers `PATH * dst` without an O(n+m) transpose on startup.
    // `--ch` additionally stores the contraction hierarchy over the
    // default cost model's lower-bound weights, so the daemon's PATH
    // fast tier needs no freeze-time work either.
    if fz.ch {
        let graph = frozen.graph().clone();
        let weights = pathalias_router::ch_weights(&graph, &pathalias_core::CostModel::default());
        let ch = pathalias_core::ChIndex::build(&graph, &weights);
        frozen = frozen.with_hierarchy(std::sync::Arc::new(ch));
    }
    if let Err(e) = frozen.write_snapshot_all(&fz.out) {
        eprintln!("pathalias: writing {}: {e}", fz.out);
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(&fz.out).map(|m| m.len()).unwrap_or(0);
    let g = frozen.graph();
    eprintln!(
        "pathalias: froze {} nodes, {} edges into {} ({} bytes; parse {:?}, freeze {:?})",
        g.node_count(),
        g.edge_count(),
        fz.out,
        bytes,
        built.build_time,
        frozen.freeze_time,
    );
    ExitCode::SUCCESS
}

fn cmd_serve_daemon(d: DaemonArgs) -> ExitCode {
    let options = Options {
        local: d.local.clone(),
        ignore_case: d.ignore_case,
        ..Options::default()
    };
    // Per-map `:cache=N` suffixes become capacity overrides; maps
    // without one share the daemon-wide --cache.
    let cache_capacities: Vec<(String, usize)> = d
        .map_set
        .iter()
        .filter_map(|e| e.cache.map(|c| (e.name.clone(), c)))
        .collect();
    let maps: Vec<(String, MapSource)> = if !d.map_set.is_empty() {
        // Several named maps, each from its own source shape. The
        // pipeline options (-l, -i) apply to every map/pagf member; a
        // `:l=HOST` suffix overrides the local host for that one map.
        d.map_set
            .into_iter()
            .map(|entry| {
                let path = || entry.paths[0].clone().into();
                let entry_options = Options {
                    local: entry.local.clone().or_else(|| options.local.clone()),
                    ..options.clone()
                };
                let source = match entry.kind {
                    SourceKind::Map => MapSource::map_files(
                        entry.paths.iter().map(Into::into).collect(),
                        entry_options,
                    ),
                    SourceKind::Routes => MapSource::Routes(path()),
                    SourceKind::Padb => MapSource::Padb(path()),
                    SourceKind::PadbMmap => MapSource::PadbMmap(path()),
                    SourceKind::Pagf => MapSource::frozen_snapshot(path(), entry_options),
                };
                (entry.name, source)
            })
            .collect()
    } else {
        let source = if let Some(path) = d.padb {
            match d.backend {
                Backend::PadbMmap => MapSource::PadbMmap(path.into()),
                Backend::Memory | Backend::Pagf => MapSource::Padb(path.into()),
            }
        } else if let Some(path) = d.pagf {
            let options = Options {
                local: d.local,
                ..Options::default()
            };
            MapSource::frozen_snapshot(path.into(), options)
        } else if let Some(path) = d.routes {
            MapSource::Routes(path.into())
        } else {
            MapSource::map_files(d.map_files.into_iter().map(Into::into).collect(), options)
        };
        vec![(pathalias_server::DEFAULT_MAP_NAME.to_string(), source)]
    };
    let multi_map = maps.len() > 1;
    let config = ServerConfig {
        maps,
        default_map: d.default_map,
        tcp: d.listen,
        unix: d.unix.map(Into::into),
        udp: d.udp,
        workers: d.workers,
        cache_capacity: d.cache,
        cache_capacities,
        cache_shards: d.shards,
        watch: d
            .watch
            .then(|| std::time::Duration::from_millis(d.watch_interval_ms)),
        // Structured key=value diagnostics on stderr, at the level
        // PATHALIAS_LOG asks for (default info). The announce lines
        // below stay on stdout for scripts to scrape.
        logger: Logger::from_env(),
    };
    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("pathalias: serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Announce lines go out with write errors ignored: a consumer
    // that reads only the address line and closes the pipe (`| head
    // -1`, a test scraping the port) must not panic the daemon out of
    // existence mid-startup.
    let mut stdout = std::io::stdout();
    if let Some(addr) = handle.tcp_addr() {
        let _ = writeln!(stdout, "pathalias-server listening on tcp {addr}");
    }
    if let Some(addr) = handle.udp_addr() {
        let _ = writeln!(stdout, "pathalias-server listening on udp {addr}");
    }
    if let Some(path) = handle.unix_path() {
        let _ = writeln!(
            stdout,
            "pathalias-server listening on unix {}",
            path.display()
        );
    }
    if multi_map {
        let default_name = handle.default_map_name().to_string();
        for (name, kind, generation, entries) in handle.map_infos() {
            let marker = if name == default_name {
                " [default]"
            } else {
                ""
            };
            let _ = writeln!(
                stdout,
                "pathalias-server map {name} ({kind}): {entries} entries \
                 (generation {generation}){marker}"
            );
        }
    }
    let (generation, entries) = handle.table_info();
    let _ = writeln!(
        stdout,
        "pathalias-server serving {entries} entries (generation {generation})"
    );
    // Scripts scrape the ephemeral port from the lines above.
    let _ = stdout.flush();
    handle.wait();
    ExitCode::SUCCESS
}

/// Client verbs over the daemon's UDP endpoint: one datagram per
/// request, output shapes identical to the TCP/Unix path so scripts
/// can switch transports without re-parsing. The argument parser only
/// lets the single-line verbs through; a multi-host `--query` becomes
/// one datagram per host (there is no MQUERY framing in a datagram).
fn cmd_serve_client_udp(c: &ClientArgs, addr: &str) -> ExitCode {
    let mut client = match UdpClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pathalias: serve: connecting: {e}");
            return ExitCode::FAILURE;
        }
    };
    let map = c.map_name.as_deref();
    let outcome = match &c.action {
        ClientAction::Query { hosts, user } => {
            let mut missing = false;
            for host in hosts {
                match client.query_on(map, host, user.as_deref()) {
                    Ok(Some(route)) => println!("{route}"),
                    Ok(None) => {
                        eprintln!("pathalias: no route to {host}");
                        missing = true;
                    }
                    Err(e) => {
                        eprintln!("pathalias: serve: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if missing {
                return ExitCode::FAILURE;
            }
            Ok(())
        }
        ClientAction::Path { src, dst } if src == "*" => match client.via_on(map, dst) {
            Ok(Some(entries)) => {
                for (name, cost) in &entries {
                    println!("{name}\t{cost}");
                }
                Ok(())
            }
            Ok(None) => {
                eprintln!("pathalias: no host {dst}");
                return ExitCode::FAILURE;
            }
            Err(e) => Err(e),
        },
        ClientAction::Path { src, dst } => match client.path_on(map, src, dst) {
            Ok(Some(info)) => {
                println!("{}", info.route);
                eprintln!("pathalias: cost {} over {} hop(s)", info.cost, info.hops);
                Ok(())
            }
            Ok(None) => {
                eprintln!("pathalias: no route from {src} to {dst}");
                return ExitCode::FAILURE;
            }
            Err(e) => Err(e),
        },
        ClientAction::Stats => client.stats_on(map).map(|s| println!("{s}")),
        ClientAction::Health => client.health_on(map).map(|s| println!("{s}")),
        ClientAction::Maps => client.maps().map(|info| {
            for name in &info.names {
                if *name == info.default {
                    println!("{name} (default)");
                } else {
                    println!("{name}");
                }
            }
        }),
        // The parser rejects the session and multi-line verbs before
        // we get here.
        _ => unreachable!("parser admits only datagram-shaped verbs over --udp-connect"),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pathalias: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve_client(c: ClientArgs) -> ExitCode {
    if let Some(addr) = c.udp.clone() {
        return cmd_serve_client_udp(&c, &addr);
    }
    let client = if let Some(addr) = &c.connect {
        Client::connect(addr.as_str())
    } else {
        #[cfg(unix)]
        {
            Client::connect_unix(c.unix.as_deref().expect("parser enforces --unix"))
        }
        #[cfg(not(unix))]
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
    };
    let mut client = match client {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pathalias: serve: connecting: {e}");
            return ExitCode::FAILURE;
        }
    };
    let map = c.map_name.as_deref();
    let outcome = match &c.action {
        ClientAction::Query { hosts, user } if hosts.len() == 1 => {
            match client.query_on(map, &hosts[0], user.as_deref()) {
                Ok(Some(route)) => {
                    println!("{route}");
                    Ok(())
                }
                Ok(None) => {
                    eprintln!("pathalias: no route to {}", hosts[0]);
                    return ExitCode::FAILURE;
                }
                Err(e) => Err(e),
            }
        }
        // Several --query flags: one batched round trip (MQUERY when
        // the daemon speaks v2, pipelined v1 otherwise). One line per
        // host, in order; missing routes fail the exit code.
        ClientAction::Query { hosts, user } => {
            let queries: Vec<(&str, Option<&str>)> = hosts
                .iter()
                .map(|h| (h.as_str(), user.as_deref()))
                .collect();
            match client.query_batch_on(map, &queries) {
                Ok(results) => {
                    let mut missing = false;
                    for (host, result) in hosts.iter().zip(results) {
                        match result {
                            Some(route) => println!("{route}"),
                            None => {
                                eprintln!("pathalias: no route to {host}");
                                missing = true;
                            }
                        }
                    }
                    if missing {
                        return ExitCode::FAILURE;
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
        // `--path * dst` lists dst's one-hop predecessors; otherwise
        // the route goes to stdout (like --query) with cost and hops
        // on stderr for humans.
        ClientAction::Path { src, dst } if src == "*" => match client.via_on(map, dst) {
            Ok(Some(entries)) => {
                for (name, cost) in &entries {
                    println!("{name}\t{cost}");
                }
                Ok(())
            }
            Ok(None) => {
                eprintln!("pathalias: no host {dst}");
                return ExitCode::FAILURE;
            }
            Err(e) => Err(e),
        },
        ClientAction::Path { src, dst } => match client.path_on(map, src, dst) {
            Ok(Some(info)) => {
                println!("{}", info.route);
                eprintln!("pathalias: cost {} over {} hop(s)", info.cost, info.hops);
                Ok(())
            }
            Ok(None) => {
                eprintln!("pathalias: no route from {src} to {dst}");
                return ExitCode::FAILURE;
            }
            Err(e) => Err(e),
        },
        ClientAction::Stats => client.stats_on(map).map(|s| println!("{s}")),
        ClientAction::Reload => client.reload_on(map).map(|s| println!("{s}")),
        ClientAction::Health => client.health_on(map).map(|s| println!("{s}")),
        // The exposition already ends every line with '\n'.
        ClientAction::Metrics => client.metrics_on(map).map(|text| print!("{text}")),
        ClientAction::Slowlog => client.slowlog_on(map).map(|lines| {
            for line in &lines {
                println!("{line}");
            }
        }),
        ClientAction::Maps => client.maps().map(|info| {
            for name in &info.names {
                if *name == info.default {
                    println!("{name} (default)");
                } else {
                    println!("{name}");
                }
            }
        }),
        ClientAction::Shutdown => {
            // shutdown() consumes the client (the server closes the
            // connection after answering).
            return match client.shutdown() {
                Ok(payload) => {
                    println!("{payload}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("pathalias: serve: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    };
    match outcome {
        Ok(()) => {
            let _ = client.quit();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pathalias: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(q: QueryArgs) -> ExitCode {
    let text = match std::fs::read_to_string(&q.db) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pathalias: reading {}: {e}", q.db);
            return ExitCode::FAILURE;
        }
    };
    let db = match RouteDb::from_output(&text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("pathalias: {}: {e}", q.db);
            return ExitCode::FAILURE;
        }
    };
    let user = q.user.as_deref().unwrap_or("%s");
    match db.route_to(&q.dest, user) {
        Some(route) => {
            println!("{route}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("pathalias: no route to {}", q.dest);
            ExitCode::FAILURE
        }
    }
}
