//! Hand-rolled argument parsing (the original predates getopt_long,
//! and the grammar is small enough not to warrant a dependency).

/// Usage text.
pub const USAGE: &str = "\
usage: pathalias [-l host] [-c] [-i] [-v] [-n] [-s] [-t host]... [file ...]
       pathalias mapgen [--hosts N] [--seed N] [--paper-scale]
       pathalias query -d route-file destination [user]

options:
  -l host   local host (mapping source); default: first host in input
  -c        print costs
  -i        ignore case in host names
  -v        verbose statistics on stderr
  -n        sort output by name instead of cost
  -s        also compute second-best (domain-free) routes
  -t host   trace routing decisions for host (repeatable)
  -h        this help
";

/// Parsed command line.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// Run the pipeline.
    Run(RunArgs),
    /// Generate a synthetic map.
    Mapgen(MapgenArgs),
    /// Query a route database.
    Query(QueryArgs),
    /// Print usage.
    Help,
}

/// Arguments for the main pipeline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RunArgs {
    /// `-l`.
    pub local: Option<String>,
    /// `-c`.
    pub with_costs: bool,
    /// `-i`.
    pub ignore_case: bool,
    /// `-v`.
    pub verbose: bool,
    /// `-n`.
    pub sort_by_name: bool,
    /// `-s`.
    pub second_best: bool,
    /// `-t`, repeatable.
    pub trace: Vec<String>,
    /// Input files; empty means stdin.
    pub files: Vec<String>,
}

/// Arguments for `mapgen`.
#[derive(Debug, PartialEq, Eq)]
pub struct MapgenArgs {
    /// `--hosts`.
    pub hosts: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--paper-scale`.
    pub paper_scale: bool,
}

impl Default for MapgenArgs {
    fn default() -> Self {
        MapgenArgs {
            hosts: 500,
            seed: 1986,
            paper_scale: false,
        }
    }
}

/// Arguments for `query`.
#[derive(Debug, PartialEq, Eq)]
pub struct QueryArgs {
    /// `-d` route file.
    pub db: String,
    /// Destination host or domain name.
    pub dest: String,
    /// Optional user (default leaves the `%s` marker in place).
    pub user: Option<String>,
}

/// Parses an argument vector (without argv[0]).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    match argv.first().map(String::as_str) {
        Some("mapgen") => parse_mapgen(&argv[1..]),
        Some("query") => parse_query(&argv[1..]),
        Some("-h") | Some("--help") | Some("help") => Ok(Command::Help),
        _ => parse_run(argv),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_run(argv: &[String]) -> Result<Command, String> {
    let mut run = RunArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-l" => run.local = Some(take_value("-l", &mut it)?.clone()),
            "-c" => run.with_costs = true,
            "-i" => run.ignore_case = true,
            "-v" => run.verbose = true,
            "-n" => run.sort_by_name = true,
            "-s" => run.second_best = true,
            "-t" => run.trace.push(take_value("-t", &mut it)?.clone()),
            "-h" | "--help" => return Ok(Command::Help),
            f if f.starts_with('-') && f.len() > 1 => {
                return Err(format!("unknown flag {f}"));
            }
            file => run.files.push(file.to_string()),
        }
    }
    Ok(Command::Run(run))
}

fn parse_mapgen(argv: &[String]) -> Result<Command, String> {
    let mut mg = MapgenArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hosts" => {
                mg.hosts = take_value("--hosts", &mut it)?
                    .parse()
                    .map_err(|_| "--hosts wants a number".to_string())?;
            }
            "--seed" => {
                mg.seed = take_value("--seed", &mut it)?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?;
            }
            "--paper-scale" => mg.paper_scale = true,
            other => return Err(format!("mapgen: unknown argument {other}")),
        }
    }
    Ok(Command::Mapgen(mg))
}

fn parse_query(argv: &[String]) -> Result<Command, String> {
    let mut db: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-d" => db = Some(take_value("-d", &mut it)?.clone()),
            other if other.starts_with('-') => {
                return Err(format!("query: unknown flag {other}"));
            }
            p => positional.push(p.to_string()),
        }
    }
    let db = db.ok_or_else(|| "query requires -d route-file".to_string())?;
    let mut pos = positional.into_iter();
    let dest = pos
        .next()
        .ok_or_else(|| "query requires a destination".to_string())?;
    let user = pos.next();
    if pos.next().is_some() {
        return Err("query takes at most destination and user".to_string());
    }
    Ok(Command::Query(QueryArgs { db, dest, user }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_run() {
        let Command::Run(r) = parse(&v(&[])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r, RunArgs::default());
    }

    #[test]
    fn full_run_flags() {
        let Command::Run(r) = parse(&v(&[
            "-l", "unc", "-c", "-i", "-v", "-n", "-s", "-t", "duke", "-t", "phs", "usenet.map",
            "arpa.map",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.local.as_deref(), Some("unc"));
        assert!(r.with_costs && r.ignore_case && r.verbose && r.sort_by_name && r.second_best);
        assert_eq!(r.trace, vec!["duke", "phs"]);
        assert_eq!(r.files, vec!["usenet.map", "arpa.map"]);
    }

    #[test]
    fn missing_value() {
        assert!(parse(&v(&["-l"])).is_err());
        assert!(parse(&v(&["-t"])).is_err());
    }

    #[test]
    fn unknown_flag() {
        assert!(parse(&v(&["-q"])).is_err());
    }

    #[test]
    fn mapgen_args() {
        let Command::Mapgen(m) =
            parse(&v(&["mapgen", "--hosts", "800", "--seed", "7"])).unwrap()
        else {
            panic!("expected mapgen");
        };
        assert_eq!(m.hosts, 800);
        assert_eq!(m.seed, 7);
        assert!(!m.paper_scale);

        let Command::Mapgen(m) = parse(&v(&["mapgen", "--paper-scale"])).unwrap() else {
            panic!("expected mapgen");
        };
        assert!(m.paper_scale);
    }

    #[test]
    fn mapgen_bad_number() {
        assert!(parse(&v(&["mapgen", "--hosts", "many"])).is_err());
    }

    #[test]
    fn query_args() {
        let Command::Query(q) =
            parse(&v(&["query", "-d", "routes.txt", "caip.rutgers.edu", "pleasant"])).unwrap()
        else {
            panic!("expected query");
        };
        assert_eq!(q.db, "routes.txt");
        assert_eq!(q.dest, "caip.rutgers.edu");
        assert_eq!(q.user.as_deref(), Some("pleasant"));
    }

    #[test]
    fn query_requires_db_and_dest() {
        assert!(parse(&v(&["query", "dest"])).is_err());
        assert!(parse(&v(&["query", "-d", "f"])).is_err());
        assert!(parse(&v(&["query", "-d", "f", "a", "b", "c"])).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&v(&["-h"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn single_dash_is_a_file() {
        // "-" conventionally means stdin; we treat it as a file name
        // and let the caller decide.
        let Command::Run(r) = parse(&v(&["-"])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.files, vec!["-"]);
    }
}
