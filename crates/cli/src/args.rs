//! Hand-rolled argument parsing (the original predates getopt_long,
//! and the grammar is small enough not to warrant a dependency).

/// Usage text.
pub const USAGE: &str = "\
usage: pathalias [-l host] [-c] [-i] [-v] [-n] [-s] [-t host]... [file ...]
       pathalias mapgen [--hosts N] [--seed N] [--paper-scale]
       pathalias freeze -o out.pagf [-i] [--ch] [file ...]
       pathalias query -d route-file destination [user]
       pathalias serve (--padb F | --routes F | --map F... | --pagf F
                        | --map-set NAME=KIND:PATHS... [--default-map NAME])
                 [--backend B]
                 [--listen addr] [--unix path] [--udp addr] [--workers N]
                 [--cache N] [--shards N]
                 [--watch [--watch-interval-ms N]] [-l host] [-i]
       pathalias serve (--connect addr | --unix path | --udp-connect addr)
                 [--map-name NAME]
                 (--query host... [--user u] | --path src dst | --stats
                  | --reload | --health | --maps | --metrics | --slowlog
                  | --shutdown)

options:
  -l host   local host (mapping source); default: first host in input
  -c        print costs
  -i        ignore case in host names
  -v        verbose statistics on stderr
  -n        sort output by name instead of cost
  -s        also compute second-best (domain-free) routes
  -t host   trace routing decisions for host (repeatable)
  -h        this help

freeze (write a PAGF1 frozen-graph snapshot):
  -o F      output snapshot file (required)
  -i        ignore case in host names (baked into the snapshot)
  --ch      also build and store the contraction-hierarchy section, so
            a daemon serving the snapshot gets the PATH fast tier with
            no startup work
  file ...  map files (standard input when omitted)

serve (daemon mode; default listen 127.0.0.1:4175):
  --padb F      serve a PADB1 disk database
  --routes F    serve a linear route file (pathalias output)
  --map F...    run the full pipeline on map file(s); RELOAD re-runs it
  --pagf F      cold-start from a PAGF1 snapshot (pathalias freeze
                output): the pipeline re-enters at the frozen stage,
                skipping parse/build/freeze
  --backend B   memory (default: load the table), padb-mmap (serve the
                PADB1 file in place through the page cache; requires
                --padb), or pagf (requires --pagf)
  --listen A    TCP listen address (port 0 = ephemeral, printed on start)
  --unix P      also (or only) listen on a Unix socket
  --udp A       also (or only) answer single-shot datagram queries on
                this UDP address (one request line per datagram)
  --workers N   event-loop worker threads (default: one per core, max 8)
  --cache N     lookup-cache capacity in entries (default 4096)
  --shards N    lookup-cache shard count (default 8)
  --watch       poll the source file(s) and hot-reload when they change
                (with --map-set, each map reloads independently)
  --watch-interval-ms N   watch poll interval (default 2000)
  --map-set NAME=KIND:PATHS[:cache=N][:l=HOST]   serve several named
                maps at once (repeatable). KIND is map, routes, padb,
                padb-mmap or pagf; PATHS is one file (comma-separated
                list for KIND=map); a trailing :cache=N sizes this
                map's lookup cache (entries; default --cache) and a
                trailing :l=HOST overrides the local host for this
                map's pipeline (KIND=map/pagf; default -l). Example:
                  --map-set global=pagf:world.pagf:cache=65536 \\
                  --map-set regional=map:east.map,west.map:l=gateway
  --default-map NAME   the map unqualified queries hit (default: the
                first --map-set entry)

serve (client mode):
  --connect A   talk to a daemon over TCP
  --unix P      talk to a daemon over a Unix socket
  --udp-connect A   talk to a daemon's UDP endpoint (one datagram per
                request; only --query/--path/--stats/--health/--maps)
  --query HOST  print the route to HOST (with --user substituted);
                repeatable: several hosts go as one batched round trip
  --path SRC DST  print the cheapest route from SRC to DST (protocol
                v2; needs a map/pagf-backed daemon). SRC `*` lists the
                one-hop predecessors of DST with their link costs
  --map-name N  run the verb against map namespace N (protocol v2)
  --stats | --reload | --health | --shutdown   the other protocol verbs
  --maps        list the map namespaces the daemon serves
  --metrics     scrape latency histograms and counters in Prometheus
                text format (protocol v2)
  --slowlog     print the daemon's worst recent requests, slowest
                first (protocol v2)
";

/// Parsed command line.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// Run the pipeline.
    Run(RunArgs),
    /// Generate a synthetic map.
    Mapgen(MapgenArgs),
    /// Freeze map files into a PAGF1 snapshot.
    Freeze(FreezeArgs),
    /// Query a route database.
    Query(QueryArgs),
    /// Run (or talk to) the route-query daemon.
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

/// Arguments for the main pipeline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RunArgs {
    /// `-l`.
    pub local: Option<String>,
    /// `-c`.
    pub with_costs: bool,
    /// `-i`.
    pub ignore_case: bool,
    /// `-v`.
    pub verbose: bool,
    /// `-n`.
    pub sort_by_name: bool,
    /// `-s`.
    pub second_best: bool,
    /// `-t`, repeatable.
    pub trace: Vec<String>,
    /// Input files; empty means stdin.
    pub files: Vec<String>,
}

/// Arguments for `mapgen`.
#[derive(Debug, PartialEq, Eq)]
pub struct MapgenArgs {
    /// `--hosts`.
    pub hosts: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--paper-scale`.
    pub paper_scale: bool,
}

impl Default for MapgenArgs {
    fn default() -> Self {
        MapgenArgs {
            hosts: 500,
            seed: 1986,
            paper_scale: false,
        }
    }
}

/// Arguments for `freeze`.
#[derive(Debug, PartialEq, Eq)]
pub struct FreezeArgs {
    /// `-o` output snapshot path.
    pub out: String,
    /// `-i`.
    pub ignore_case: bool,
    /// `--ch`: build and store the contraction-hierarchy section.
    pub ch: bool,
    /// Input map files; empty means stdin.
    pub files: Vec<String>,
}

/// Arguments for `query`.
#[derive(Debug, PartialEq, Eq)]
pub struct QueryArgs {
    /// `-d` route file.
    pub db: String,
    /// Destination host or domain name.
    pub dest: String,
    /// Optional user (default leaves the `%s` marker in place).
    pub user: Option<String>,
}

/// What the `serve` subcommand should do.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeArgs {
    /// Run the daemon.
    Daemon(Box<DaemonArgs>),
    /// Talk to a running daemon.
    Client(Box<ClientArgs>),
}

/// How the daemon holds its table.
#[derive(Debug, Default, PartialEq, Eq, Clone, Copy)]
pub enum Backend {
    /// Load the table into memory (every source shape).
    #[default]
    Memory,
    /// Serve the PADB1 file in place through the kernel page cache —
    /// tables larger than memory work; requires `--padb`.
    PadbMmap,
    /// Cold-start from a PAGF1 frozen-graph snapshot, re-entering the
    /// pipeline at the frozen stage; requires `--pagf`.
    Pagf,
}

/// The source shape of one `--map-set` member.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum SourceKind {
    /// `map:` — map files through the full pipeline.
    Map,
    /// `routes:` — a linear route file.
    Routes,
    /// `padb:` — a PADB1 database loaded into memory.
    Padb,
    /// `padb-mmap:` — a PADB1 database served in place.
    PadbMmap,
    /// `pagf:` — a PAGF1 frozen-graph snapshot.
    Pagf,
}

/// One `--map-set NAME=KIND:PATHS` entry.
#[derive(Debug, PartialEq, Eq, Clone)]
pub struct MapSetEntry {
    /// The namespace name (`@name` on the wire).
    pub name: String,
    /// The source shape.
    pub kind: SourceKind,
    /// Source files: exactly one, except `KIND=map` which takes a
    /// comma-separated list.
    pub paths: Vec<String>,
    /// `:cache=N` suffix: this map's lookup-cache capacity in entries;
    /// `None` falls back to the daemon-wide `--cache`.
    pub cache: Option<usize>,
    /// `:l=HOST` suffix: this map's local host (the pipeline's `-l`);
    /// `None` falls back to the daemon-wide `-l`.
    pub local: Option<String>,
}

/// Parses one `NAME=KIND:PATHS[:cache=N][:l=HOST]` map-set spec.
fn parse_map_set_entry(spec: &str) -> Result<MapSetEntry, String> {
    let (name, rest) = spec.split_once('=').ok_or_else(|| {
        format!("--map-set wants NAME=KIND:PATHS[:cache=N][:l=HOST], got `{spec}`")
    })?;
    // The server's wire-format rule is the single source of truth for
    // what a namespace may be called.
    if !pathalias_server::valid_map_name(name) {
        return Err(format!(
            "--map-set: map name `{name}` must be non-empty, without whitespace, `,` or `@`"
        ));
    }
    // The option suffixes come off the tail (in either order) before
    // the kind split, so a path may still contain `:`
    // (`routes:some:odd:file` keeps working).
    let mut rest = rest;
    let mut cache: Option<usize> = None;
    let mut local: Option<String> = None;
    while let Some((head, tail)) = rest.rsplit_once(':') {
        if let Some(n) = tail.strip_prefix("cache=") {
            if cache.is_some() {
                return Err(format!("--map-set `{name}`: duplicate cache= suffix"));
            }
            let n: usize = n.parse().map_err(|_| {
                format!(
                    "--map-set `{name}`: cache=`{n}` wants a capacity in entries \
                     (e.g. :cache=1024)"
                )
            })?;
            if n == 0 {
                return Err(format!(
                    "--map-set `{name}`: cache=0 would disable lookups; \
                     omit the suffix to use the daemon-wide --cache"
                ));
            }
            cache = Some(n);
        } else if let Some(host) = tail.strip_prefix("l=") {
            if local.is_some() {
                return Err(format!("--map-set `{name}`: duplicate l= suffix"));
            }
            if host.is_empty() {
                return Err(format!(
                    "--map-set `{name}`: l= wants a host name (e.g. :l=gateway)"
                ));
            }
            local = Some(host.to_string());
        } else {
            break;
        }
        rest = head;
    }
    let (kind, arg) = rest
        .split_once(':')
        .ok_or_else(|| format!("--map-set `{name}` wants KIND:PATHS after `=`"))?;
    let kind = match kind {
        "map" => SourceKind::Map,
        "routes" => SourceKind::Routes,
        "padb" => SourceKind::Padb,
        "padb-mmap" => SourceKind::PadbMmap,
        "pagf" => SourceKind::Pagf,
        other => {
            return Err(format!(
                "--map-set `{name}`: unknown kind `{other}` (want map, routes, padb, \
                 padb-mmap or pagf)"
            ))
        }
    };
    let paths: Vec<String> = match kind {
        // Only the map pipeline takes several files.
        SourceKind::Map => arg.split(',').map(str::to_string).collect(),
        _ => vec![arg.to_string()],
    };
    if paths.iter().any(String::is_empty) {
        return Err(format!("--map-set `{name}`: empty path in `{arg}`"));
    }
    // Only the pipeline kinds have a local host to name; on the rest
    // the suffix would be silently dead, which reads like a typo.
    if local.is_some() && !matches!(kind, SourceKind::Map | SourceKind::Pagf) {
        return Err(format!(
            "--map-set `{name}`: l= only applies to map/pagf members \
             (routes/padb tables carry no local host)"
        ));
    }
    Ok(MapSetEntry {
        name: name.to_string(),
        kind,
        paths,
        cache,
        local,
    })
}

/// Daemon-mode arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct DaemonArgs {
    /// `--padb`: serve a PADB1 disk database.
    pub padb: Option<String>,
    /// `--backend`: how the table is held.
    pub backend: Backend,
    /// `--routes`: serve a linear route file.
    pub routes: Option<String>,
    /// `--pagf`: cold-start from a PAGF1 frozen-graph snapshot.
    pub pagf: Option<String>,
    /// `--map`: map files for the full pipeline (repeatable).
    pub map_files: Vec<String>,
    /// `--map-set`: named maps to serve side by side (repeatable);
    /// exclusive with the single-source flags.
    pub map_set: Vec<MapSetEntry>,
    /// `--default-map`: the namespace unqualified queries hit.
    pub default_map: Option<String>,
    /// `--listen` TCP address; `None` with another listener disables
    /// TCP.
    pub listen: Option<String>,
    /// `--unix` socket path.
    pub unix: Option<String>,
    /// `--udp`: single-shot datagram endpoint address.
    pub udp: Option<String>,
    /// `--workers`: event-loop worker threads; `None` means one per
    /// core, capped at 8.
    pub workers: Option<usize>,
    /// `--cache`: suffix-cache capacity.
    pub cache: usize,
    /// `--shards`: suffix-cache shards.
    pub shards: usize,
    /// `-l`: local host for the map pipeline.
    pub local: Option<String>,
    /// `-i`: ignore case in the map pipeline.
    pub ignore_case: bool,
    /// `--watch`: poll the source files and reload on change.
    pub watch: bool,
    /// `--watch-interval-ms`: poll interval for `--watch`.
    pub watch_interval_ms: u64,
}

/// Client-mode arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct ClientArgs {
    /// `--connect` TCP address (exclusive with `unix` and `udp`).
    pub connect: Option<String>,
    /// `--unix` socket path.
    pub unix: Option<String>,
    /// `--udp-connect`: the daemon's UDP datagram endpoint. Only the
    /// single-line verbs (`--query`/`--path`/`--stats`/`--health`/
    /// `--maps`) have a datagram shape.
    pub udp: Option<String>,
    /// `--map-name`: run the verb against this namespace (`@name` on
    /// the wire; needs protocol v2 on the daemon).
    pub map_name: Option<String>,
    /// The protocol action to run.
    pub action: ClientAction,
}

/// The one protocol verb a client invocation runs.
#[derive(Debug, PartialEq, Eq)]
pub enum ClientAction {
    /// `--query HOST... [--user U]`; several hosts become one batched
    /// round trip (`MQUERY` against a v2 daemon).
    Query {
        /// Destination hosts, in order.
        hosts: Vec<String>,
        /// `--user`; `None` keeps the `%s` marker.
        user: Option<String>,
    },
    /// `--path SRC DST`: the cheapest point-to-point route (protocol
    /// v2); SRC `*` lists DST's one-hop predecessors instead.
    Path {
        /// The source host, or `*` for the via listing.
        src: String,
        /// The destination host.
        dst: String,
    },
    /// `--stats`.
    Stats,
    /// `--reload`.
    Reload,
    /// `--health`.
    Health,
    /// `--maps`: list the daemon's map namespaces (protocol v2).
    Maps,
    /// `--metrics`: scrape the daemon's Prometheus text exposition
    /// (protocol v2).
    Metrics,
    /// `--slowlog`: print the daemon's worst recent requests, slowest
    /// first (protocol v2).
    Slowlog,
    /// `--shutdown`: ask the daemon to drain and exit (protocol v2).
    Shutdown,
}

/// Parses an argument vector (without `argv[0]`).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    match argv.first().map(String::as_str) {
        Some("mapgen") => parse_mapgen(&argv[1..]),
        Some("freeze") => parse_freeze(&argv[1..]),
        Some("query") => parse_query(&argv[1..]),
        Some("serve") => parse_serve(&argv[1..]),
        Some("-h") | Some("--help") | Some("help") => Ok(Command::Help),
        _ => parse_run(argv),
    }
}

fn take_value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_run(argv: &[String]) -> Result<Command, String> {
    let mut run = RunArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-l" => run.local = Some(take_value("-l", &mut it)?.clone()),
            "-c" => run.with_costs = true,
            "-i" => run.ignore_case = true,
            "-v" => run.verbose = true,
            "-n" => run.sort_by_name = true,
            "-s" => run.second_best = true,
            "-t" => run.trace.push(take_value("-t", &mut it)?.clone()),
            "-h" | "--help" => return Ok(Command::Help),
            f if f.starts_with('-') && f.len() > 1 => {
                return Err(format!("unknown flag {f}"));
            }
            file => run.files.push(file.to_string()),
        }
    }
    Ok(Command::Run(run))
}

fn parse_mapgen(argv: &[String]) -> Result<Command, String> {
    let mut mg = MapgenArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hosts" => {
                mg.hosts = take_value("--hosts", &mut it)?
                    .parse()
                    .map_err(|_| "--hosts wants a number".to_string())?;
            }
            "--seed" => {
                mg.seed = take_value("--seed", &mut it)?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?;
            }
            "--paper-scale" => mg.paper_scale = true,
            other => return Err(format!("mapgen: unknown argument {other}")),
        }
    }
    Ok(Command::Mapgen(mg))
}

fn parse_freeze(argv: &[String]) -> Result<Command, String> {
    let mut out: Option<String> = None;
    let mut ignore_case = false;
    let mut ch = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => out = Some(take_value("-o", &mut it)?.clone()),
            "-i" => ignore_case = true,
            "--ch" => ch = true,
            "-h" | "--help" => return Ok(Command::Help),
            f if f.starts_with('-') && f.len() > 1 => {
                return Err(format!("freeze: unknown flag {f}"));
            }
            file => files.push(file.to_string()),
        }
    }
    let out = out.ok_or_else(|| "freeze requires -o out.pagf".to_string())?;
    Ok(Command::Freeze(FreezeArgs {
        out,
        ignore_case,
        ch,
        files,
    }))
}

fn parse_query(argv: &[String]) -> Result<Command, String> {
    let mut db: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-d" => db = Some(take_value("-d", &mut it)?.clone()),
            other if other.starts_with('-') => {
                return Err(format!("query: unknown flag {other}"));
            }
            p => positional.push(p.to_string()),
        }
    }
    let db = db.ok_or_else(|| "query requires -d route-file".to_string())?;
    let mut pos = positional.into_iter();
    let dest = pos
        .next()
        .ok_or_else(|| "query requires a destination".to_string())?;
    let user = pos.next();
    if pos.next().is_some() {
        return Err("query takes at most destination and user".to_string());
    }
    Ok(Command::Query(QueryArgs { db, dest, user }))
}

fn parse_serve(argv: &[String]) -> Result<Command, String> {
    let mut padb = None;
    let mut backend: Option<Backend> = None;
    let mut routes = None;
    let mut pagf = None;
    let mut map_files = Vec::new();
    let mut map_set: Vec<MapSetEntry> = Vec::new();
    let mut default_map = None;
    let mut map_name = None;
    let mut listen = None;
    let mut unix = None;
    let mut udp = None;
    let mut workers: Option<usize> = None;
    let mut udp_connect = None;
    let mut cache: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut local = None;
    let mut ignore_case = false;
    let mut watch = false;
    let mut watch_interval_ms: Option<u64> = None;
    let mut connect = None;
    let mut query_hosts: Vec<String> = Vec::new();
    let mut path_args: Option<(String, String)> = None;
    let mut user = None;
    let mut stats = false;
    let mut reload = false;
    let mut health = false;
    let mut maps = false;
    let mut metrics = false;
    let mut slowlog = false;
    let mut shutdown = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--padb" => padb = Some(take_value("--padb", &mut it)?.clone()),
            "--backend" => {
                backend = Some(match take_value("--backend", &mut it)?.as_str() {
                    "memory" => Backend::Memory,
                    "padb-mmap" => Backend::PadbMmap,
                    "pagf" => Backend::Pagf,
                    other => {
                        return Err(format!(
                            "--backend wants memory, padb-mmap or pagf, not {other}"
                        ))
                    }
                });
            }
            "--routes" => routes = Some(take_value("--routes", &mut it)?.clone()),
            "--pagf" => pagf = Some(take_value("--pagf", &mut it)?.clone()),
            "--map" => map_files.push(take_value("--map", &mut it)?.clone()),
            "--map-set" => {
                let entry = parse_map_set_entry(take_value("--map-set", &mut it)?)?;
                if map_set.iter().any(|e| e.name == entry.name) {
                    return Err(format!("--map-set: duplicate map name `{}`", entry.name));
                }
                map_set.push(entry);
            }
            "--default-map" => default_map = Some(take_value("--default-map", &mut it)?.clone()),
            "--map-name" => map_name = Some(take_value("--map-name", &mut it)?.clone()),
            "--listen" => listen = Some(take_value("--listen", &mut it)?.clone()),
            "--unix" => unix = Some(take_value("--unix", &mut it)?.clone()),
            "--udp" => udp = Some(take_value("--udp", &mut it)?.clone()),
            "--workers" => {
                let n: usize = take_value("--workers", &mut it)?
                    .parse()
                    .map_err(|_| "--workers wants a number".to_string())?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                workers = Some(n);
            }
            "--udp-connect" => udp_connect = Some(take_value("--udp-connect", &mut it)?.clone()),
            "--cache" => {
                cache = Some(
                    take_value("--cache", &mut it)?
                        .parse()
                        .map_err(|_| "--cache wants a number".to_string())?,
                );
            }
            "--shards" => {
                shards = Some(
                    take_value("--shards", &mut it)?
                        .parse()
                        .map_err(|_| "--shards wants a number".to_string())?,
                );
            }
            "-l" => local = Some(take_value("-l", &mut it)?.clone()),
            "-i" => ignore_case = true,
            "--watch" => watch = true,
            "--watch-interval-ms" => {
                let ms: u64 = take_value("--watch-interval-ms", &mut it)?
                    .parse()
                    .map_err(|_| "--watch-interval-ms wants a number".to_string())?;
                if ms == 0 {
                    return Err("--watch-interval-ms must be positive".to_string());
                }
                watch_interval_ms = Some(ms);
            }
            "--connect" => connect = Some(take_value("--connect", &mut it)?.clone()),
            "--query" => query_hosts.push(take_value("--query", &mut it)?.clone()),
            "--path" => {
                let src = take_value("--path", &mut it)?.clone();
                let dst = it
                    .next()
                    .ok_or_else(|| "--path wants two values: SRC DST".to_string())?
                    .clone();
                if path_args.is_some() {
                    return Err("serve: --path given twice".to_string());
                }
                path_args = Some((src, dst));
            }
            "--user" => user = Some(take_value("--user", &mut it)?.clone()),
            "--stats" => stats = true,
            "--reload" => reload = true,
            "--health" => health = true,
            "--maps" => maps = true,
            "--metrics" => metrics = true,
            "--slowlog" => slowlog = true,
            "--shutdown" => shutdown = true,
            other => return Err(format!("serve: unknown argument {other}")),
        }
    }

    let verb_count = usize::from(!query_hosts.is_empty())
        + usize::from(path_args.is_some())
        + usize::from(stats)
        + usize::from(reload)
        + usize::from(health)
        + usize::from(maps)
        + usize::from(metrics)
        + usize::from(slowlog)
        + usize::from(shutdown);
    let client_mode =
        verb_count > 0 || connect.is_some() || udp_connect.is_some() || map_name.is_some();

    if client_mode {
        if verb_count != 1 {
            return Err(
                "serve client mode wants exactly one of --query/--path/--stats/--reload/\
                 --health/--maps/--metrics/--slowlog/--shutdown"
                    .to_string(),
            );
        }
        if padb.is_some()
            || routes.is_some()
            || pagf.is_some()
            || !map_files.is_empty()
            || !map_set.is_empty()
        {
            return Err(
                "serve: client mode (--connect/--query/--stats/...) conflicts with \
                 table sources (--padb/--routes/--map/--pagf/--map-set)"
                    .to_string(),
            );
        }
        // Daemon-only flags must not be silently dropped.
        for (given, flag) in [
            (listen.is_some(), "--listen"),
            (backend.is_some(), "--backend"),
            (cache.is_some(), "--cache"),
            (shards.is_some(), "--shards"),
            (local.is_some(), "-l"),
            (ignore_case, "-i"),
            (watch, "--watch"),
            (watch_interval_ms.is_some(), "--watch-interval-ms"),
            (default_map.is_some(), "--default-map"),
            (udp.is_some(), "--udp"),
            (workers.is_some(), "--workers"),
        ] {
            if given {
                return Err(format!("serve: {flag} only makes sense in daemon mode"));
            }
        }
        let transports = usize::from(connect.is_some())
            + usize::from(unix.is_some())
            + usize::from(udp_connect.is_some());
        if transports != 1 {
            return Err(
                "serve client mode wants exactly one of --connect/--unix/--udp-connect".to_string(),
            );
        }
        if map_name.is_some() && (maps || shutdown) {
            return Err(
                "serve: --map-name only makes sense with --query/--path/--stats/--reload/\
                 --health/--metrics/--slowlog"
                    .to_string(),
            );
        }
        let action = if !query_hosts.is_empty() {
            ClientAction::Query {
                hosts: query_hosts,
                user,
            }
        } else if user.is_some() {
            return Err("serve: --user only makes sense with --query".to_string());
        } else if let Some((src, dst)) = path_args {
            ClientAction::Path { src, dst }
        } else if stats {
            ClientAction::Stats
        } else if reload {
            ClientAction::Reload
        } else if maps {
            ClientAction::Maps
        } else if metrics {
            ClientAction::Metrics
        } else if slowlog {
            ClientAction::Slowlog
        } else if shutdown {
            ClientAction::Shutdown
        } else {
            ClientAction::Health
        };
        if udp_connect.is_some() {
            // A datagram carries one request line and one response
            // line; the session and multi-line verbs have no UDP shape
            // (the daemon would refuse them with a 400 anyway).
            let refused = match action {
                ClientAction::Reload => Some("--reload"),
                ClientAction::Metrics => Some("--metrics"),
                ClientAction::Slowlog => Some("--slowlog"),
                ClientAction::Shutdown => Some("--shutdown"),
                _ => None,
            };
            if let Some(flag) = refused {
                return Err(format!(
                    "serve: {flag} has no datagram shape; use --connect or --unix"
                ));
            }
        }
        return Ok(Command::Serve(ServeArgs::Client(Box::new(ClientArgs {
            connect,
            unix,
            udp: udp_connect,
            map_name,
            action,
        }))));
    }

    let sources = usize::from(padb.is_some())
        + usize::from(routes.is_some())
        + usize::from(pagf.is_some())
        + usize::from(!map_files.is_empty());
    if !map_set.is_empty() {
        if sources != 0 {
            return Err("serve: --map-set conflicts with the single-source flags \
                 (--padb/--routes/--map/--pagf)"
                .to_string());
        }
        if backend.is_some() {
            return Err(
                "serve: --backend only applies to a single source; --map-set names \
                 each member's kind (e.g. NAME=padb-mmap:FILE)"
                    .to_string(),
            );
        }
        if let Some(name) = &default_map {
            if !map_set.iter().any(|e| &e.name == name) {
                return Err(format!(
                    "serve: --default-map `{name}` is not in the --map-set"
                ));
            }
        }
        // Same contradiction the single-source form rejects: case
        // folding is baked into a snapshot at freeze time, so -i
        // cannot apply to a pagf member and must not be silently
        // ignored for it.
        if ignore_case {
            if let Some(entry) = map_set.iter().find(|e| e.kind == SourceKind::Pagf) {
                return Err(format!(
                    "serve: -i is baked into the snapshot at freeze time and cannot apply \
                     to map-set member `{}`; refreeze with `pathalias freeze -i`",
                    entry.name
                ));
            }
        }
    } else {
        if default_map.is_some() {
            return Err("serve: --default-map only makes sense with --map-set".to_string());
        }
        if sources != 1 {
            return Err(
                "serve wants exactly one of --padb/--routes/--map/--pagf/--map-set".to_string(),
            );
        }
    }
    // A snapshot source *is* the pagf backend; naming any other
    // backend for it (or the pagf backend without a snapshot) is a
    // contradiction, not something to silently repair.
    let backend = backend.unwrap_or(if pagf.is_some() {
        Backend::Pagf
    } else {
        Backend::Memory
    });
    if backend == Backend::PadbMmap && padb.is_none() {
        return Err("serve: --backend padb-mmap requires --padb".to_string());
    }
    if backend == Backend::Pagf && pagf.is_none() {
        return Err("serve: --backend pagf requires --pagf".to_string());
    }
    if pagf.is_some() && backend != Backend::Pagf {
        return Err("serve: --pagf only serves through --backend pagf".to_string());
    }
    if pagf.is_some() && ignore_case {
        return Err("serve: -i is baked into the snapshot at freeze time; \
             refreeze with `pathalias freeze -i`"
            .to_string());
    }
    if user.is_some() {
        return Err("serve: --user only makes sense with --query".to_string());
    }
    if watch_interval_ms.is_some() && !watch {
        return Err("serve: --watch-interval-ms only makes sense with --watch".to_string());
    }
    // With no listener at all, default to loopback TCP.
    let listen = match (listen, &unix, &udp) {
        (None, None, None) => Some("127.0.0.1:4175".to_string()),
        (listen, _, _) => listen,
    };
    Ok(Command::Serve(ServeArgs::Daemon(Box::new(DaemonArgs {
        padb,
        backend,
        routes,
        pagf,
        map_files,
        map_set,
        default_map,
        listen,
        unix,
        udp,
        workers,
        cache: cache.unwrap_or(4096),
        shards: shards.unwrap_or(8),
        local,
        ignore_case,
        watch,
        watch_interval_ms: watch_interval_ms.unwrap_or(2000),
    }))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_run() {
        let Command::Run(r) = parse(&v(&[])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r, RunArgs::default());
    }

    #[test]
    fn full_run_flags() {
        let Command::Run(r) = parse(&v(&[
            "-l",
            "unc",
            "-c",
            "-i",
            "-v",
            "-n",
            "-s",
            "-t",
            "duke",
            "-t",
            "phs",
            "usenet.map",
            "arpa.map",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.local.as_deref(), Some("unc"));
        assert!(r.with_costs && r.ignore_case && r.verbose && r.sort_by_name && r.second_best);
        assert_eq!(r.trace, vec!["duke", "phs"]);
        assert_eq!(r.files, vec!["usenet.map", "arpa.map"]);
    }

    #[test]
    fn missing_value() {
        assert!(parse(&v(&["-l"])).is_err());
        assert!(parse(&v(&["-t"])).is_err());
    }

    #[test]
    fn unknown_flag() {
        assert!(parse(&v(&["-q"])).is_err());
    }

    #[test]
    fn mapgen_args() {
        let Command::Mapgen(m) = parse(&v(&["mapgen", "--hosts", "800", "--seed", "7"])).unwrap()
        else {
            panic!("expected mapgen");
        };
        assert_eq!(m.hosts, 800);
        assert_eq!(m.seed, 7);
        assert!(!m.paper_scale);

        let Command::Mapgen(m) = parse(&v(&["mapgen", "--paper-scale"])).unwrap() else {
            panic!("expected mapgen");
        };
        assert!(m.paper_scale);
    }

    #[test]
    fn mapgen_bad_number() {
        assert!(parse(&v(&["mapgen", "--hosts", "many"])).is_err());
    }

    #[test]
    fn freeze_args() {
        let Command::Freeze(fz) =
            parse(&v(&["freeze", "-o", "world.pagf", "-i", "a.map", "b.map"])).unwrap()
        else {
            panic!("expected freeze");
        };
        assert_eq!(fz.out, "world.pagf");
        assert!(fz.ignore_case);
        assert!(!fz.ch);
        assert_eq!(fz.files, vec!["a.map", "b.map"]);

        // Stdin mode: no files.
        let Command::Freeze(fz) = parse(&v(&["freeze", "-o", "w.pagf"])).unwrap() else {
            panic!("expected freeze");
        };
        assert!(fz.files.is_empty());
        assert!(!fz.ignore_case);

        // Opting into the contraction-hierarchy section.
        let Command::Freeze(fz) = parse(&v(&["freeze", "--ch", "-o", "w.pagf", "a.map"])).unwrap()
        else {
            panic!("expected freeze");
        };
        assert!(fz.ch);

        // -o is required; junk flags are rejected.
        assert!(parse(&v(&["freeze", "a.map"])).is_err());
        assert!(parse(&v(&["freeze", "-o"])).is_err());
        assert!(parse(&v(&["freeze", "-o", "w", "--fast"])).is_err());
    }

    #[test]
    fn serve_pagf_source() {
        // --pagf alone implies the pagf backend.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--pagf", "world.pagf", "-l", "home"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.pagf.as_deref(), Some("world.pagf"));
        assert_eq!(d.backend, Backend::Pagf);
        assert_eq!(d.local.as_deref(), Some("home"));

        // Explicitly naming the backend is accepted.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--pagf", "world.pagf", "--backend", "pagf"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.backend, Backend::Pagf);

        // Contradictions are rejected: pagf backend without a
        // snapshot, a snapshot under another backend, two sources,
        // and client mode with a snapshot source.
        assert!(parse(&v(&["serve", "--routes", "r", "--backend", "pagf"])).is_err());
        assert!(parse(&v(&["serve", "--pagf", "w", "--backend", "memory"])).is_err());
        assert!(parse(&v(&["serve", "--pagf", "w", "--backend", "padb-mmap"])).is_err());
        assert!(parse(&v(&["serve", "--pagf", "w", "--padb", "d"])).is_err());
        assert!(parse(&v(&["serve", "--connect", "a:1", "--stats", "--pagf", "w"])).is_err());
        // -i cannot change a snapshot whose case folding is baked in.
        assert!(parse(&v(&["serve", "--pagf", "w", "-i"])).is_err());
    }

    #[test]
    fn query_args() {
        let Command::Query(q) = parse(&v(&[
            "query",
            "-d",
            "routes.txt",
            "caip.rutgers.edu",
            "pleasant",
        ]))
        .unwrap() else {
            panic!("expected query");
        };
        assert_eq!(q.db, "routes.txt");
        assert_eq!(q.dest, "caip.rutgers.edu");
        assert_eq!(q.user.as_deref(), Some("pleasant"));
    }

    #[test]
    fn query_requires_db_and_dest() {
        assert!(parse(&v(&["query", "dest"])).is_err());
        assert!(parse(&v(&["query", "-d", "f"])).is_err());
        assert!(parse(&v(&["query", "-d", "f", "a", "b", "c"])).is_err());
    }

    #[test]
    fn serve_daemon_args() {
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--routes",
            "r.txt",
            "--listen",
            "0.0.0.0:9999",
            "--cache",
            "128",
            "--shards",
            "4",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.routes.as_deref(), Some("r.txt"));
        assert_eq!(d.listen.as_deref(), Some("0.0.0.0:9999"));
        assert_eq!((d.cache, d.shards), (128, 4));

        // Default listen address when nothing is specified.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--padb", "db.padb"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.listen.as_deref(), Some("127.0.0.1:4175"));

        // Unix-only: no TCP default.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--padb", "db.padb", "--unix", "/tmp/s.sock"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.listen, None);
        assert_eq!(d.unix.as_deref(), Some("/tmp/s.sock"));

        // Repeatable --map with pipeline flags.
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve", "--map", "a.map", "--map", "b.map", "-l", "unc", "-i",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.map_files, vec!["a.map", "b.map"]);
        assert_eq!(d.local.as_deref(), Some("unc"));
        assert!(d.ignore_case);
    }

    #[test]
    fn serve_watch_flags() {
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--routes", "r.txt", "--watch"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert!(d.watch);
        assert_eq!(d.watch_interval_ms, 2000, "default interval");

        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--map",
            "a.map",
            "--watch",
            "--watch-interval-ms",
            "250",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert!(d.watch);
        assert_eq!(d.watch_interval_ms, 250);

        // Off by default; interval alone is rejected; client mode
        // rejects both.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--routes", "r.txt"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert!(!d.watch);
        assert!(parse(&v(&["serve", "--routes", "r", "--watch-interval-ms", "5"])).is_err());
        assert!(parse(&v(&["serve", "--connect", "a:1", "--stats", "--watch"])).is_err());
    }

    #[test]
    fn serve_map_set_args() {
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--map-set",
            "global=pagf:world.pagf",
            "--map-set",
            "regional=map:east.map,west.map",
            "--map-set",
            "local=routes:overrides.txt",
            "--default-map",
            "regional",
            "-l",
            "home",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.map_set.len(), 3);
        assert_eq!(d.map_set[0].name, "global");
        assert_eq!(d.map_set[0].kind, SourceKind::Pagf);
        assert_eq!(d.map_set[0].paths, vec!["world.pagf"]);
        assert_eq!(d.map_set[1].kind, SourceKind::Map);
        assert_eq!(d.map_set[1].paths, vec!["east.map", "west.map"]);
        assert_eq!(d.map_set[2].kind, SourceKind::Routes);
        assert_eq!(d.default_map.as_deref(), Some("regional"));
        assert_eq!(d.local.as_deref(), Some("home"));

        // padb and padb-mmap kinds parse too.
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--map-set",
            "a=padb:a.padb",
            "--map-set",
            "b=padb-mmap:b.padb",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.map_set[0].kind, SourceKind::Padb);
        assert_eq!(d.map_set[1].kind, SourceKind::PadbMmap);
    }

    #[test]
    fn serve_map_set_cache_suffix() {
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--map-set",
            "global=pagf:world.pagf:cache=65536",
            "--map-set",
            "regional=map:east.map,west.map",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.map_set[0].cache, Some(65536));
        assert_eq!(d.map_set[0].paths, vec!["world.pagf"]);
        assert_eq!(d.map_set[1].cache, None);
        assert_eq!(d.map_set[1].paths, vec!["east.map", "west.map"]);

        // Malformed or zero capacities get a clear error, not a path
        // named `...:cache=x`.
        let err = parse(&v(&["serve", "--map-set", "a=routes:f:cache=x"])).unwrap_err();
        assert!(err.contains("cache=`x` wants a capacity"), "got: {err}");
        let err = parse(&v(&["serve", "--map-set", "a=routes:f:cache="])).unwrap_err();
        assert!(err.contains("wants a capacity"), "got: {err}");
        let err = parse(&v(&["serve", "--map-set", "a=routes:f:cache=0"])).unwrap_err();
        assert!(err.contains("cache=0"), "got: {err}");
    }

    #[test]
    fn serve_map_set_local_suffix() {
        // :l=HOST names one map's local host; the suffixes stack in
        // either order and neither leaks into the path list.
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--map-set",
            "east=map:east.map:l=gateway",
            "--map-set",
            "west=map:west.map:l=wgw:cache=512",
            "--map-set",
            "south=map:south.map:cache=256:l=sgw",
            "--map-set",
            "north=routes:north.txt",
            "-l",
            "home",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.map_set[0].local.as_deref(), Some("gateway"));
        assert_eq!(d.map_set[0].paths, vec!["east.map"]);
        assert_eq!(d.map_set[0].cache, None);
        assert_eq!(d.map_set[1].local.as_deref(), Some("wgw"));
        assert_eq!(d.map_set[1].cache, Some(512));
        assert_eq!(d.map_set[1].paths, vec!["west.map"]);
        assert_eq!(d.map_set[2].local.as_deref(), Some("sgw"));
        assert_eq!(d.map_set[2].cache, Some(256));
        assert_eq!(d.map_set[2].paths, vec!["south.map"]);
        assert_eq!(d.map_set[3].local, None, "no suffix, daemon-wide -l");
        assert_eq!(d.local.as_deref(), Some("home"));

        // An empty or duplicated host is an error, not a path.
        let err = parse(&v(&["serve", "--map-set", "a=map:f:l="])).unwrap_err();
        assert!(err.contains("l= wants a host"), "got: {err}");
        let err = parse(&v(&["serve", "--map-set", "a=map:f:l=x:l=y"])).unwrap_err();
        assert!(err.contains("duplicate l="), "got: {err}");
        let err = parse(&v(&["serve", "--map-set", "a=map:f:cache=1:cache=2"])).unwrap_err();
        assert!(err.contains("duplicate cache="), "got: {err}");
        // Table kinds carry no local host: a dead l= is a typo.
        let err = parse(&v(&["serve", "--map-set", "a=routes:f:l=x"])).unwrap_err();
        assert!(err.contains("only applies to map/pagf"), "got: {err}");
        let err = parse(&v(&["serve", "--map-set", "a=padb:f:l=x"])).unwrap_err();
        assert!(err.contains("only applies to map/pagf"), "got: {err}");
        assert!(parse(&v(&["serve", "--map-set", "a=pagf:w.pagf:l=x"])).is_ok());
    }

    #[test]
    fn serve_udp_and_workers_flags() {
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--routes",
            "r.txt",
            "--listen",
            "127.0.0.1:4175",
            "--udp",
            "127.0.0.1:4176",
            "--workers",
            "4",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.udp.as_deref(), Some("127.0.0.1:4176"));
        assert_eq!(d.workers, Some(4));
        assert_eq!(d.listen.as_deref(), Some("127.0.0.1:4175"));

        // Like --unix, an explicit --udp suppresses the TCP default: a
        // UDP-only daemon binds nothing else.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--routes", "r.txt", "--udp", "127.0.0.1:0"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.listen, None);
        assert_eq!(d.udp.as_deref(), Some("127.0.0.1:0"));

        // Zero or junk worker counts are rejected; both flags are
        // daemon-only.
        assert!(parse(&v(&["serve", "--routes", "r", "--workers", "0"])).is_err());
        assert!(parse(&v(&["serve", "--routes", "r", "--workers", "many"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--stats",
            "--udp",
            "b:2"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--stats",
            "--workers",
            "2"
        ]))
        .is_err());
    }

    #[test]
    fn serve_client_udp_connect() {
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--udp-connect",
            "127.0.0.1:4176",
            "--query",
            "seismo",
            "--user",
            "rick",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.udp.as_deref(), Some("127.0.0.1:4176"));
        assert_eq!(c.connect, None);
        assert_eq!(
            c.action,
            ClientAction::Query {
                hosts: vec!["seismo".into()],
                user: Some("rick".into())
            }
        );

        // The other single-line verbs frame over a datagram too, with
        // or without a map qualifier.
        for verb in [&["--path", "a", "b"][..], &["--stats"], &["--health"]] {
            let mut argv = vec!["serve", "--udp-connect", "a:1", "--map-name", "m"];
            argv.extend_from_slice(verb);
            assert!(parse(&v(&argv)).is_ok(), "{verb:?} over udp should parse");
        }
        assert!(parse(&v(&["serve", "--udp-connect", "a:1", "--maps"])).is_ok());

        // Session and multi-line verbs have no datagram shape.
        for verb in ["--reload", "--metrics", "--slowlog", "--shutdown"] {
            let err = parse(&v(&["serve", "--udp-connect", "a:1", verb])).unwrap_err();
            assert!(err.contains("no datagram shape"), "{verb}: {err}");
        }

        // Exactly one transport.
        assert!(parse(&v(&[
            "serve",
            "--udp-connect",
            "a:1",
            "--connect",
            "b:2",
            "--stats"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--udp-connect",
            "a:1",
            "--unix",
            "/tmp/s",
            "--stats"
        ]))
        .is_err());
    }

    #[test]
    fn serve_map_set_rejects_malformed() {
        // Bad spec grammar.
        assert!(parse(&v(&["serve", "--map-set", "noequals"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=nopaths"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=turbo:f"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "=routes:f"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a b=routes:f"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a,b=routes:f"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "@a=routes:f"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=routes:"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=map:x.map,,y.map"])).is_err());
        // Duplicate names.
        assert!(parse(&v(&[
            "serve",
            "--map-set",
            "a=routes:f",
            "--map-set",
            "a=routes:g"
        ]))
        .is_err());
        // Conflicts with single-source flags and --backend.
        assert!(parse(&v(&["serve", "--map-set", "a=routes:f", "--routes", "g"])).is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=routes:f", "--padb", "g"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--map-set",
            "a=routes:f",
            "--backend",
            "memory"
        ]))
        .is_err());
        // --default-map must name a member, and needs --map-set.
        assert!(parse(&v(&[
            "serve",
            "--map-set",
            "a=routes:f",
            "--default-map",
            "b"
        ]))
        .is_err());
        // -i cannot change a snapshot member's baked-in case folding
        // (mirrors the single-source --pagf check); other kinds accept
        // it.
        assert!(parse(&v(&["serve", "--map-set", "a=pagf:w.pagf", "-i"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--map-set",
            "a=map:x.map",
            "--map-set",
            "b=pagf:w.pagf",
            "-i"
        ]))
        .is_err());
        assert!(parse(&v(&["serve", "--map-set", "a=map:x.map", "-i"])).is_ok());
        assert!(parse(&v(&["serve", "--routes", "f", "--default-map", "a"])).is_err());
        // Client mode rejects the daemon-side map flags.
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--stats",
            "--map-set",
            "a=routes:f"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--stats",
            "--default-map",
            "a"
        ]))
        .is_err());
    }

    #[test]
    fn serve_client_map_name_and_maps() {
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--map-name",
            "regional",
            "--query",
            "seismo",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.map_name.as_deref(), Some("regional"));

        let Command::Serve(ServeArgs::Client(c)) =
            parse(&v(&["serve", "--connect", "a:1", "--maps"])).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(c.action, ClientAction::Maps);
        assert_eq!(c.map_name, None);

        // --maps is a verb like the others: exclusive; takes no map
        // name; --map-name without a verb defaults to... nothing —
        // it needs a verb that shards.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--maps", "--stats"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--maps",
            "--map-name",
            "a"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--shutdown",
            "--map-name",
            "a"
        ]))
        .is_err());
        // --map-name with --stats/--reload/--health is fine.
        for verb in ["--stats", "--reload", "--health"] {
            let parsed = parse(&v(&["serve", "--connect", "a:1", verb, "--map-name", "m"]));
            assert!(parsed.is_ok(), "{verb} with --map-name should parse");
        }
    }

    #[test]
    fn serve_client_metrics_and_slowlog() {
        let Command::Serve(ServeArgs::Client(c)) =
            parse(&v(&["serve", "--connect", "a:1", "--metrics"])).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(c.action, ClientAction::Metrics);
        assert_eq!(c.map_name, None);

        // Both take --map-name: METRICS @name and SLOWLOG @name are
        // qualified verbs on the wire.
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--metrics",
            "--map-name",
            "east",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.action, ClientAction::Metrics);
        assert_eq!(c.map_name.as_deref(), Some("east"));

        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--unix",
            "/tmp/s.sock",
            "--slowlog",
            "--map-name",
            "west",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.action, ClientAction::Slowlog);
        assert_eq!(c.map_name.as_deref(), Some("west"));

        // Verbs stay exclusive, and daemon mode rejects them.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--metrics", "--stats"])).is_err());
        assert!(parse(&v(&["serve", "--connect", "a:1", "--metrics", "--slowlog"])).is_err());
        assert!(parse(&v(&["serve", "--routes", "r", "--metrics"])).is_err());
        assert!(parse(&v(&["serve", "--routes", "r", "--slowlog"])).is_err());
    }

    #[test]
    fn serve_client_args() {
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "127.0.0.1:4175",
            "--query",
            "seismo",
            "--user",
            "rick",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.connect.as_deref(), Some("127.0.0.1:4175"));
        assert_eq!(
            c.action,
            ClientAction::Query {
                hosts: vec!["seismo".into()],
                user: Some("rick".into())
            }
        );

        let Command::Serve(ServeArgs::Client(c)) =
            parse(&v(&["serve", "--unix", "/tmp/s.sock", "--stats"])).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(c.unix.as_deref(), Some("/tmp/s.sock"));
        assert_eq!(c.action, ClientAction::Stats);
    }

    #[test]
    fn serve_client_batch_and_shutdown() {
        // Repeatable --query batches hosts in order.
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--query",
            "h1",
            "--query",
            "h2",
            "--query",
            "h3",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(
            c.action,
            ClientAction::Query {
                hosts: vec!["h1".into(), "h2".into(), "h3".into()],
                user: None
            }
        );

        let Command::Serve(ServeArgs::Client(c)) =
            parse(&v(&["serve", "--connect", "a:1", "--shutdown"])).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(c.action, ClientAction::Shutdown);
        // --shutdown is a verb like the others: exclusive.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--shutdown", "--stats"])).is_err());
    }

    #[test]
    fn serve_client_path() {
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--path",
            "unc",
            "mit-ai",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(
            c.action,
            ClientAction::Path {
                src: "unc".into(),
                dst: "mit-ai".into()
            }
        );

        // `*` source (the via listing) and a map qualifier both frame.
        let Command::Serve(ServeArgs::Client(c)) = parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--map-name",
            "east",
            "--path",
            "*",
            "seismo",
        ]))
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(c.map_name.as_deref(), Some("east"));
        assert_eq!(
            c.action,
            ClientAction::Path {
                src: "*".into(),
                dst: "seismo".into()
            }
        );

        // --path wants exactly two values, once, and is exclusive with
        // the other verbs; --user belongs to --query alone.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--path", "unc"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--path",
            "a",
            "b",
            "--path",
            "c",
            "d"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--path",
            "a",
            "b",
            "--stats"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--path",
            "a",
            "b",
            "--user",
            "u"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--path",
            "a",
            "b",
            "--query",
            "h"
        ]))
        .is_err());
    }

    #[test]
    fn serve_backend_flag() {
        let Command::Serve(ServeArgs::Daemon(d)) = parse(&v(&[
            "serve",
            "--padb",
            "db.padb",
            "--backend",
            "padb-mmap",
        ]))
        .unwrap() else {
            panic!("expected daemon");
        };
        assert_eq!(d.backend, Backend::PadbMmap);

        // Default is memory.
        let Command::Serve(ServeArgs::Daemon(d)) =
            parse(&v(&["serve", "--padb", "db.padb"])).unwrap()
        else {
            panic!("expected daemon");
        };
        assert_eq!(d.backend, Backend::Memory);

        // padb-mmap without --padb, or a junk backend name, is an error.
        assert!(parse(&v(&["serve", "--routes", "r", "--backend", "padb-mmap"])).is_err());
        assert!(parse(&v(&["serve", "--padb", "f", "--backend", "turbo"])).is_err());
        // Client mode rejects it rather than silently dropping it.
        assert!(parse(&v(&[
            "serve",
            "--connect",
            "a:1",
            "--query",
            "h",
            "--backend",
            "padb-mmap"
        ]))
        .is_err());
    }

    #[test]
    fn serve_rejects_ambiguity() {
        // No source.
        assert!(parse(&v(&["serve"])).is_err());
        // Two sources.
        assert!(parse(&v(&["serve", "--padb", "a", "--routes", "b"])).is_err());
        // Client mode with a source.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--stats", "--padb", "f"])).is_err());
        // Client mode with no verb.
        assert!(parse(&v(&["serve", "--connect", "a:1"])).is_err());
        // Client mode with two verbs.
        assert!(parse(&v(&["serve", "--connect", "a:1", "--stats", "--reload"])).is_err());
        // Client mode with neither --connect nor --unix.
        assert!(parse(&v(&["serve", "--stats"])).is_err());
        // --user without --query.
        assert!(parse(&v(&["serve", "--routes", "r", "--user", "u"])).is_err());
        assert!(parse(&v(&["serve", "--connect", "a:1", "--stats", "--user", "u"])).is_err());
        // Daemon-only flags are rejected, not silently dropped, in
        // client mode.
        for flag in [
            &["--listen", "a:2"][..],
            &["--cache", "9"],
            &["--shards", "2"],
            &["-l", "h"],
            &["-i"],
        ] {
            let mut argv = vec!["serve", "--connect", "a:1", "--query", "h"];
            argv.extend_from_slice(flag);
            assert!(parse(&v(&argv)).is_err(), "{flag:?} should be rejected");
        }
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&v(&["-h"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn single_dash_is_a_file() {
        // "-" conventionally means stdin; we treat it as a file name
        // and let the caller decide.
        let Command::Run(r) = parse(&v(&["-"])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.files, vec!["-"]);
    }
}
