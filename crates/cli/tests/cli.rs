//! Black-box tests of the `pathalias` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_pathalias");

const PAPER_MAP: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn paper_example_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(&["-l", "unc", "-c"], PAPER_MAP);
    assert!(ok);
    assert!(stdout.contains("0\tunc\t%s"));
    assert!(stdout.contains("3395\tmit-ai\tduke!research!ucbvax!%s@mit-ai"));
}

#[test]
fn default_output_has_no_costs() {
    let (stdout, _, ok) = run_with_stdin(&["-l", "unc"], PAPER_MAP);
    assert!(ok);
    assert!(stdout.contains("duke\tduke!%s"));
    assert!(!stdout.contains("500\t"));
}

#[test]
fn verbose_stats_on_stderr() {
    let (_, stderr, ok) = run_with_stdin(&["-l", "unc", "-v"], PAPER_MAP);
    assert!(ok);
    assert!(stderr.contains("nodes"), "{stderr}");
    assert!(stderr.contains("heap:"), "{stderr}");
}

#[test]
fn trace_prints_decisions() {
    let (_, stderr, ok) = run_with_stdin(&["-l", "unc", "-t", "phs"], PAPER_MAP);
    assert!(ok);
    assert!(stderr.contains("trace:"), "{stderr}");
    assert!(stderr.contains("phs"), "{stderr}");
}

#[test]
fn unknown_local_fails() {
    let (_, stderr, ok) = run_with_stdin(&["-l", "nowhere"], PAPER_MAP);
    assert!(!ok);
    assert!(stderr.contains("nowhere"), "{stderr}");
}

#[test]
fn parse_error_reports_location() {
    let (_, stderr, ok) = run_with_stdin(&[], "a $bad\n");
    assert!(!ok);
    assert!(stderr.contains("<stdin>:1:"), "{stderr}");
}

#[test]
fn bad_flag_shows_usage() {
    let (_, stderr, ok) = run_with_stdin(&["-q"], "");
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn files_from_disk() {
    let dir = std::env::temp_dir();
    let p1 = dir.join(format!("pa-cli-a-{}.map", std::process::id()));
    let p2 = dir.join(format!("pa-cli-b-{}.map", std::process::id()));
    std::fs::write(&p1, "a b(10)\n").unwrap();
    std::fs::write(&p2, "b c(10)\n").unwrap();
    let out = Command::new(BIN)
        .args(["-l", "a", p1.to_str().unwrap(), p2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("c\tb!c!%s"), "{stdout}");
    std::fs::remove_file(p1).unwrap();
    std::fs::remove_file(p2).unwrap();
}

#[test]
fn mapgen_subcommand_roundtrips() {
    let out = Command::new(BIN)
        .args(["mapgen", "--hosts", "120", "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let map_text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(map_text.contains("file {"));

    // Generated output feeds straight back into the router.
    let (stdout, _, ok) = run_with_stdin(&["-l", "uncvax"], &map_text);
    assert!(ok);
    assert!(stdout.lines().count() > 100);
}

#[test]
fn query_subcommand() {
    let dir = std::env::temp_dir();
    let db = dir.join(format!("pa-cli-db-{}.txt", std::process::id()));
    std::fs::write(&db, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();

    let out = Command::new(BIN)
        .args([
            "query",
            "-d",
            db.to_str().unwrap(),
            "caip.rutgers.edu",
            "pleasant",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "seismo!caip.rutgers.edu!pleasant"
    );

    let out = Command::new(BIN)
        .args(["query", "-d", db.to_str().unwrap(), "unknownhost"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(db).unwrap();
}

#[test]
fn help_exits_zero() {
    let out = Command::new(BIN).arg("-h").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn serve_daemon_and_client_round_trip() {
    use std::io::BufRead as _;

    let dir = std::env::temp_dir();
    let routes = dir.join(format!("pa-cli-serve-{}.routes", std::process::id()));
    std::fs::write(
        &routes,
        "seismo\tseismo!%s\nduke\tduke!%s\n.edu\tseismo!%s\n",
    )
    .unwrap();

    // Daemon on an ephemeral port; the bound address is announced on
    // stdout for scripts (and this test) to scrape.
    let mut daemon = Command::new(BIN)
        .args([
            "serve",
            "--routes",
            routes.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let stdout = daemon.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("announce line").unwrap();
    let addr = first
        .strip_prefix("pathalias-server listening on tcp ")
        .unwrap_or_else(|| panic!("unexpected announce line `{first}`"))
        .to_string();

    let client = |args: &[&str]| {
        Command::new(BIN)
            .args(["serve", "--connect", &addr])
            .args(args)
            .output()
            .unwrap()
    };

    let out = client(&["--query", "caip.rutgers.edu", "--user", "pleasant"]);
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "seismo!caip.rutgers.edu!pleasant"
    );

    let out = client(&["--query", "unknown.host"]);
    assert!(!out.status.success());

    let out = client(&["--health"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("entries=3"));

    // Hot reload through the CLI: edit the file, --reload, re-query.
    std::fs::write(&routes, "seismo\tnewrelay!seismo!%s\n").unwrap();
    let out = client(&["--reload"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("generation=1"));
    let out = client(&["--query", "seismo", "--user", "rick"]);
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "newrelay!seismo!rick"
    );

    let out = client(&["--stats"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("queries=3"));

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_file(routes).unwrap();
}

/// Spawns a serve daemon on an ephemeral port and scrapes the bound
/// address from its announce line.
fn spawn_daemon(args: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead as _;
    let mut daemon = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let stdout = daemon.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("announce line").unwrap();
    let addr = first
        .strip_prefix("pathalias-server listening on tcp ")
        .unwrap_or_else(|| panic!("unexpected announce line `{first}`"))
        .to_string();
    (daemon, addr)
}

/// The snapshot cold-start path end to end: mapgen → freeze → serve
/// --backend pagf must answer byte-for-byte what the full-pipeline
/// backend answers (the CI smoke job runs the same flow at paper
/// scale against the release binary).
#[test]
fn freeze_then_serve_pagf_matches_full_pipeline() {
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let map_path = dir.join(format!("pa-cli-pagf-{tag}.map"));
    let pagf_path = dir.join(format!("pa-cli-pagf-{tag}.pagf"));

    // A generated world with networks, domains and aliases.
    let gen = Command::new(BIN)
        .args(["mapgen", "--hosts", "300", "--seed", "1986"])
        .output()
        .unwrap();
    assert!(gen.status.success());
    std::fs::write(&map_path, &gen.stdout).unwrap();
    let gen_err = String::from_utf8_lossy(&gen.stderr).into_owned();
    let home = gen_err
        .split("home hub: ")
        .nth(1)
        .expect("mapgen announces its home hub")
        .trim()
        .to_string();

    // Freeze the world to a PAGF1 snapshot.
    let freeze = Command::new(BIN)
        .args(["freeze", "-o", pagf_path.to_str().unwrap()])
        .arg(&map_path)
        .output()
        .unwrap();
    assert!(freeze.status.success(), "{:?}", freeze);
    let freeze_err = String::from_utf8_lossy(&freeze.stderr).into_owned();
    assert!(freeze_err.contains("froze"), "{freeze_err}");

    // Destinations to compare: a spread of routable hosts from the
    // pipeline's own output, plus suffix/default-route shapes.
    let routes = run_with_stdin(
        &["-l", &home, map_path.to_str().unwrap()],
        "", // input comes from the file argument
    );
    assert!(routes.2, "{}", routes.1);
    let mut dests: Vec<String> = routes
        .0
        .lines()
        .step_by(17)
        .filter_map(|l| l.split('\t').next())
        .map(str::to_string)
        .take(40)
        .collect();
    dests.push(home.clone());
    assert!(dests.len() > 20, "enough destinations to be interesting");

    let (mut full, full_addr) = spawn_daemon(&[
        "serve",
        "--map",
        map_path.to_str().unwrap(),
        "-l",
        &home,
        "--listen",
        "127.0.0.1:0",
    ]);
    let (mut cold, cold_addr) = spawn_daemon(&[
        "serve",
        "--pagf",
        pagf_path.to_str().unwrap(),
        "--backend",
        "pagf",
        "-l",
        &home,
        "--listen",
        "127.0.0.1:0",
    ]);

    // One batched round trip per daemon, all destinations in order;
    // the stdout streams must be byte-identical.
    let ask = |addr: &str| {
        let mut cmd = Command::new(BIN);
        cmd.args(["serve", "--connect", addr, "--user", "mel"]);
        for d in &dests {
            cmd.args(["--query", d]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{:?}", out);
        String::from_utf8(out.stdout).unwrap()
    };
    let via_full = ask(&full_addr);
    let via_cold = ask(&cold_addr);
    assert_eq!(via_full, via_cold, "cold-start answers differ");
    assert_eq!(via_full.lines().count(), dests.len());

    full.kill().unwrap();
    full.wait().unwrap();
    cold.kill().unwrap();
    cold.wait().unwrap();
    std::fs::remove_file(&map_path).unwrap();
    std::fs::remove_file(&pagf_path).unwrap();
}

#[test]
fn serve_refuses_corrupt_snapshot() {
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("pa-cli-bad-{}.pagf", std::process::id()));
    std::fs::write(&bad, "PAGF1\ngarbage").unwrap();
    let out = Command::new(BIN)
        .args([
            "serve",
            "--pagf",
            bad.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt snapshot"),
        "{:?}",
        out
    );
    std::fs::remove_file(bad).unwrap();
}

#[test]
fn freeze_reports_errors() {
    // A parse error in the input must fail the freeze, not write a
    // half-baked snapshot.
    let dir = std::env::temp_dir();
    let out_path = dir.join(format!("pa-cli-freeze-err-{}.pagf", std::process::id()));
    let (_, stderr, ok) = run_with_stdin(
        &["freeze", "-o", out_path.to_str().unwrap()],
        "host1 host2(((\n",
    );
    assert!(!ok);
    assert!(stderr.contains("pathalias:"), "{stderr}");
    assert!(!out_path.exists(), "no snapshot on failure");
}

#[test]
fn serve_map_set_end_to_end() {
    // A daemon serving three namespaces through `--map-set`, driven
    // entirely through the CLI client: `--maps`, `--map-name`
    // qualified queries/stats/reload, and the default-map contract.
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let west = dir.join(format!("pa-cli-ms-west-{tag}.routes"));
    let east = dir.join(format!("pa-cli-ms-east-{tag}.routes"));
    let pipe = dir.join(format!("pa-cli-ms-pipe-{tag}.map"));
    std::fs::write(&west, "h\twest-gw!h!%s\n").unwrap();
    std::fs::write(&east, "h\teast-gw!h!%s\n").unwrap();
    std::fs::write(
        &pipe,
        "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
         phs\tunc(400)\nresearch\tduke(200)\n",
    )
    .unwrap();

    let (mut daemon, addr) = spawn_daemon(&[
        "serve",
        "--map-set",
        &format!("west=routes:{}", west.display()),
        "--map-set",
        &format!("east=routes:{}", east.display()),
        "--map-set",
        &format!("pipe=map:{}", pipe.display()),
        "--default-map",
        "east",
        "-l",
        "unc",
        "--listen",
        "127.0.0.1:0",
    ]);

    let client = |args: &[&str]| -> (String, bool) {
        let mut cmd = Command::new(BIN);
        cmd.args(["serve", "--connect", &addr]);
        cmd.args(args);
        let out = cmd.output().unwrap();
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            out.status.success(),
        )
    };

    let (maps, ok) = client(&["--maps"]);
    assert!(ok);
    assert_eq!(maps, "west\neast (default)\npipe\n");

    let (route, ok) = client(&["--query", "h", "--user", "u"]);
    assert!(ok);
    assert_eq!(route, "east-gw!h!u\n", "unqualified hits the default map");

    let (route, ok) = client(&["--map-name", "west", "--query", "h", "--user", "u"]);
    assert!(ok);
    assert_eq!(route, "west-gw!h!u\n");

    let (route, ok) = client(&["--map-name", "pipe", "--query", "research", "--user", "u"]);
    assert!(ok);
    assert_eq!(route, "duke!research!u\n");

    let (stats, ok) = client(&["--map-name", "pipe", "--stats"]);
    assert!(ok);
    assert!(stats.starts_with("map=pipe queries="), "{stats}");

    let (reloaded, ok) = client(&["--map-name", "west", "--reload"]);
    assert!(ok);
    assert!(
        reloaded.starts_with("reloaded map=west generation=1"),
        "{reloaded}"
    );
    let (health, ok) = client(&["--map-name", "east", "--health"]);
    assert!(ok);
    assert!(health.contains("generation=0"), "east untouched: {health}");

    let (_, ok) = client(&["--map-name", "bogus", "--query", "h"]);
    assert!(!ok, "unknown map must fail the exit code");

    let (_, ok) = client(&["--shutdown"]);
    assert!(ok);
    let _ = daemon.wait();
    for f in [west, east, pipe] {
        std::fs::remove_file(f).unwrap();
    }
}

#[test]
fn serve_map_set_local_override() {
    // Two pipeline namespaces over the SAME map file, telling each a
    // different `:l=` local host: routes must differ accordingly, and
    // a member without the suffix falls back to the daemon-wide -l.
    let dir = std::env::temp_dir();
    let map = dir.join(format!("pa-cli-lo-{}.map", std::process::id()));
    std::fs::write(
        &map,
        "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
         phs\tunc(400)\nresearch\tduke(200)\n",
    )
    .unwrap();

    let (mut daemon, addr) = spawn_daemon(&[
        "serve",
        "--map-set",
        &format!("from-unc=map:{}:l=unc", map.display()),
        "--map-set",
        &format!("from-duke=map:{}:l=duke", map.display()),
        "--map-set",
        &format!("fallback=map:{}", map.display()),
        "-l",
        "phs",
        "--listen",
        "127.0.0.1:0",
    ]);

    let query = |map_name: &str| -> String {
        let out = Command::new(BIN)
            .args([
                "serve",
                "--connect",
                &addr,
                "--map-name",
                map_name,
                "--query",
                "research",
                "--user",
                "u",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{:?}", out);
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };

    assert_eq!(query("from-unc"), "duke!research!u");
    assert_eq!(query("from-duke"), "research!u");
    assert_eq!(
        query("fallback"),
        "unc!duke!research!u",
        "no l= suffix: the daemon-wide -l (phs) applies"
    );

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_file(map).unwrap();
}

#[cfg(unix)]
#[test]
fn serve_udp_endpoint_matches_tcp() {
    use std::io::BufRead as _;
    // One daemon, both transports; the same questions through
    // `--udp-connect` and `--connect` must print identical bytes.
    let dir = std::env::temp_dir();
    let routes = dir.join(format!("pa-cli-udp-{}.routes", std::process::id()));
    std::fs::write(&routes, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();

    let mut daemon = Command::new(BIN)
        .args([
            "serve",
            "--routes",
            routes.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--udp",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let stdout = daemon.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let tcp_addr = lines
        .next()
        .expect("tcp announce")
        .unwrap()
        .strip_prefix("pathalias-server listening on tcp ")
        .expect("tcp line first")
        .to_string();
    let udp_addr = lines
        .next()
        .expect("udp announce")
        .unwrap()
        .strip_prefix("pathalias-server listening on udp ")
        .expect("udp line second")
        .to_string();

    let ask = |transport: &str, addr: &str, rest: &[&str]| -> (String, bool) {
        let mut cmd = Command::new(BIN);
        cmd.args(["serve", transport, addr]);
        cmd.args(rest);
        let out = cmd.output().unwrap();
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            out.status.success(),
        )
    };
    for rest in [
        &["--query", "seismo", "--user", "rick"][..],
        &["--query", "caip.rutgers.edu"],
        &["--query", "a.edu", "--query", "b.edu", "--user", "mel"],
        &["--health"],
        &["--maps"],
    ] {
        let (tcp_out, tcp_ok) = ask("--connect", &tcp_addr, rest);
        let (udp_out, udp_ok) = ask("--udp-connect", &udp_addr, rest);
        assert!(tcp_ok && udp_ok, "{rest:?}");
        assert_eq!(tcp_out, udp_out, "transports diverge on {rest:?}");
    }
    // A miss fails the exit code identically on both transports.
    let (_, tcp_ok) = ask("--connect", &tcp_addr, &["--query", "nowhere"]);
    let (_, udp_ok) = ask("--udp-connect", &udp_addr, &["--query", "nowhere"]);
    assert!(!tcp_ok && !udp_ok);

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_file(routes).unwrap();
}
