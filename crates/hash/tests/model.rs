//! Property tests: the host table against a `HashMap` model, across
//! every configuration combination.

use pathalias_hash::{GrowthPolicy, HostTable, SecondaryHash, TableConfig, ALPHA_LOW};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(String, u32),
    Get(String),
    GetOrInsert(String, u32),
}

fn key() -> impl Strategy<Value = String> {
    // A small key space forces collisions and replacements.
    prop_oneof!["[a-e]{1,3}", "[a-z][a-z0-9.-]{0,10}",]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key().prop_map(Op::Get),
        (key(), any::<u32>()).prop_map(|(k, v)| Op::GetOrInsert(k, v)),
    ]
}

fn configs() -> Vec<TableConfig> {
    let mut out = Vec::new();
    for secondary in [SecondaryHash::Inverse, SecondaryHash::PlusOne] {
        for growth in [
            GrowthPolicy::FibonacciPrimes,
            GrowthPolicy::Geometric(2.0),
            GrowthPolicy::ArithmeticLowWater {
                step: 64,
                alpha_low: ALPHA_LOW,
            },
        ] {
            out.push(TableConfig {
                secondary,
                growth,
                alpha_high: 0.79,
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn behaves_like_hashmap(ops in proptest::collection::vec(op(), 1..300)) {
        for config in configs() {
            let mut table = HostTable::with_config(config);
            let mut model: HashMap<String, u32> = HashMap::new();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(
                            table.insert(k, *v),
                            model.insert(k.clone(), *v),
                            "insert {} under {:?}", k, config
                        );
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(table.get(k), model.get(k));
                        prop_assert_eq!(table.peek(k), model.get(k));
                    }
                    Op::GetOrInsert(k, v) => {
                        let expected_new = !model.contains_key(k);
                        let expected_val = *model.entry(k.clone()).or_insert(*v);
                        let (got, inserted) = table.get_or_insert_with(k, || *v);
                        prop_assert_eq!(*got, expected_val);
                        prop_assert_eq!(inserted, expected_new);
                    }
                }
                prop_assert_eq!(table.len(), model.len());
                prop_assert!(table.load_factor() <= 0.79 + 1e-9);
            }
            // Everything the model holds must be in the table.
            for (k, v) in &model {
                prop_assert_eq!(table.peek(k), Some(v));
            }
        }
    }
}
