//! The host-name key function.
//!
//! The paper says only that the integer key is computed "using bit-level
//! shifts and exclusive-ors". This is the classic shift-xor fold of that
//! era: each byte is mixed in with a left shift and two xors. The exact
//! constants are not load-bearing for any experiment; what matters is
//! that the function is cheap, deterministic, and spreads real host
//! names well, which the hashing benchmark verifies.

/// Folds a host name into an integer key with shifts and exclusive-ors.
///
/// The function is case-sensitive; callers wanting pathalias's `-i`
/// behaviour fold names to lower case first.
///
/// # Examples
///
/// ```
/// use pathalias_hash::fold;
///
/// assert_eq!(fold("ucbvax"), fold("ucbvax"));
/// assert_ne!(fold("ucbvax"), fold("ucbvas"));
/// ```
#[inline]
pub fn fold(name: &str) -> u64 {
    fold_bytes(name.as_bytes())
}

/// Folds an arbitrary byte string into an integer key with the same
/// shift-xor mixing as [`fold`]. Used where the input is not a host
/// name — e.g. whole-file content fingerprints for change detection.
///
/// # Examples
///
/// ```
/// use pathalias_hash::{fold, fold_bytes};
///
/// assert_eq!(fold_bytes(b"ucbvax"), fold("ucbvax"));
/// assert_ne!(fold_bytes(b"a b(10)\n"), fold_bytes(b"a b(11)\n"));
/// ```
#[inline]
pub fn fold_bytes(bytes: &[u8]) -> u64 {
    let mut k: u64 = 0;
    for &b in bytes {
        // Rotate-style mixing: shift left, fold the high bits back in,
        // then xor the next byte — all "bit-level shifts and
        // exclusive-ors", per the paper.
        k = (k << 5) ^ (k >> 59) ^ u64::from(b);
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fold("princeton"), fold("princeton"));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fold("ab"), fold("ba"));
    }

    #[test]
    fn case_sensitive() {
        assert_ne!(fold("UNC"), fold("unc"));
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(fold(""), 0);
    }

    #[test]
    fn long_names_do_not_collapse() {
        // Names longer than 12 bytes must keep distinguishing early
        // bytes (the >>59 feedback term guarantees this).
        let a = fold("aaaaaaaaaaaaaaaaaaaaaaaaaaaaab");
        let b = fold("baaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        assert_ne!(a, b);
    }

    #[test]
    fn spreads_sequential_names() {
        // Sequentially numbered hosts (common in generated maps) must
        // not all land in the same few buckets of a small prime table.
        let t = 127u64;
        let mut buckets = vec![0usize; t as usize];
        for i in 0..1000 {
            let k = fold(&format!("host{i}"));
            buckets[(k % t) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        // Perfectly uniform would be ~8 per bucket; allow generous slack.
        assert!(max < 40, "bucket skew too high: {max}");
    }
}
