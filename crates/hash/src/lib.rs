//! Host-name hash table reproducing pathalias's design.
//!
//! The paper describes the table precisely: open addressing with double
//! hashing; an integer key computed from the host name "using bit-level
//! shifts and exclusive-ors"; primary hash `k mod T` for prime table
//! size `T`; secondary hash `T-2-(k mod T-2)` (the "inverse" of Knuth's
//! `1+(k mod T-2)`, which the authors found anomalous); rehashing when
//! the load factor exceeds α_H = 0.79 ("a predicted ratio of 2 probes
//! per access when the table is full"); and a table-size schedule that
//! is "a Fibonacci sequence of primes (more or less)", after earlier
//! experiments with a geometric δ=2 schedule and an arithmetic schedule
//! with low-water mark α_L = 0.49.
//!
//! All of those variants are implemented here so the benchmark harness
//! can reproduce the paper's comparisons (experiments E5, E6 and E13 in
//! DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use pathalias_hash::HostTable;
//!
//! let mut t: HostTable<u32> = HostTable::new();
//! t.insert("seismo", 1);
//! t.insert("ihnp4", 2);
//! assert_eq!(t.get("seismo"), Some(&1));
//! assert_eq!(t.get("decvax"), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fold;
pub mod primes;
mod table;

pub use fold::{fold, fold_bytes};
pub use table::{
    GrowthPolicy, HostTable, ProbeStats, SecondaryHash, TableConfig, ALPHA_HIGH, ALPHA_LOW,
};
