//! Prime table-size schedules.
//!
//! Pathalias cannot know the host count in advance, so it grows its
//! table through a schedule of primes. The paper discusses three
//! schedules, all implemented here:
//!
//! * geometric with δ = 2 (rejected: wastes space when the host count
//!   lands just past a threshold),
//! * an arithmetic candidate list searched for the first prime giving
//!   load below α_L = 0.49 (δ ≈ α_H/α_L ≈ golden ratio),
//! * "a Fibonacci sequence of primes (more or less)", the current
//!   scheme, which follows the golden ratio by construction.

/// Safety bound on candidate-list searches in growth policies; a table
/// would need billions of hosts to get anywhere near it.
pub const ALPHA_SEARCH_LIMIT: u64 = 1 << 20;

/// Deterministic primality test by trial division.
///
/// Table sizes stay far below the range where this is slow.
///
/// # Examples
///
/// ```
/// use pathalias_hash::primes::is_prime;
///
/// assert!(is_prime(1021));
/// assert!(!is_prime(1023));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    if n % 3 == 0 {
        return n == 3;
    }
    let mut d = 5u64;
    while d.saturating_mul(d) <= n {
        if n % d == 0 || n % (d + 2) == 0 {
            return false;
        }
        d += 6;
    }
    true
}

/// The smallest prime greater than or equal to `n`.
///
/// # Examples
///
/// ```
/// use pathalias_hash::primes::next_prime;
///
/// assert_eq!(next_prime(100), 101);
/// assert_eq!(next_prime(13), 13);
/// ```
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n % 2 == 0 {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// The "Fibonacci sequence of primes (more or less)" used by the current
/// pathalias implementation: each size is the smallest prime at least
/// the sum of the previous two, which tracks the golden ratio.
///
/// # Examples
///
/// ```
/// use pathalias_hash::primes::fibonacci_primes;
///
/// let sizes: Vec<u64> = fibonacci_primes().take(5).collect();
/// assert_eq!(sizes[0], 13);
/// assert!(sizes.windows(2).all(|w| w[1] > w[0]));
/// ```
pub fn fibonacci_primes() -> impl Iterator<Item = u64> {
    let mut a = 7u64;
    let mut b = 13u64;
    std::iter::from_fn(move || {
        let out = b;
        let next = next_prime(a + b);
        a = b;
        b = next;
        Some(out)
    })
}

/// Geometric schedule: each size is the smallest prime at least `delta`
/// times the previous, starting at 13. The paper cites δ = 2 (after Aho,
/// Hopcroft & Ullman) as wasting "an excessive amount of space".
pub fn geometric_primes(delta: f64) -> impl Iterator<Item = u64> {
    assert!(delta > 1.0, "geometric growth requires delta > 1");
    let mut t = 13u64;
    std::iter::from_fn(move || {
        let out = t;
        let scaled = (t as f64 * delta).ceil() as u64;
        t = next_prime(scaled.max(t + 1));
        Some(out)
    })
}

/// Arithmetic candidate list: primes at (or just above) multiples of
/// `step`. The growth policy searches this list for the first size whose
/// load factor falls below α_L.
pub fn arithmetic_primes(step: u64) -> impl Iterator<Item = u64> {
    assert!(step >= 2, "arithmetic step must be at least 2");
    let mut k = 1u64;
    std::iter::from_fn(move || {
        let mut candidate = next_prime(k * step);
        // Ensure strict monotonicity even when two multiples round to
        // the same prime.
        while k > 1 && candidate <= next_prime((k - 1) * step) {
            k += 1;
            candidate = next_prime(k * step);
        }
        k += 1;
        Some(candidate)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31];
        for p in known {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 35, 49] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn next_prime_basics() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
    }

    #[test]
    fn fibonacci_tracks_golden_ratio() {
        let sizes: Vec<u64> = fibonacci_primes().take(15).collect();
        for w in sizes.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (1.3..2.2).contains(&ratio),
                "ratio {ratio} out of range for {w:?}"
            );
        }
        // The long-run ratio should settle near φ ≈ 1.618.
        let tail = sizes[13] as f64 / sizes[12] as f64;
        assert!((1.5..1.75).contains(&tail), "tail ratio {tail}");
    }

    #[test]
    fn geometric_doubles() {
        let sizes: Vec<u64> = geometric_primes(2.0).take(8).collect();
        for w in sizes.windows(2) {
            assert!(w[1] as f64 >= w[0] as f64 * 2.0);
            assert!(is_prime(w[1]));
        }
    }

    #[test]
    fn arithmetic_is_strictly_increasing_primes() {
        let sizes: Vec<u64> = arithmetic_primes(512).take(20).collect();
        for w in sizes.windows(2) {
            assert!(w[1] > w[0], "not increasing: {w:?}");
        }
        for s in sizes {
            assert!(is_prime(s));
        }
    }

    #[test]
    fn all_schedules_yield_primes() {
        for s in fibonacci_primes().take(20) {
            assert!(is_prime(s));
        }
        for s in geometric_primes(1.5).take(20) {
            assert!(is_prime(s));
        }
    }
}
