//! The open-addressing, double-hashing host table.

use crate::fold::fold;
use crate::primes::{next_prime, ALPHA_SEARCH_LIMIT};

/// High-water load factor: rehash past this point. The paper chose 0.79
/// "as this gives a predicted ratio of 2 probes per access when the
/// table is full".
pub const ALPHA_HIGH: f64 = 0.79;

/// Low-water load factor for the arithmetic growth policy: δ = α_H/α_L
/// was chosen "close to the golden ratio", with α_L = 0.49.
pub const ALPHA_LOW: f64 = 0.49;

/// Choice of secondary hash function for double hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondaryHash {
    /// `T-2-(k mod T-2)` — the inverse form pathalias uses.
    Inverse,
    /// `1+(k mod T-2)` — the textbook form, which the authors observed
    /// to behave anomalously (kept for the E5 comparison).
    PlusOne,
}

impl SecondaryHash {
    /// Computes the probe step for key `k` in a table of prime size `t`.
    ///
    /// The result is always in `1..=t-2`, hence coprime to the prime
    /// table size, so the probe sequence visits every slot.
    #[inline]
    pub fn step(self, k: u64, t: u64) -> u64 {
        debug_assert!(t > 3);
        match self {
            SecondaryHash::Inverse => t - 2 - (k % (t - 2)),
            SecondaryHash::PlusOne => 1 + (k % (t - 2)),
        }
    }
}

/// Table growth schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrowthPolicy {
    /// Smallest prime at least the sum of the previous two sizes — the
    /// current pathalias scheme, following the golden ratio.
    FibonacciPrimes,
    /// Smallest prime at least δ times the current size.
    Geometric(f64),
    /// Search primes at multiples of `step` for the first size whose
    /// load falls below `alpha_low`.
    ArithmeticLowWater {
        /// Spacing of the arithmetic candidate list.
        step: u64,
        /// Target load factor after growth.
        alpha_low: f64,
    },
}

/// Configuration for a [`HostTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableConfig {
    /// Secondary hash choice.
    pub secondary: SecondaryHash,
    /// Growth schedule.
    pub growth: GrowthPolicy,
    /// High-water load factor triggering a rehash.
    pub alpha_high: f64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            secondary: SecondaryHash::Inverse,
            growth: GrowthPolicy::FibonacciPrimes,
            alpha_high: ALPHA_HIGH,
        }
    }
}

/// Probe and rehash statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeStats {
    /// Slots examined across all lookups (hits and misses).
    pub lookup_probes: u64,
    /// Number of lookups.
    pub lookups: u64,
    /// Slots examined across all insert placements.
    pub insert_probes: u64,
    /// Number of inserts that placed a new key.
    pub inserts: u64,
    /// Slots examined while reinserting during rehashes.
    pub rehash_probes: u64,
    /// Number of rehashes performed.
    pub rehashes: u64,
    /// Tables discarded by rehashing (paper: kept on a list for reuse).
    pub tables_discarded: u64,
    /// Total slot capacity of discarded tables.
    pub discarded_slots: u64,
}

impl ProbeStats {
    /// Mean probes per lookup, or 0.0 if none were made.
    pub fn mean_lookup_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_probes as f64 / self.lookups as f64
        }
    }

    /// Mean probes per fresh insert, or 0.0 if none were made.
    pub fn mean_insert_probes(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.insert_probes as f64 / self.inserts as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<V> {
    key: Box<str>,
    khash: u64,
    value: V,
}

/// Open-addressing, double-hashing table keyed by host name.
///
/// Deletion is deliberately unsupported: pathalias never removes a host
/// name from the table (the `delete` input command marks graph nodes
/// dead instead), and open addressing without tombstones stays simple
/// and fast. Growth follows the configured [`GrowthPolicy`].
///
/// # Examples
///
/// ```
/// use pathalias_hash::{HostTable, TableConfig};
///
/// let mut t = HostTable::with_config(TableConfig::default());
/// assert!(t.insert("ulysses", 7).is_none());
/// assert_eq!(t.insert("ulysses", 8), Some(7));
/// assert_eq!(t.get("ulysses"), Some(&8));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HostTable<V> {
    slots: Vec<Option<Entry<V>>>,
    len: usize,
    prev_size: u64,
    config: TableConfig,
    stats: ProbeStats,
}

const INITIAL_SIZE: u64 = 13;
const INITIAL_PREV: u64 = 7;

impl<V> Default for HostTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HostTable<V> {
    /// Creates a table with pathalias's configuration (inverse secondary
    /// hash, Fibonacci-prime growth, α_H = 0.79).
    pub fn new() -> Self {
        Self::with_config(TableConfig::default())
    }

    /// Creates a table with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_high` is not in `(0, 1)`.
    pub fn with_config(config: TableConfig) -> Self {
        assert!(
            config.alpha_high > 0.0 && config.alpha_high < 1.0,
            "alpha_high must be in (0, 1)"
        );
        let mut slots = Vec::new();
        slots.resize_with(INITIAL_SIZE as usize, || None);
        HostTable {
            slots,
            len: 0,
            prev_size: INITIAL_PREV,
            config,
            stats: ProbeStats::default(),
        }
    }

    /// Number of keys stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity `T`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current load factor α = n/T.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// Accumulated probe statistics.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Clears the probe statistics (capacity and contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = ProbeStats::default();
    }

    /// Probes for `key`, returning the slot index where it lives or
    /// would be placed, plus the number of slots examined.
    fn probe(&self, key: &str, khash: u64) -> (usize, u64) {
        let t = self.slots.len() as u64;
        let h1 = khash % t;
        let step = self.config.secondary.step(khash, t);
        let mut idx = h1;
        let mut probes = 1u64;
        loop {
            match &self.slots[idx as usize] {
                None => return (idx as usize, probes),
                Some(e) if e.khash == khash && *e.key == *key => {
                    return (idx as usize, probes);
                }
                Some(_) => {
                    idx = (idx + step) % t;
                    probes += 1;
                    debug_assert!(probes <= t, "probe sequence failed to terminate");
                }
            }
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let (idx, probes) = self.probe(key, fold(key));
        self.stats.lookup_probes += probes;
        self.stats.lookups += 1;
        self.slots[idx].as_ref().map(|e| &e.value)
    }

    /// Looks up `key` without touching statistics (usable through `&self`).
    pub fn peek(&self, key: &str) -> Option<&V> {
        let (idx, _) = self.probe(key, fold(key));
        self.slots[idx].as_ref().map(|e| &e.value)
    }

    /// Looks up `key` for mutation.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut V> {
        let (idx, probes) = self.probe(key, fold(key));
        self.stats.lookup_probes += probes;
        self.stats.lookups += 1;
        self.slots[idx].as_mut().map(|e| &mut e.value)
    }

    /// Inserts `key` → `value`, returning the previous value if the key
    /// was already present.
    pub fn insert(&mut self, key: &str, value: V) -> Option<V> {
        self.grow_if_needed();
        let khash = fold(key);
        let (idx, probes) = self.probe(key, khash);
        match &mut self.slots[idx] {
            Some(e) => Some(std::mem::replace(&mut e.value, value)),
            empty @ None => {
                *empty = Some(Entry {
                    key: key.into(),
                    khash,
                    value,
                });
                self.len += 1;
                self.stats.insert_probes += probes;
                self.stats.inserts += 1;
                None
            }
        }
    }

    /// Returns the value for `key`, inserting `make()` first if absent.
    /// The boolean is true when an insertion happened.
    pub fn get_or_insert_with(&mut self, key: &str, make: impl FnOnce() -> V) -> (&mut V, bool) {
        self.grow_if_needed();
        let khash = fold(key);
        let (idx, probes) = self.probe(key, khash);
        let inserted = self.slots[idx].is_none();
        if inserted {
            self.slots[idx] = Some(Entry {
                key: key.into(),
                khash,
                value: make(),
            });
            self.len += 1;
            self.stats.insert_probes += probes;
            self.stats.inserts += 1;
        } else {
            self.stats.lookup_probes += probes;
            self.stats.lookups += 1;
        }
        let value = &mut self.slots[idx].as_mut().expect("slot just filled").value;
        (value, inserted)
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|e| (&*e.key, &e.value)))
    }

    fn grow_if_needed(&mut self) {
        // Grow when the *next* insertion could push load past α_H, i.e.
        // test (n+1)/T like the original tested n/T after inserting.
        let t = self.slots.len() as f64;
        if (self.len as f64 + 1.0) / t <= self.config.alpha_high {
            return;
        }
        let (new_size, new_prev) = self.next_size();
        let old = std::mem::take(&mut self.slots);
        self.stats.tables_discarded += 1;
        self.stats.discarded_slots += old.len() as u64;
        self.stats.rehashes += 1;
        self.prev_size = new_prev;
        self.slots.resize_with(new_size as usize, || None);
        for entry in old.into_iter().flatten() {
            let t = self.slots.len() as u64;
            let h1 = entry.khash % t;
            let step = self.config.secondary.step(entry.khash, t);
            let mut idx = h1;
            let mut probes = 1u64;
            while self.slots[idx as usize].is_some() {
                idx = (idx + step) % t;
                probes += 1;
            }
            self.slots[idx as usize] = Some(entry);
            self.stats.rehash_probes += probes;
        }
    }

    /// Computes the next table size (and the "previous" size to retain
    /// for the Fibonacci schedule) that accommodates `len + 1` keys.
    fn next_size(&self) -> (u64, u64) {
        let need = self.len as u64 + 1;
        let cur = self.slots.len() as u64;
        match self.config.growth {
            GrowthPolicy::FibonacciPrimes => {
                let mut a = self.prev_size;
                let mut b = cur;
                loop {
                    let next = next_prime(a + b);
                    a = b;
                    b = next;
                    if (need as f64) / (b as f64) <= self.config.alpha_high {
                        return (b, a);
                    }
                }
            }
            GrowthPolicy::Geometric(delta) => {
                assert!(delta > 1.0, "geometric growth requires delta > 1");
                let mut t = cur;
                loop {
                    t = next_prime(((t as f64 * delta).ceil() as u64).max(t + 1));
                    if (need as f64) / (t as f64) <= self.config.alpha_high {
                        return (t, cur);
                    }
                }
            }
            GrowthPolicy::ArithmeticLowWater { step, alpha_low } => {
                assert!(step >= 2, "arithmetic step must be at least 2");
                assert!(
                    alpha_low > 0.0 && alpha_low < self.config.alpha_high,
                    "alpha_low must be below alpha_high"
                );
                let mut k = 1u64;
                loop {
                    let candidate = next_prime(k * step);
                    if candidate > cur && (need as f64) / (candidate as f64) < alpha_low {
                        return (candidate, cur);
                    }
                    k += 1;
                    assert!(
                        k < ALPHA_SEARCH_LIMIT,
                        "arithmetic candidate search ran away"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("host-{i}")).collect()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = HostTable::new();
        for (i, name) in names(500).iter().enumerate() {
            assert!(t.insert(name, i).is_none());
        }
        for (i, name) in names(500).iter().enumerate() {
            assert_eq!(t.get(name), Some(&i), "lost {name}");
        }
        assert_eq!(t.len(), 500);
        assert!(t.get("absent").is_none());
    }

    #[test]
    fn replace_returns_old() {
        let mut t = HostTable::new();
        assert_eq!(t.insert("x", 1), None);
        assert_eq!(t.insert("x", 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn load_stays_below_alpha_high() {
        let mut t = HostTable::new();
        for name in names(5000) {
            t.insert(&name, 0u8);
            assert!(
                t.load_factor() <= ALPHA_HIGH + 1e-9,
                "load {} exceeded high water",
                t.load_factor()
            );
        }
    }

    #[test]
    fn get_or_insert_with_semantics() {
        let mut t = HostTable::new();
        let (v, inserted) = t.get_or_insert_with("a", || 1);
        assert!(inserted);
        assert_eq!(*v, 1);
        let (v, inserted) = t.get_or_insert_with("a", || 99);
        assert!(!inserted);
        assert_eq!(*v, 1);
    }

    #[test]
    fn all_policies_hold_contents() {
        let configs = [
            TableConfig::default(),
            TableConfig {
                growth: GrowthPolicy::Geometric(2.0),
                ..TableConfig::default()
            },
            TableConfig {
                growth: GrowthPolicy::ArithmeticLowWater {
                    step: 512,
                    alpha_low: ALPHA_LOW,
                },
                ..TableConfig::default()
            },
            TableConfig {
                secondary: SecondaryHash::PlusOne,
                ..TableConfig::default()
            },
        ];
        for config in configs {
            let mut t = HostTable::with_config(config);
            for (i, name) in names(3000).iter().enumerate() {
                t.insert(name, i);
            }
            for (i, name) in names(3000).iter().enumerate() {
                assert_eq!(t.peek(name), Some(&i), "{config:?} lost {name}");
            }
        }
    }

    #[test]
    fn fibonacci_growth_rehashes_geometrically_often() {
        let mut t: HostTable<u8> = HostTable::new();
        for name in names(10_000) {
            t.insert(&name, 0);
        }
        let st = t.stats();
        // ~φ growth from 13 to >12658 is about 15 rehashes; allow slack.
        assert!(st.rehashes >= 10 && st.rehashes <= 25, "{}", st.rehashes);
        assert_eq!(st.tables_discarded, st.rehashes);
        assert!(st.discarded_slots > 0);
    }

    #[test]
    fn secondary_step_ranges() {
        for t in [13u64, 101, 1021] {
            for k in 0..2000u64 {
                let inv = SecondaryHash::Inverse.step(k, t);
                let plus = SecondaryHash::PlusOne.step(k, t);
                assert!((1..=t - 2).contains(&inv));
                assert!((1..=t - 2).contains(&plus));
            }
        }
    }

    #[test]
    fn mean_probes_near_theory_at_high_water() {
        // Knuth/Gonnet: successful search with double hashing costs
        // about (1/α) ln(1/(1-α)) probes ≈ 1.97 at α = 0.79.
        let mut t = HostTable::new();
        let hosts = names(12_000);
        for name in &hosts {
            t.insert(name, 0u8);
        }
        // Top up to just under the high-water mark to measure "full".
        let mut extra = 12_000usize;
        while (t.len() as f64 + 1.0) / t.capacity() as f64 <= ALPHA_HIGH {
            t.insert(&format!("host-{extra}"), 0);
            extra += 1;
        }
        assert!(t.load_factor() > 0.77, "table not near high water");
        // Average successful-search cost over *all* keys is what the
        // theory predicts; early keys alone sit on shorter chains.
        let all: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        t.reset_stats();
        for name in &all {
            assert!(t.get(name).is_some());
        }
        let mean = t.stats().mean_lookup_probes();
        assert!(
            (1.6..2.4).contains(&mean),
            "mean probes {mean} far from theory 1.97"
        );
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut t = HostTable::new();
        t.insert("a", 1);
        t.reset_stats();
        assert_eq!(t.peek("a"), Some(&1));
        assert_eq!(t.stats().lookups, 0);
    }

    #[test]
    fn empty_lookup() {
        let mut t: HostTable<u8> = HostTable::new();
        assert!(t.get("nothing").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn iter_sees_everything_once() {
        let mut t = HostTable::new();
        for (i, name) in names(100).iter().enumerate() {
            t.insert(name, i);
        }
        let mut seen: Vec<_> = t.iter().map(|(k, _)| k.to_string()).collect();
        seen.sort();
        let mut expect = names(100);
        expect.sort();
        assert_eq!(seen, expect);
    }
}
