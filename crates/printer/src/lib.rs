//! Route printing: the third phase of pathalias.
//!
//! "With the shortest path tree identified ... the goal is to print each
//! host name followed by the route to that host. Routes are presented as
//! printf format strings, e.g., ulysses!decvax!%s."
//!
//! The traversal rules implemented here, straight from the paper:
//!
//! * routes are built in a preorder traversal, splicing each visible hop
//!   into the parent's route with the link's routing operator;
//! * the route to a network is identical to the route to its parent,
//!   and (except for domains) a network never appears in the output;
//! * when traversing a network-to-member edge, the routing character and
//!   direction are the ones encountered when *entering* the network;
//! * upon encountering a domain, the domain's name is appended to the
//!   name of its successor (`caip` + `.rutgers` + `.edu` =
//!   `caip.rutgers.edu`);
//! * a top-level domain (one whose tree parent is not a domain) is shown
//!   in the output with its parent's route; subdomains are not printed;
//! * private hosts are labelled but not printed, though they may appear
//!   inside other hosts' routes;
//! * alias edges splice nothing: the alias inherits its partner's route
//!   unchanged, so "the name used in a path is the one understood to a
//!   host's predecessor".
//!
//! The traversal works entirely off the [`ShortestPathTree`] — names,
//! flags and edge operators come from the frozen snapshot the tree
//! carries, so printing needs no access to the mutable build-time
//! graph.
//!
//! # Examples
//!
//! ```
//! use pathalias_mapper::{map, MapOptions};
//! use pathalias_printer::{compute_routes, render, PrintOptions};
//!
//! let g = pathalias_parser::parse("unc duke(500)\nduke phs(300)\n").unwrap();
//! let unc = g.try_node("unc").unwrap();
//! let tree = map(&g, unc, &MapOptions::default()).unwrap();
//! let table = compute_routes(&tree);
//! let text = render(&table, &PrintOptions::default());
//! assert!(text.contains("phs\tduke!phs!%s"));
//! ```
//!
//! [`ShortestPathTree`]: pathalias_mapper::ShortestPathTree

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
mod output;
mod route;
mod traverse;

pub use output::{render, write_routes, PrintOptions, Sort};
pub use route::{Route, RouteKind, RouteTable};
pub use traverse::{compute_routes, update_routes};
