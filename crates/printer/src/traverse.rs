//! The preorder traversal that labels the tree with routes.
//!
//! "Routes are computed by labeling nodes in the shortest path tree in a
//! preorder traversal. We first label the root, which corresponds to the
//! local host, with route %s. In the recursion step of the traversal, we
//! calculate the route to a child node by combining the parent's route
//! and the routing information in the parent-to-child edge." As in the
//! original, routes live only on the traversal stack, not in the nodes.
//!
//! The traversal reads everything — names, node flags, edge operators —
//! from the tree's frozen snapshot by id, so a [`ShortestPathTree`] is
//! all it takes to print (and the snapshot is guaranteed to be the one
//! the labels' edge ids refer to, back-link augmentations included).

use crate::route::{Route, RouteKind, RouteTable};
use pathalias_graph::{FrozenGraph, LinkFlags, NodeFlags, NodeId, RouteOp};
use pathalias_mapper::ShortestPathTree;

/// Computes the route for every node the tree reached.
pub fn compute_routes(tree: &ShortestPathTree) -> RouteTable {
    let f: &FrozenGraph = tree.frozen();
    let children = tree.children();
    let mut entries: Vec<Route> = Vec::with_capacity(tree.mapped_count());

    // Iterative preorder: (node, route, name) — the route/name strings
    // are exactly what the original passed as recursion parameters.
    let stack: Vec<(NodeId, String, String)> = vec![(
        tree.source,
        "%s".to_string(),
        f.name(tree.source).to_string(),
    )];
    traverse(f, tree, &children, stack, &mut entries);

    entries.sort_by_key(|r| r.node);
    RouteTable {
        source: tree.source,
        entries,
    }
}

/// Recomputes routes after an incremental remap, reusing every entry
/// whose route cannot have moved.
///
/// `changed` lists the nodes whose tree labels differ from the run the
/// old table was printed from. A node's route depends on its own label
/// and on its ancestors' routes, so only the subtree closure of
/// `changed` (in the *new* tree) needs re-traversal; everything else is
/// carried over from `old` verbatim. Requires that the labelled set is
/// unchanged (the incremental-remap contract) and that `old` was
/// printed from the same source; returns `None` when the inputs don't
/// line up and the caller should fall back to [`compute_routes`].
pub fn update_routes(
    tree: &ShortestPathTree,
    old: &RouteTable,
    changed: &[NodeId],
) -> Option<RouteTable> {
    let f: &FrozenGraph = tree.frozen();
    if old.source != tree.source || old.entries.len() != tree.mapped_count() {
        return None;
    }
    if changed.is_empty() {
        return Some(old.clone());
    }
    let children = tree.children();

    // The closure: every changed node plus all of its descendants in
    // the new tree (their routes splice through it).
    let n = f.node_count();
    let mut needs = vec![false; n];
    let mut dfs: Vec<NodeId> = changed
        .iter()
        .copied()
        .filter(|&c| tree.label(c).is_some())
        .collect();
    while let Some(v) = dfs.pop() {
        if std::mem::replace(&mut needs[v.index()], true) {
            continue;
        }
        dfs.extend(children[v.index()].iter().copied());
    }

    // Entries are sorted by node id, so parents resolve by binary
    // search.
    let entry_of = |node: NodeId| -> Option<&Route> {
        let i = old.entries.binary_search_by_key(&node, |r| r.node).ok()?;
        Some(&old.entries[i])
    };

    // Re-traverse each maximal dirty subtree, seeding its root's
    // (route, name) from the still-valid parent entry.
    let mut stack: Vec<(NodeId, String, String)> = Vec::new();
    for i in 0..n {
        if !needs[i] {
            continue;
        }
        let node = NodeId::from_raw(i as u32);
        if node == tree.source {
            stack.push((node, "%s".to_string(), f.name(node).to_string()));
            continue;
        }
        let (parent, _) = tree.label(node)?.pred?;
        if needs[parent.index()] {
            continue; // an inner node; its subtree root seeds it
        }
        let pe = entry_of(parent)?;
        let (route, name) = child_step(f, tree, parent, &pe.route, &pe.name, node)?;
        stack.push((node, route, name));
    }
    let mut fresh: Vec<Route> = Vec::new();
    traverse(f, tree, &children, stack, &mut fresh);
    fresh.sort_by_key(|r| r.node);

    // Merge: dirty entries replaced, everything else carried over.
    let mut entries = Vec::with_capacity(old.entries.len());
    let mut fi = 0;
    for r in &old.entries {
        if needs[r.node.index()] {
            if fresh.get(fi).map(|nr| nr.node) != Some(r.node) {
                return None;
            }
            entries.push(fresh[fi].clone());
            fi += 1;
        } else {
            entries.push(r.clone());
        }
    }
    if fi != fresh.len() {
        return None;
    }
    Some(RouteTable {
        source: tree.source,
        entries,
    })
}

/// Runs the preorder traversal from a pre-seeded stack, appending one
/// [`Route`] per visited node.
fn traverse(
    f: &FrozenGraph,
    tree: &ShortestPathTree,
    children: &[Vec<NodeId>],
    mut stack: Vec<(NodeId, String, String)>,
    entries: &mut Vec<Route>,
) {
    while let Some((node, route, name)) = stack.pop() {
        let label = tree.label(node).expect("traversal follows labels");

        let kind = if f.flags(node).contains(NodeFlags::PRIVATE) {
            RouteKind::Private
        } else if f.is_domain(node) {
            let parent_is_domain = label.pred.map(|(p, _)| f.is_domain(p)).unwrap_or(false);
            if parent_is_domain {
                RouteKind::SubDomain
            } else {
                RouteKind::TopDomain
            }
        } else if f.is_net(node) {
            RouteKind::Network
        } else if label
            .pred
            .map(|(_, e)| f.edge_flags(e).contains(LinkFlags::ALIAS))
            .unwrap_or(false)
        {
            RouteKind::Alias
        } else {
            RouteKind::Host
        };

        // Children in reverse so the stack pops them in sorted order.
        for &child in children[node.index()].iter().rev() {
            let (child_route, child_name) = child_step(f, tree, node, &route, &name, child)
                .expect("children of labelled nodes are labelled");
            stack.push((child, child_route, child_name));
        }

        entries.push(Route {
            node,
            name,
            cost: label.cost,
            route,
            kind,
            via_domain: label.tainted,
            via_backlink: label.via_backlink,
            ambiguous: label.ambiguous,
        });
    }
}

/// The recursion step: the (route, name) a child inherits from its tree
/// parent's (route, name).
fn child_step(
    f: &FrozenGraph,
    tree: &ShortestPathTree,
    node: NodeId,
    route: &str,
    name: &str,
    child: NodeId,
) -> Option<(String, String)> {
    let (_, edge) = tree.label(child)?.pred?;
    let eflags = f.edge_flags(edge);

    // Domain-name synthesis: "the name of the domain is appended to the
    // name of its successor".
    let child_name = if f.is_domain(node) {
        format!("{}{}", f.name(child), name)
    } else {
        f.name(child).to_string()
    };

    let child_route = if eflags.contains(LinkFlags::ALIAS) {
        // Aliases splice nothing: the predecessor's name is the one on
        // the wire.
        route.to_string()
    } else if f.is_net(child) {
        // "The route to a network is identical to the route to its
        // parent."
        route.to_string()
    } else {
        let op = effective_op(
            f,
            tree,
            node,
            f.edge_op(edge),
            eflags.contains(LinkFlags::NET_OUT),
        );
        op.splice(route, &child_name)
    };
    Some((child_route, child_name))
}

/// "When traversing a network-to-member edge, the routing character and
/// direction are the ones encountered when entering the network." Also
/// applies to any edge leaving a network or domain node, so different
/// gateways can impose different syntax.
fn effective_op(
    f: &FrozenGraph,
    tree: &ShortestPathTree,
    parent: NodeId,
    edge_op: RouteOp,
    net_out: bool,
) -> RouteOp {
    if net_out {
        if let Some(Some((_, entering))) = tree.label(parent).map(|l| l.pred) {
            return f.edge_op(entering);
        }
    }
    edge_op
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::Graph;
    use pathalias_mapper::{map, MapOptions};
    use pathalias_parser::parse;

    fn routes_for(text: &str, source: &str) -> RouteTable {
        let g = parse(text).unwrap();
        let s = g.try_node(source).unwrap();
        let tree = map(&g, s, &MapOptions::default()).unwrap();
        compute_routes(&tree)
    }

    fn route_of<'t>(t: &'t RouteTable, name: &str) -> &'t Route {
        t.find(name)
            .unwrap_or_else(|| panic!("no route named {name}"))
    }

    #[test]
    fn root_is_percent_s() {
        let t = routes_for("unc duke(500)\n", "unc");
        let r = route_of(&t, "unc");
        assert_eq!(r.route, "%s");
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn left_and_right_splicing() {
        let t = routes_for("a b(10)\nb @c(10)\n", "a");
        assert_eq!(route_of(&t, "b").route, "b!%s");
        assert_eq!(route_of(&t, "c").route, "b!%s@c");
    }

    #[test]
    fn network_invisible_and_exit_op_follows_entry() {
        let t = routes_for("u ARPA(95)\nARPA = @{mit-ai}(95)\n", "u");
        // Wait: entering op here comes from the explicit u->ARPA link,
        // which is plain UUCP; the member exit then uses `!`.
        assert_eq!(route_of(&t, "mit-ai").route, "mit-ai!%s");
        assert!(t.find("ARPA").map(|r| !r.kind.is_visible()).unwrap_or(true));
    }

    #[test]
    fn network_entry_via_member_uses_declared_op() {
        let t = routes_for("u ucbvax(300)\nARPA = @{mit-ai, ucbvax}(95)\n", "u");
        // ucbvax enters ARPA over its member edge declared with `@`, so
        // mit-ai is spliced host-on-right.
        assert_eq!(route_of(&t, "mit-ai").route, "ucbvax!%s@mit-ai");
    }

    #[test]
    fn alias_inherits_route_unchanged() {
        let t = routes_for("a princeton(100)\nprinceton = fun\nfun z(10)\n", "a");
        assert_eq!(route_of(&t, "princeton").route, "princeton!%s");
        assert_eq!(route_of(&t, "fun").route, "princeton!%s");
        assert_eq!(route_of(&t, "fun").kind, RouteKind::Alias);
        // Links from the alias splice into the partner's route.
        assert_eq!(route_of(&t, "z").route, "princeton!z!%s");
    }

    #[test]
    fn domain_names_append_through_the_tree() {
        // The paper's figure: a tree fragment rooted one hop before
        // seismo, with the chain seismo -> .edu -> .rutgers -> caip.
        let text = "\
u seismo(100)
seismo .edu(95)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
";
        let t = routes_for(text, "u");
        assert_eq!(
            route_of(&t, "caip.rutgers.edu").route,
            "seismo!caip.rutgers.edu!%s"
        );
        // Top-level domain printed with its parent's (gateway's) route.
        let edu = route_of(&t, ".edu");
        assert_eq!(edu.route, "seismo!%s");
        assert_eq!(edu.kind, RouteKind::TopDomain);
        // Subdomain hidden.
        let rutgers = t.entries.iter().find(|r| r.name == ".rutgers.edu").unwrap();
        assert_eq!(rutgers.kind, RouteKind::SubDomain);
    }

    #[test]
    fn masquerading_subdomain_is_top_level() {
        // `.rutgers.edu` as a single node with gateway caip.
        let text = "\
host caip(200)
.rutgers.edu = {caip(0), blue(0)}
";
        let t = routes_for(text, "host");
        assert_eq!(route_of(&t, "caip").route, "caip!%s");
        assert_eq!(
            route_of(&t, "blue.rutgers.edu").route,
            "caip!blue.rutgers.edu!%s"
        );
        let dom = route_of(&t, ".rutgers.edu");
        assert_eq!(dom.kind, RouteKind::TopDomain);
        assert_eq!(dom.route, "caip!%s");
    }

    #[test]
    fn private_hosts_hidden_but_relay() {
        let mut g = Graph::new();
        g.begin_file("f");
        let a = g.node("a");
        let p = g.declare_private("bilbo");
        let z = g.node("z");
        g.declare_link(a, p, 10, RouteOp::UUCP);
        g.declare_link(p, z, 10, RouteOp::UUCP);
        let tree = map(&g, a, &MapOptions::default()).unwrap();
        let t = compute_routes(&tree);
        let bilbo = t.entries.iter().find(|r| r.name == "bilbo").unwrap();
        assert_eq!(bilbo.kind, RouteKind::Private);
        assert!(!bilbo.kind.is_visible());
        // ... but it appears inside z's route.
        assert_eq!(route_of(&t, "z").route, "bilbo!z!%s");
    }

    #[test]
    fn backlink_and_domain_flags_carried() {
        let t = routes_for("a b(10)\nleaf b(25)\n", "a");
        assert!(route_of(&t, "leaf").via_backlink);
        assert!(!route_of(&t, "b").via_backlink);
    }

    /// Maps `text`, patches one node's row, cold-maps the patched
    /// graph, and returns (old table, new tree, changed node list).
    fn patched_world(
        text: &str,
        source: &str,
        patch_node: &str,
        edit: impl Fn(
            &pathalias_graph::FrozenGraph,
            NodeId,
        ) -> Vec<(NodeId, pathalias_graph::Cost, RouteOp, LinkFlags)>,
    ) -> (RouteTable, ShortestPathTree, Vec<NodeId>) {
        use pathalias_mapper::map_frozen_readonly;
        use std::sync::Arc;

        let g = parse(text).unwrap();
        let s = g.try_node(source).unwrap();
        let p = g.try_node(patch_node).unwrap();
        let frozen = Arc::new(g.freeze());
        let old_tree = map_frozen_readonly(&frozen, s, &MapOptions::default()).unwrap();
        let old_table = compute_routes(&old_tree);

        let (patched, _) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: p,
            edges: edit(&frozen, p),
        }]);
        let patched = Arc::new(patched);
        let new_tree = map_frozen_readonly(&patched, s, &MapOptions::default()).unwrap();
        let changed: Vec<NodeId> = patched
            .node_ids()
            .filter(|&id| old_tree.label(id) != new_tree.label(id))
            .collect();
        (old_table, new_tree, changed)
    }

    #[test]
    fn update_routes_matches_full_recompute() {
        // The b->x cost drop moves x (and its whole subtree, including
        // the domain chain that re-synthesizes names) under b.
        let text = "\
hub a(10), b(12)
a x(20)
b x(20)
x y(5)
y .edu(5)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
x z(1)
";
        let (old_table, new_tree, changed) = patched_world(text, "hub", "b", |f, _| {
            let x = f.id_of("x").unwrap();
            vec![(x, 1, RouteOp::UUCP, LinkFlags::empty())]
        });
        assert!(!changed.is_empty());
        let updated = update_routes(&new_tree, &old_table, &changed).expect("inputs line up");
        let full = compute_routes(&new_tree);
        assert_eq!(updated.entries, full.entries);
        assert_eq!(updated.source, full.source);
        // The moved subtree really re-routed.
        assert_eq!(updated.find("x").unwrap().route, "b!x!%s");
        assert_eq!(
            updated.find("caip.rutgers.edu").unwrap().route,
            "b!x!y!caip.rutgers.edu!%s"
        );
    }

    #[test]
    fn update_routes_no_changes_is_identity() {
        let g = parse("a b(10)\nb c(20)\n").unwrap();
        let a = g.try_node("a").unwrap();
        let tree = map(&g, a, &MapOptions::default()).unwrap();
        let table = compute_routes(&tree);
        let same = update_routes(&tree, &table, &[]).unwrap();
        assert_eq!(same.entries, table.entries);
    }

    #[test]
    fn update_routes_rejects_mismatched_table() {
        let g = parse("a b(10)\n").unwrap();
        let a = g.try_node("a").unwrap();
        let b = g.try_node("b").unwrap();
        let tree_a = map(&g, a, &MapOptions::default()).unwrap();
        let tree_b = map(&g, b, &MapOptions::default()).unwrap();
        let table_b = compute_routes(&tree_b);
        assert!(update_routes(&tree_a, &table_b, &[a]).is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut text = String::new();
        for i in 0..6_000 {
            text.push_str(&format!("h{} h{}(1)\n", i, i + 1));
        }
        let t = routes_for(&text, "h0");
        let last = route_of(&t, "h6000");
        assert_eq!(last.cost, 6_000);
        assert!(last.route.starts_with("h1!h2!"));
    }
}
