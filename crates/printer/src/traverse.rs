//! The preorder traversal that labels the tree with routes.
//!
//! "Routes are computed by labeling nodes in the shortest path tree in a
//! preorder traversal. We first label the root, which corresponds to the
//! local host, with route %s. In the recursion step of the traversal, we
//! calculate the route to a child node by combining the parent's route
//! and the routing information in the parent-to-child edge." As in the
//! original, routes live only on the traversal stack, not in the nodes.
//!
//! The traversal reads everything — names, node flags, edge operators —
//! from the tree's frozen snapshot by id, so a [`ShortestPathTree`] is
//! all it takes to print (and the snapshot is guaranteed to be the one
//! the labels' edge ids refer to, back-link augmentations included).

use crate::route::{Route, RouteKind, RouteTable};
use pathalias_graph::{FrozenGraph, LinkFlags, NodeFlags, NodeId, RouteOp};
use pathalias_mapper::ShortestPathTree;

/// Computes the route for every node the tree reached.
pub fn compute_routes(tree: &ShortestPathTree) -> RouteTable {
    let f: &FrozenGraph = tree.frozen();
    let children = tree.children();
    let mut entries: Vec<Route> = Vec::with_capacity(tree.mapped_count());

    // Iterative preorder: (node, route, name) — the route/name strings
    // are exactly what the original passed as recursion parameters.
    let mut stack: Vec<(NodeId, String, String)> = vec![(
        tree.source,
        "%s".to_string(),
        f.name(tree.source).to_string(),
    )];

    while let Some((node, route, name)) = stack.pop() {
        let label = tree.label(node).expect("traversal follows labels");

        let kind = if f.flags(node).contains(NodeFlags::PRIVATE) {
            RouteKind::Private
        } else if f.is_domain(node) {
            let parent_is_domain = label.pred.map(|(p, _)| f.is_domain(p)).unwrap_or(false);
            if parent_is_domain {
                RouteKind::SubDomain
            } else {
                RouteKind::TopDomain
            }
        } else if f.is_net(node) {
            RouteKind::Network
        } else if label
            .pred
            .map(|(_, e)| f.edge_flags(e).contains(LinkFlags::ALIAS))
            .unwrap_or(false)
        {
            RouteKind::Alias
        } else {
            RouteKind::Host
        };

        // Children in reverse so the stack pops them in sorted order.
        for &child in children[node.index()].iter().rev() {
            let (_, edge) = tree
                .label(child)
                .expect("child is labelled")
                .pred
                .expect("non-source labelled nodes have predecessors");
            let eflags = f.edge_flags(edge);

            // Domain-name synthesis: "the name of the domain is
            // appended to the name of its successor".
            let child_name = if f.is_domain(node) {
                format!("{}{}", f.name(child), name)
            } else {
                f.name(child).to_string()
            };

            let child_route = if eflags.contains(LinkFlags::ALIAS) {
                // Aliases splice nothing: the predecessor's name is the
                // one on the wire.
                route.clone()
            } else if f.is_net(child) {
                // "The route to a network is identical to the route to
                // its parent."
                route.clone()
            } else {
                let op = effective_op(
                    f,
                    tree,
                    node,
                    f.edge_op(edge),
                    eflags.contains(LinkFlags::NET_OUT),
                );
                op.splice(&route, &child_name)
            };
            stack.push((child, child_route, child_name));
        }

        entries.push(Route {
            node,
            name,
            cost: label.cost,
            route,
            kind,
            via_domain: label.tainted,
            via_backlink: label.via_backlink,
            ambiguous: label.ambiguous,
        });
    }

    entries.sort_by_key(|r| r.node);
    RouteTable {
        source: tree.source,
        entries,
    }
}

/// "When traversing a network-to-member edge, the routing character and
/// direction are the ones encountered when entering the network." Also
/// applies to any edge leaving a network or domain node, so different
/// gateways can impose different syntax.
fn effective_op(
    f: &FrozenGraph,
    tree: &ShortestPathTree,
    parent: NodeId,
    edge_op: RouteOp,
    net_out: bool,
) -> RouteOp {
    if net_out {
        if let Some(Some((_, entering))) = tree.label(parent).map(|l| l.pred) {
            return f.edge_op(entering);
        }
    }
    edge_op
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::Graph;
    use pathalias_mapper::{map, MapOptions};
    use pathalias_parser::parse;

    fn routes_for(text: &str, source: &str) -> RouteTable {
        let g = parse(text).unwrap();
        let s = g.try_node(source).unwrap();
        let tree = map(&g, s, &MapOptions::default()).unwrap();
        compute_routes(&tree)
    }

    fn route_of<'t>(t: &'t RouteTable, name: &str) -> &'t Route {
        t.find(name)
            .unwrap_or_else(|| panic!("no route named {name}"))
    }

    #[test]
    fn root_is_percent_s() {
        let t = routes_for("unc duke(500)\n", "unc");
        let r = route_of(&t, "unc");
        assert_eq!(r.route, "%s");
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn left_and_right_splicing() {
        let t = routes_for("a b(10)\nb @c(10)\n", "a");
        assert_eq!(route_of(&t, "b").route, "b!%s");
        assert_eq!(route_of(&t, "c").route, "b!%s@c");
    }

    #[test]
    fn network_invisible_and_exit_op_follows_entry() {
        let t = routes_for("u ARPA(95)\nARPA = @{mit-ai}(95)\n", "u");
        // Wait: entering op here comes from the explicit u->ARPA link,
        // which is plain UUCP; the member exit then uses `!`.
        assert_eq!(route_of(&t, "mit-ai").route, "mit-ai!%s");
        assert!(t.find("ARPA").map(|r| !r.kind.is_visible()).unwrap_or(true));
    }

    #[test]
    fn network_entry_via_member_uses_declared_op() {
        let t = routes_for("u ucbvax(300)\nARPA = @{mit-ai, ucbvax}(95)\n", "u");
        // ucbvax enters ARPA over its member edge declared with `@`, so
        // mit-ai is spliced host-on-right.
        assert_eq!(route_of(&t, "mit-ai").route, "ucbvax!%s@mit-ai");
    }

    #[test]
    fn alias_inherits_route_unchanged() {
        let t = routes_for("a princeton(100)\nprinceton = fun\nfun z(10)\n", "a");
        assert_eq!(route_of(&t, "princeton").route, "princeton!%s");
        assert_eq!(route_of(&t, "fun").route, "princeton!%s");
        assert_eq!(route_of(&t, "fun").kind, RouteKind::Alias);
        // Links from the alias splice into the partner's route.
        assert_eq!(route_of(&t, "z").route, "princeton!z!%s");
    }

    #[test]
    fn domain_names_append_through_the_tree() {
        // The paper's figure: a tree fragment rooted one hop before
        // seismo, with the chain seismo -> .edu -> .rutgers -> caip.
        let text = "\
u seismo(100)
seismo .edu(95)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
";
        let t = routes_for(text, "u");
        assert_eq!(
            route_of(&t, "caip.rutgers.edu").route,
            "seismo!caip.rutgers.edu!%s"
        );
        // Top-level domain printed with its parent's (gateway's) route.
        let edu = route_of(&t, ".edu");
        assert_eq!(edu.route, "seismo!%s");
        assert_eq!(edu.kind, RouteKind::TopDomain);
        // Subdomain hidden.
        let rutgers = t.entries.iter().find(|r| r.name == ".rutgers.edu").unwrap();
        assert_eq!(rutgers.kind, RouteKind::SubDomain);
    }

    #[test]
    fn masquerading_subdomain_is_top_level() {
        // `.rutgers.edu` as a single node with gateway caip.
        let text = "\
host caip(200)
.rutgers.edu = {caip(0), blue(0)}
";
        let t = routes_for(text, "host");
        assert_eq!(route_of(&t, "caip").route, "caip!%s");
        assert_eq!(
            route_of(&t, "blue.rutgers.edu").route,
            "caip!blue.rutgers.edu!%s"
        );
        let dom = route_of(&t, ".rutgers.edu");
        assert_eq!(dom.kind, RouteKind::TopDomain);
        assert_eq!(dom.route, "caip!%s");
    }

    #[test]
    fn private_hosts_hidden_but_relay() {
        let mut g = Graph::new();
        g.begin_file("f");
        let a = g.node("a");
        let p = g.declare_private("bilbo");
        let z = g.node("z");
        g.declare_link(a, p, 10, RouteOp::UUCP);
        g.declare_link(p, z, 10, RouteOp::UUCP);
        let tree = map(&g, a, &MapOptions::default()).unwrap();
        let t = compute_routes(&tree);
        let bilbo = t.entries.iter().find(|r| r.name == "bilbo").unwrap();
        assert_eq!(bilbo.kind, RouteKind::Private);
        assert!(!bilbo.kind.is_visible());
        // ... but it appears inside z's route.
        assert_eq!(route_of(&t, "z").route, "bilbo!z!%s");
    }

    #[test]
    fn backlink_and_domain_flags_carried() {
        let t = routes_for("a b(10)\nleaf b(25)\n", "a");
        assert!(route_of(&t, "leaf").via_backlink);
        assert!(!route_of(&t, "b").via_backlink);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut text = String::new();
        for i in 0..6_000 {
            text.push_str(&format!("h{} h{}(1)\n", i, i + 1));
        }
        let t = routes_for(&text, "h0");
        let last = route_of(&t, "h6000");
        assert_eq!(last.cost, 6_000);
        assert!(last.route.starts_with("h1!h2!"));
    }
}
