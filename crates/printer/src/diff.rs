//! Route-table diffing.
//!
//! Map administrators of the era re-ran pathalias on every map update
//! and diffed the output to see what moved. Comparing raw text lines
//! works badly when costs jitter; this module compares route tables
//! structurally and classifies every change.

use crate::route::RouteTable;
use std::collections::HashMap;
use std::fmt;

/// One difference between two route tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteChange {
    /// The destination exists only in the new table.
    Added {
        /// Destination name.
        name: String,
        /// Its new route.
        route: String,
    },
    /// The destination exists only in the old table.
    Removed {
        /// Destination name.
        name: String,
        /// Its old route.
        route: String,
    },
    /// The route string changed (mail now travels differently).
    Rerouted {
        /// Destination name.
        name: String,
        /// Old route.
        old: String,
        /// New route.
        new: String,
    },
    /// Same route, different cost (link weights changed).
    Recosted {
        /// Destination name.
        name: String,
        /// Old cost.
        old: u64,
        /// New cost.
        new: u64,
    },
}

impl fmt::Display for RouteChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteChange::Added { name, route } => write!(f, "+ {name}\t{route}"),
            RouteChange::Removed { name, route } => write!(f, "- {name}\t{route}"),
            RouteChange::Rerouted { name, old, new } => {
                write!(f, "~ {name}\t{old} -> {new}")
            }
            RouteChange::Recosted { name, old, new } => {
                write!(f, "$ {name}\tcost {old} -> {new}")
            }
        }
    }
}

/// Compares two route tables (visible entries only), returning changes
/// sorted by destination name.
pub fn diff(old: &RouteTable, new: &RouteTable) -> Vec<RouteChange> {
    let old_map: HashMap<&str, (&str, u64)> = old
        .visible()
        .map(|r| (r.name.as_str(), (r.route.as_str(), r.cost)))
        .collect();
    let new_map: HashMap<&str, (&str, u64)> = new
        .visible()
        .map(|r| (r.name.as_str(), (r.route.as_str(), r.cost)))
        .collect();

    let mut changes = Vec::new();
    for (name, (route, cost)) in &new_map {
        match old_map.get(name) {
            None => changes.push(RouteChange::Added {
                name: name.to_string(),
                route: route.to_string(),
            }),
            Some((old_route, old_cost)) => {
                if old_route != route {
                    changes.push(RouteChange::Rerouted {
                        name: name.to_string(),
                        old: old_route.to_string(),
                        new: route.to_string(),
                    });
                } else if old_cost != cost {
                    changes.push(RouteChange::Recosted {
                        name: name.to_string(),
                        old: *old_cost,
                        new: *cost,
                    });
                }
            }
        }
    }
    for (name, (route, _)) in &old_map {
        if !new_map.contains_key(name) {
            changes.push(RouteChange::Removed {
                name: name.to_string(),
                route: route.to_string(),
            });
        }
    }
    changes.sort_by(|a, b| key_of(a).cmp(key_of(b)));
    changes
}

fn key_of(c: &RouteChange) -> &str {
    match c {
        RouteChange::Added { name, .. }
        | RouteChange::Removed { name, .. }
        | RouteChange::Rerouted { name, .. }
        | RouteChange::Recosted { name, .. } => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_routes;
    use pathalias_mapper::{map, MapOptions};
    use pathalias_parser::parse;

    fn table(text: &str, source: &str) -> RouteTable {
        let g = parse(text).unwrap();
        let s = g.try_node(source).unwrap();
        let tree = map(&g, s, &MapOptions::default()).unwrap();
        compute_routes(&tree)
    }

    #[test]
    fn identical_tables_no_changes() {
        let a = table("a b(10)\nb c(10)\n", "a");
        let b = table("a b(10)\nb c(10)\n", "a");
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn classification() {
        let old = table("a b(10)\nb c(10)\na gone(5)\n", "a");
        // c now routed directly; gone disappears; fresh appears; b
        // costs more.
        let new = table("a b(25)\na c(12)\na fresh(7)\n", "a");
        let changes = diff(&old, &new);
        assert!(changes
            .iter()
            .any(|c| matches!(c, RouteChange::Added { name, .. } if name == "fresh")));
        assert!(changes
            .iter()
            .any(|c| matches!(c, RouteChange::Removed { name, .. } if name == "gone")));
        assert!(changes.iter().any(|c| matches!(
            c,
            RouteChange::Rerouted { name, new, .. } if name == "c" && new == "c!%s"
        )));
        assert!(changes.iter().any(|c| matches!(
            c,
            RouteChange::Recosted { name, old: 10, new: 25 } if name == "b"
        )));
    }

    #[test]
    fn sorted_and_displayable() {
        let old = table("a z(10)\n", "a");
        let new = table("a b(10)\n", "a");
        let changes = diff(&old, &new);
        let lines: Vec<String> = changes.iter().map(|c| c.to_string()).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("+ b"), "{lines:?}");
        assert!(lines[1].starts_with("- z"), "{lines:?}");
    }
}
