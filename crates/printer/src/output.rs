//! Rendering route tables as text.
//!
//! "Output from pathalias is a simple linear file, in the UNIX
//! tradition." One line per visible route: optionally the cost, then
//! the host name, then the format string, tab separated — exactly the
//! layout of the paper's worked example.

use crate::route::RouteTable;
use std::io::{self, Write};

/// Output ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sort {
    /// Ascending cost, ties by name — the order of the paper's example.
    #[default]
    ByCost,
    /// Lexicographic by host name (handy for diffing maps).
    ByName,
}

/// Output options.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrintOptions {
    /// Prefix each line with the path cost (the paper's example shows
    /// costs; the production tool's default omitted them).
    pub with_costs: bool,
    /// Line ordering.
    pub sort: Sort,
    /// Include hidden entries (networks, subdomains, private hosts),
    /// marked with a leading `#` — a debugging aid.
    pub include_hidden: bool,
}

/// Renders the table to a string.
pub fn render(table: &RouteTable, opts: &PrintOptions) -> String {
    let mut buf = Vec::new();
    write_routes(&mut buf, table, opts).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("output is UTF-8")
}

/// Writes the table to any [`Write`] sink.
pub fn write_routes(
    out: &mut dyn Write,
    table: &RouteTable,
    opts: &PrintOptions,
) -> io::Result<()> {
    let mut rows: Vec<&crate::route::Route> = if opts.include_hidden {
        table.entries.iter().collect()
    } else {
        table.visible().collect()
    };
    match opts.sort {
        Sort::ByCost => rows.sort_by(|a, b| a.cost.cmp(&b.cost).then_with(|| a.name.cmp(&b.name))),
        Sort::ByName => rows.sort_by(|a, b| a.name.cmp(&b.name)),
    }
    for r in rows {
        let hidden_marker = if !r.kind.is_visible() { "# " } else { "" };
        if opts.with_costs {
            writeln!(out, "{hidden_marker}{}\t{}\t{}", r.cost, r.name, r.route)?;
        } else {
            writeln!(out, "{hidden_marker}{}\t{}", r.name, r.route)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_routes;
    use pathalias_mapper::{map, MapOptions};
    use pathalias_parser::parse;

    fn table(text: &str, source: &str) -> RouteTable {
        let g = parse(text).unwrap();
        let s = g.try_node(source).unwrap();
        let tree = map(&g, s, &MapOptions::default()).unwrap();
        compute_routes(&tree)
    }

    #[test]
    fn cost_sorted_with_costs() {
        let t = table("a b(20)\na c(10)\n", "a");
        let s = render(
            &t,
            &PrintOptions {
                with_costs: true,
                ..PrintOptions::default()
            },
        );
        assert_eq!(s, "0\ta\t%s\n10\tc\tc!%s\n20\tb\tb!%s\n");
    }

    #[test]
    fn name_sorted_without_costs() {
        let t = table("a b(20)\na c(10)\n", "a");
        let s = render(
            &t,
            &PrintOptions {
                sort: Sort::ByName,
                ..PrintOptions::default()
            },
        );
        assert_eq!(s, "a\t%s\nb\tb!%s\nc\tc!%s\n");
    }

    #[test]
    fn equal_costs_tie_by_name() {
        let t = table("a x(10), m(10)\n", "a");
        let s = render(
            &t,
            &PrintOptions {
                with_costs: true,
                ..PrintOptions::default()
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("\tm\t"));
        assert!(lines[2].contains("\tx\t"));
    }

    #[test]
    fn hidden_entries_marked() {
        let t = table("a NET(5)\nNET = {x}(5)\n", "a");
        let normal = render(&t, &PrintOptions::default());
        assert!(!normal.contains("NET\t"), "{normal}");
        let debug = render(
            &t,
            &PrintOptions {
                include_hidden: true,
                ..PrintOptions::default()
            },
        );
        assert!(debug.contains("# NET\t"), "{debug}");
    }

    #[test]
    fn writer_interface() {
        let t = table("a b(1)\n", "a");
        let mut buf = Vec::new();
        write_routes(&mut buf, &t, &PrintOptions::default()).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("b\tb!%s"));
    }
}
