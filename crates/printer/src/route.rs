//! Route records.

use pathalias_graph::{Cost, NodeId};

/// What kind of entry a route is, which controls output visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// An ordinary host (printed).
    Host,
    /// A host reached over an alias edge (printed; same route as its
    /// partner).
    Alias,
    /// A network placeholder (never printed).
    Network,
    /// A top-level domain — tree parent is not a domain (printed).
    TopDomain,
    /// A subdomain (not printed; members carry the full name instead).
    SubDomain,
    /// A private host (not printed, may appear inside routes).
    Private,
}

impl RouteKind {
    /// Whether entries of this kind appear in normal output.
    pub fn is_visible(self) -> bool {
        matches!(
            self,
            RouteKind::Host | RouteKind::Alias | RouteKind::TopDomain
        )
    }
}

/// One computed route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The node this route reaches.
    pub node: NodeId,
    /// Output name: the host name, with domain names appended when the
    /// tree path descends through domains (`caip.rutgers.edu`).
    pub name: String,
    /// Path cost (including heuristic penalties).
    pub cost: Cost,
    /// The printf-style format string; `%s` marks where the user name
    /// (or, for domains, the remaining route) is inserted.
    pub route: String,
    /// Entry kind.
    pub kind: RouteKind,
    /// The path traverses a domain.
    pub via_domain: bool,
    /// The path uses an invented back link.
    pub via_backlink: bool,
    /// The path splices `!` after `@` — the ambiguous form the
    /// mixed-syntax penalty exists to avoid.
    pub ambiguous: bool,
}

impl Route {
    /// Instantiates the format string: "A mail user or delivery agent
    /// combines this route with a user name, producing a complete
    /// route."
    ///
    /// # Examples
    ///
    /// ```
    /// use pathalias_printer::{Route, RouteKind};
    /// # use pathalias_graph::NodeId;
    /// let r = Route {
    ///     node: NodeId::from_raw(0),
    ///     name: "research".into(),
    ///     cost: 3000,
    ///     route: "duke!research!%s".into(),
    ///     kind: RouteKind::Host,
    ///     via_domain: false,
    ///     via_backlink: false,
    ///     ambiguous: false,
    /// };
    /// assert_eq!(r.format("honey"), "duke!research!honey");
    /// ```
    pub fn format(&self, user: &str) -> String {
        self.route.replacen("%s", user, 1)
    }
}

/// All routes computed from one shortest-path tree.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// The mapping source.
    pub source: NodeId,
    /// Every labelled node's route, in node order (hidden entries
    /// included; filter with [`RouteTable::visible`]).
    pub entries: Vec<Route>,
}

impl RouteTable {
    /// The printable entries.
    pub fn visible(&self) -> impl Iterator<Item = &Route> {
        self.entries.iter().filter(|r| r.kind.is_visible())
    }

    /// Looks an entry up by output name.
    pub fn find(&self, name: &str) -> Option<&Route> {
        self.entries.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility() {
        assert!(RouteKind::Host.is_visible());
        assert!(RouteKind::Alias.is_visible());
        assert!(RouteKind::TopDomain.is_visible());
        assert!(!RouteKind::Network.is_visible());
        assert!(!RouteKind::SubDomain.is_visible());
        assert!(!RouteKind::Private.is_visible());
    }

    #[test]
    fn format_replaces_marker_once() {
        let r = Route {
            node: NodeId::from_raw(0),
            name: "x".into(),
            cost: 0,
            route: "a!%s@b".into(),
            kind: RouteKind::Host,
            via_domain: false,
            via_backlink: false,
            ambiguous: false,
        };
        assert_eq!(r.format("user"), "a!user@b");
    }
}
