//! Readiness polling and raw-socket helpers, with no dependencies.
//!
//! The server crate forbids `unsafe`, so the few unavoidable syscall
//! shims live here instead: a level-triggered [`Poller`] over epoll
//! (Linux) or kqueue (macOS/BSD), `SO_REUSEPORT` listener/socket
//! constructors for per-core accept sharding, and an `RLIMIT_NOFILE`
//! raiser for C10K-scale tests. Everything binds directly against the
//! system libc that `std` already links — no `libc` crate.
//!
//! The API is deliberately tiny: register a file descriptor with a
//! `u64` token and read/write interest, block in [`Poller::wait`], and
//! get back `(token, readable, writable, hangup)` events. Closing a
//! descriptor deregisters it from both epoll and kqueue automatically,
//! so callers never unregister before `drop`.
//!
//! # The unsafe-isolation rule
//!
//! This crate exists so that `unsafe` has exactly one home. Every
//! other crate in the workspace carries `#![forbid(unsafe_code)]`;
//! this one may not, because readiness syscalls have no safe
//! wrappers in `std`. The discipline in exchange: each `unsafe` block
//! wraps a single libc call, the raw pointers it passes are to stack
//! or owned locals that outlive the call, and every descriptor
//! returned crosses immediately into an owning `std` type
//! (`TcpListener`, `UdpSocket`, `OwnedFd`-style wrappers) so lifetime
//! and close responsibilities revert to safe code. Nothing `unsafe`
//! leaks through the public API.

#![cfg(unix)]
#![deny(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::os::unix::io::{FromRawFd, RawFd};

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (or has hung up — a read will
    /// observe the EOF/error, so hangups are folded in here).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored.
    pub hangup: bool,
}

mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }
}

fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// Closes `fd` and returns `err` — the error path of a half-built
/// socket.
fn fail(fd: RawFd, err: io::Error) -> io::Error {
    unsafe {
        sys::close(fd);
    }
    err
}

// ---- epoll (Linux) -------------------------------------------------

#[cfg(any(target_os = "linux", target_os = "android"))]
mod imp {
    use super::{last_errno, PollEvent};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    // The kernel ABI packs epoll_event on x86; other architectures use
    // natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, max: c_int, timeout: c_int) -> c_int;
    }

    /// A level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_errno());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: if read { EPOLLIN } else { 0 } | if write { EPOLLOUT } else { 0 },
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(last_errno());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        /// Changes the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        /// Blocks until readiness or `timeout`, appending events to
        /// `out` (cleared first). A signal interruption delivers zero
        /// events rather than an error.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
            };
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ms,
                )
            };
            if n < 0 {
                let e = last_errno();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let events = { ev.events };
                let data = { ev.data };
                out.push(PollEvent {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    hangup: events & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                super::sys::close(self.epfd);
            }
        }
    }
}

// ---- kqueue (macOS / BSD) ------------------------------------------

#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod imp {
    use super::{last_errno, PollEvent};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::ptr;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x1;
    const EV_DELETE: u16 = 0x2;
    const EV_EOF: u16 = 0x8000;

    #[repr(C)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const Kevent,
            nchanges: c_int,
            eventlist: *mut Kevent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
    }

    /// A level-triggered kqueue instance.
    pub struct Poller {
        kq: RawFd,
        buf: Vec<Kevent>,
        /// Read/write filters kqueue knows about, so `modify` only
        /// issues deletes for filters that exist (a delete of a
        /// missing filter is ENOENT, which we also tolerate).
        _private: (),
    }

    impl Poller {
        /// Creates the kqueue instance.
        pub fn new() -> io::Result<Poller> {
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(last_errno());
            }
            let mut buf = Vec::with_capacity(1024);
            buf.resize_with(1024, || Kevent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: ptr::null_mut(),
            });
            Ok(Poller {
                kq,
                buf,
                _private: (),
            })
        }

        fn apply(&self, fd: RawFd, filter: i16, enable: bool, token: u64) -> io::Result<()> {
            let change = Kevent {
                ident: fd as usize,
                filter,
                flags: if enable { EV_ADD } else { EV_DELETE },
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            let rc = unsafe { kevent(self.kq, &change, 1, ptr::null_mut(), 0, ptr::null()) };
            if rc < 0 {
                let e = last_errno();
                // Deleting a filter that was never added is fine.
                if !enable && e.raw_os_error() == Some(2) {
                    return Ok(());
                }
                return Err(e);
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            if read {
                self.apply(fd, EVFILT_READ, true, token)?;
            }
            if write {
                self.apply(fd, EVFILT_WRITE, true, token)?;
            }
            Ok(())
        }

        /// Changes the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.apply(fd, EVFILT_READ, read, token)?;
            self.apply(fd, EVFILT_WRITE, write, token)
        }

        /// Blocks until readiness or `timeout`, appending events to
        /// `out` (cleared first). A signal interruption delivers zero
        /// events rather than an error.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let ts;
            let ts_ptr = match timeout {
                None => ptr::null(),
                Some(d) => {
                    ts = Timespec {
                        tv_sec: d.as_secs() as i64,
                        tv_nsec: d.subsec_nanos() as i64,
                    };
                    &ts as *const Timespec
                }
            };
            let n = unsafe {
                kevent(
                    self.kq,
                    ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ts_ptr,
                )
            };
            if n < 0 {
                let e = last_errno();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let eof = ev.flags & EV_EOF != 0;
                out.push(PollEvent {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ || eof,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: eof,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                super::sys::close(self.kq);
            }
        }
    }
}

pub use imp::Poller;

// ---- SO_REUSEPORT sockets ------------------------------------------

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sockopt {
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_REUSEADDR: i32 = 2;
    pub const SO_REUSEPORT: i32 = 15;
    pub const AF_INET: i32 = 2;
    pub const AF_INET6: i32 = 10;
}
#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod sockopt {
    pub const SOL_SOCKET: i32 = 0xffff;
    pub const SO_REUSEADDR: i32 = 0x0004;
    pub const SO_REUSEPORT: i32 = 0x0200;
    pub const AF_INET: i32 = 2;
    pub const AF_INET6: i32 = 30;
}

const SOCK_STREAM: i32 = 1;
const SOCK_DGRAM: i32 = 2;

/// Serializes `addr` into the platform's `sockaddr_in`/`sockaddr_in6`
/// layout; returns the buffer and the length to pass to `bind`.
fn sockaddr_bytes(addr: &SocketAddr) -> ([u8; 28], u32) {
    let mut buf = [0u8; 28];
    let (family, len) = match addr {
        SocketAddr::V4(_) => (sockopt::AF_INET, 16u32),
        SocketAddr::V6(_) => (sockopt::AF_INET6, 28u32),
    };
    // Linux: sa_family is a native-endian u16 at offset 0. BSD-family
    // kernels put a length byte first and the family in one byte.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    buf[0..2].copy_from_slice(&(family as u16).to_ne_bytes());
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        buf[0] = len as u8;
        buf[1] = family as u8;
    }
    buf[2..4].copy_from_slice(&addr.port().to_be_bytes());
    match addr {
        SocketAddr::V4(v4) => {
            buf[4..8].copy_from_slice(&v4.ip().octets());
        }
        SocketAddr::V6(v6) => {
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
        }
    }
    (buf, len)
}

fn set_opt(fd: RawFd, name: i32) -> io::Result<()> {
    let one: i32 = 1;
    let rc = unsafe {
        sys::setsockopt(
            fd,
            sockopt::SOL_SOCKET,
            name,
            &one as *const i32 as *const _,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(last_errno());
    }
    Ok(())
}

fn reuseport_socket(addr: &SocketAddr, ty: i32) -> io::Result<RawFd> {
    let family = match addr {
        SocketAddr::V4(_) => sockopt::AF_INET,
        SocketAddr::V6(_) => sockopt::AF_INET6,
    };
    let fd = unsafe { sys::socket(family, ty, 0) };
    if fd < 0 {
        return Err(last_errno());
    }
    if ty == SOCK_STREAM {
        // std's TcpListener::bind sets SO_REUSEADDR on unix; match it
        // so restart-after-crash rebinding behaves identically.
        set_opt(fd, sockopt::SO_REUSEADDR).map_err(|e| fail(fd, e))?;
    }
    set_opt(fd, sockopt::SO_REUSEPORT).map_err(|e| fail(fd, e))?;
    let (sa, len) = sockaddr_bytes(addr);
    if unsafe { sys::bind(fd, sa.as_ptr() as *const _, len) } < 0 {
        return Err(fail(fd, last_errno()));
    }
    Ok(fd)
}

/// Binds a TCP listener with `SO_REUSEPORT` set **before** bind, so
/// several listeners can share one port and the kernel load-balances
/// incoming connections across them.
pub fn reuseport_tcp_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let fd = reuseport_socket(&addr, SOCK_STREAM)?;
    if unsafe { sys::listen(fd, 1024) } < 0 {
        return Err(fail(fd, last_errno()));
    }
    // From here std owns the fd: accept() on a listener built this way
    // applies std's usual close-on-exec handling to accepted sockets.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Binds a UDP socket with `SO_REUSEPORT` set before bind; the kernel
/// spreads incoming datagrams across the sharing sockets.
pub fn reuseport_udp_socket(addr: SocketAddr) -> io::Result<UdpSocket> {
    let fd = reuseport_socket(&addr, SOCK_DGRAM)?;
    Ok(unsafe { UdpSocket::from_raw_fd(fd) })
}

#[cfg(any(target_os = "linux", target_os = "android"))]
const RLIMIT_NOFILE: i32 = 7;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
const RLIMIT_NOFILE: i32 = 8;

/// Best-effort raise of the open-file limit to at least `min`
/// descriptors (capped at the hard limit). Returns the soft limit in
/// effect afterwards; never fails — C10K tests degrade instead.
pub fn raise_nofile_limit(min: u64) -> u64 {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= min {
        return lim.cur;
    }
    let want = min.min(lim.max);
    let new = sys::Rlimit {
        cur: want,
        max: lim.max,
    };
    if unsafe { sys::setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        want
    } else {
        lim.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpStream, UdpSocket};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn pipe_readiness_round_trip() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data fires again.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);

        let mut byte = [0u8; 8];
        let mut b2 = &b;
        let n = b2.read(&mut byte).unwrap();
        assert_eq!(n, 1);
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_reported_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, true, false).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    fn modify_changes_interest() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, true, false).unwrap();
        a.write_all(b"x").unwrap();
        // Interest off: the pending byte no longer wakes the poll.
        poller.modify(b.as_raw_fd(), 1, false, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
        poller.modify(b.as_raw_fd(), 1, true, false).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn reuseport_listeners_share_a_port() {
        let first = reuseport_tcp_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_tcp_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), addr.port());
        // A client reaches one of the two.
        let _client = TcpStream::connect(addr).unwrap();
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let accepted = first.accept().is_ok() || second.accept().is_ok();
        assert!(accepted, "one of the sharing listeners got the connection");
    }

    #[test]
    fn reuseport_udp_round_trip() {
        let sock = reuseport_udp_socket("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = sock.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(b"ping", addr).unwrap();
        let mut buf = [0u8; 16];
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let (n, peer) = sock.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        sock.send_to(b"pong", peer).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let (n, _) = client.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let lim = raise_nofile_limit(1024);
        assert!(lim >= 256, "soft limit {lim} suspiciously low");
    }
}
