//! The implicit binary heap with decrease-key.
//!
//! The paper: "For the priority queue itself, we use an implicit binary
//! heap. This requires a large contiguous array, but since the hash
//! table is no longer needed and is guaranteed to be large enough, we
//! use that space instead of allocating a new array." Rust's allocator
//! makes the space-reuse trick unnecessary, but the structure is the
//! same: a dense array heap plus a position index per node, so that a
//! queued node's key can be *decreased in place* and the heap property
//! restored by sifting — the operation `std::collections::BinaryHeap`
//! lacks.

/// An indexed min-heap over dense `u32` node indices.
///
/// Each node may appear at most once; [`decrease`] updates a queued
/// node's key. All operations are O(log n); [`contains`](IndexedHeap::contains) and key lookup
/// are O(1) via the position index.
///
/// [`decrease`]: IndexedHeap::decrease
///
/// # Examples
///
/// ```
/// use pathalias_mapper::heap::IndexedHeap;
///
/// let mut h: IndexedHeap<u64> = IndexedHeap::new(10);
/// h.push(3, 50);
/// h.push(7, 20);
/// h.push(1, 30);
/// h.decrease(3, 10);
/// assert_eq!(h.pop(), Some((3, 10)));
/// assert_eq!(h.pop(), Some((7, 20)));
/// assert_eq!(h.pop(), Some((1, 30)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<K: Ord + Copy> {
    /// Heap slots: (key, node).
    slots: Vec<(K, u32)>,
    /// node -> slot + 1; 0 means absent.
    pos: Vec<u32>,
}

impl<K: Ord + Copy> IndexedHeap<K> {
    /// Creates a heap able to hold node indices below `capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedHeap {
            slots: Vec::with_capacity(capacity),
            pos: vec![0; capacity],
        }
    }

    /// Number of queued nodes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `node` is queued.
    pub fn contains(&self, node: u32) -> bool {
        self.pos[node as usize] != 0
    }

    /// The key of a queued node.
    pub fn key_of(&self, node: u32) -> Option<K> {
        let p = self.pos[node as usize];
        if p == 0 {
            None
        } else {
            Some(self.slots[(p - 1) as usize].0)
        }
    }

    /// Queues `node` with `key`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already queued or out of range.
    pub fn push(&mut self, node: u32, key: K) {
        assert_eq!(self.pos[node as usize], 0, "node {node} already queued");
        self.slots.push((key, node));
        let i = self.slots.len() - 1;
        self.pos[node as usize] = (i + 1) as u32;
        self.sift_up(i);
    }

    /// Removes and returns the minimum (key order, ties by insertion
    /// history of sifting — callers wanting determinism put a tiebreak
    /// in the key).
    pub fn pop(&mut self) -> Option<(u32, K)> {
        if self.slots.is_empty() {
            return None;
        }
        let last = self.slots.len() - 1;
        self.slots.swap(0, last);
        let (key, node) = self.slots.pop().expect("nonempty");
        self.pos[node as usize] = 0;
        if !self.slots.is_empty() {
            self.pos[self.slots[0].1 as usize] = 1;
            self.sift_down(0);
        }
        Some((node, key))
    }

    /// Lowers the key of a queued node and restores the heap property
    /// ("we reduce the cost to this neighbor ... and restore the heap
    /// property").
    ///
    /// # Panics
    ///
    /// Panics if `node` is not queued or `key` is larger than the
    /// current key.
    pub fn decrease(&mut self, node: u32, key: K) {
        let p = self.pos[node as usize];
        assert_ne!(p, 0, "node {node} not queued");
        let i = (p - 1) as usize;
        assert!(key <= self.slots[i].0, "decrease-key must not increase");
        self.slots[i].0 = key;
        self.sift_up(i);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].0 >= self.slots[parent].0 {
                break;
            }
            self.swap_slots(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.slots.len() && self.slots[l].0 < self.slots[smallest].0 {
                smallest = l;
            }
            if r < self.slots.len() && self.slots[r].0 < self.slots[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.pos[self.slots[a].1 as usize] = (a + 1) as u32;
        self.pos[self.slots[b].1 as usize] = (b + 1) as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.slots.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.slots[parent].0 <= self.slots[i].0,
                "heap order violated at {i}"
            );
        }
        for (i, &(_, node)) in self.slots.iter().enumerate() {
            assert_eq!(self.pos[node as usize] as usize, i + 1, "pos index stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_ordering() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(16);
        for (n, k) in [(0u32, 9u32), (1, 3), (2, 7), (3, 1), (4, 5)] {
            h.push(n, k);
            h.check_invariants();
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop() {
            h.check_invariants();
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn decrease_reorders() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(8);
        h.push(0, 10);
        h.push(1, 20);
        h.push(2, 30);
        h.decrease(2, 5);
        h.check_invariants();
        assert_eq!(h.pop(), Some((2, 5)));
        assert_eq!(h.key_of(1), Some(20));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(4);
        assert!(!h.contains(2));
        h.push(2, 1);
        assert!(h.contains(2));
        h.pop();
        assert!(!h.contains(2));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_push_panics() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(4);
        h.push(1, 1);
        h.push(1, 2);
    }

    #[test]
    #[should_panic(expected = "not queued")]
    fn decrease_absent_panics() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(4);
        h.decrease(1, 1);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn increase_key_panics() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new(4);
        h.push(1, 5);
        h.decrease(1, 9);
    }

    #[test]
    fn tuple_keys_give_deterministic_ties() {
        let mut h: IndexedHeap<(u64, u32)> = IndexedHeap::new(8);
        h.push(5, (10, 5));
        h.push(3, (10, 3));
        h.push(4, (10, 4));
        assert_eq!(h.pop().unwrap().0, 3);
        assert_eq!(h.pop().unwrap().0, 4);
        assert_eq!(h.pop().unwrap().0, 5);
    }

    #[test]
    fn model_check_against_std_binaryheap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Deterministic pseudo-random workload.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };

        let n = 256u32;
        let mut ours: IndexedHeap<(u64, u32)> = IndexedHeap::new(n as usize);
        let mut theirs: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut queued: Vec<Option<u64>> = vec![None; n as usize];

        for _ in 0..5000 {
            let r = next();
            let node = (r % n as u64) as u32;
            match r % 3 {
                0 => {
                    if queued[node as usize].is_none() {
                        let k = next() % 1000;
                        ours.push(node, (k, node));
                        theirs.push(Reverse((k, node)));
                        queued[node as usize] = Some(k);
                    }
                }
                1 => {
                    if let Some(old) = queued[node as usize] {
                        if old > 0 {
                            let k = next() % old;
                            ours.decrease(node, (k, node));
                            // Model: lazy-delete the old entry.
                            theirs.push(Reverse((k, node)));
                            queued[node as usize] = Some(k);
                        }
                    }
                }
                _ => {
                    // Pop from the model, skipping stale entries.
                    loop {
                        match theirs.pop() {
                            None => {
                                assert!(ours.pop().is_none());
                                break;
                            }
                            Some(Reverse((k, node))) => {
                                if queued[node as usize] == Some(k) {
                                    assert_eq!(ours.pop(), Some((node, (k, node))));
                                    queued[node as usize] = None;
                                    break;
                                }
                                // Stale: superseded by a decrease.
                            }
                        }
                    }
                }
            }
        }
    }
}
