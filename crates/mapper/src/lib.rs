//! Shortest-path mapping: the second phase of pathalias.
//!
//! "We perform a modified breadth-first search of the graph, starting at
//! the source ... we use a priority queue and extract vertices in
//! increasing order of path cost." This crate implements:
//!
//! * [`heap`] — the implicit binary heap with decrease-key the paper
//!   describes ("if some neighbor of v is already queued, but the path
//!   through v is shorter, we reduce the cost to this neighbor ... and
//!   restore the heap property");
//! * [`map_frozen`] / [`map_frozen_readonly`] — the sparse-graph
//!   Dijkstra variant over the frozen CSR snapshot
//!   ([`pathalias_graph::FrozenGraph`]), running in O(e log v) with
//!   contiguous edge slices and dense visit arrays;
//! * [`map`] / [`map_readonly`] — one-shot wrappers that freeze a
//!   built [`pathalias_graph::Graph`] and map it;
//! * [`map_frozen_quadratic_readonly`] — the textbook O(v²) Dijkstra
//!   the paper compares against ("both asymptotically and
//!   pragmatically, the priority queue variant is a clear winner"),
//!   kept for experiment E7;
//! * [`CostModel`] — the routing heuristics layered on edge weights:
//!   the mixed-syntax penalty, gatewayed networks and domains, and the
//!   domain relay restriction;
//! * back links: "we examine the connections out of each unreachable
//!   host, invent links from its neighbors back to the host, and
//!   continue" — realized as augmented frozen snapshots, so mapping
//!   never mutates the caller's graph;
//! * [`map_dual`] — the PROBLEMS-section experiment: "a modified
//!   algorithm that maintains the 'second-best' path when the shortest
//!   path to a host goes by way of a domain";
//! * [`parallel`] — multi-source mapping on scoped threads over one
//!   shared frozen snapshot.
//!
//! # Examples
//!
//! ```
//! use pathalias_mapper::{map, MapOptions};
//!
//! let g = pathalias_parser::parse("a b(10)\nb c(20)\n").unwrap();
//! let a = g.try_node("a").unwrap();
//! let c = g.try_node("c").unwrap();
//! let tree = map(&g, a, &MapOptions::default()).unwrap();
//! assert_eq!(tree.cost(c), Some(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost_model;
mod dijkstra;
mod dual;
pub mod heap;
pub mod parallel;
mod tree;

pub use cost_model::CostModel;
pub use dijkstra::{
    map, map_frozen, map_frozen_quadratic_readonly, map_frozen_readonly, map_quadratic_readonly,
    map_readonly, repair_frozen, MapError, MapOptions,
};
pub use dual::{map_dual, map_dual_frozen, DualTree};
pub use tree::{format_trace, Label, MapStats, ShortestPathTree, TraceEvent};
