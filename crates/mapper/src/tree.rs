//! The shortest-path tree produced by mapping.

use pathalias_graph::{Cost, EdgeId, FrozenGraph, NodeId};
use std::sync::Arc;

/// The best path found to one node.
///
/// Besides cost, a label carries the path state the heuristics need:
/// visible-hop count, which routing-syntax classes appear on the path,
/// and whether the path has passed through a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// Total path cost including heuristic penalties.
    pub cost: Cost,
    /// Number of *visible* hops (alias and network-entry edges add no
    /// hop to the printed route).
    pub hops: u32,
    /// Predecessor node and the frozen edge that reached this node;
    /// `None` only for the source.
    pub pred: Option<(NodeId, EdgeId)>,
    /// The path contains a host-on-left (`!`-style) hop.
    pub has_left: bool,
    /// The path contains a host-on-right (`@`-style) hop.
    pub has_right: bool,
    /// The path has passed through a domain node.
    pub tainted: bool,
    /// The path uses at least one invented back link.
    pub via_backlink: bool,
    /// The path splices a `!` hop after an `@` hop — the address form
    /// UUCP mailers misparse (what the mixed-syntax penalty exists to
    /// avoid). Tracked regardless of the penalty setting so ablations
    /// can count ambiguous routes.
    pub ambiguous: bool,
}

/// Counters from a mapping run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Nodes mapped (extracted with final labels).
    pub mapped: usize,
    /// Heap insertions (0 for the quadratic variant).
    pub pushes: u64,
    /// Heap extractions that yielded a node (0 for the quadratic
    /// variant).
    pub pops: u64,
    /// Lazy-deletion extractions skipped because the node's label had
    /// improved after the entry was queued (0 for the quadratic
    /// variant).
    pub stale_pops: u64,
    /// Edge relaxations attempted.
    pub relaxations: u64,
    /// Candidate-selection scan steps (quadratic variant only).
    pub scan_steps: u64,
    /// Gate penalties applied.
    pub gate_penalties: u64,
    /// Relay penalties applied.
    pub relay_penalties: u64,
    /// Mixed-syntax penalties applied.
    pub mixed_penalties: u64,
    /// Relaxations that would create an ambiguous (`!`-after-`@`)
    /// address, counted independently of the penalty setting.
    pub ambiguous_hops: u64,
    /// Back-link rounds run (the "continue with Dijkstra" passes).
    pub backlink_rounds: u32,
    /// Back links invented.
    pub invented_links: u64,
}

/// Why a relaxation did or did not improve a label (trace output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecision {
    /// The candidate became the node's label.
    Accepted,
    /// The candidate lost to the existing label.
    Worse,
    /// Equal cost and hops; the tie broke on predecessor identity.
    TieKept,
}

/// One traced relaxation (pathalias `-t`-style debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Edge tail.
    pub from: NodeId,
    /// Edge head.
    pub to: NodeId,
    /// The frozen edge relaxed.
    pub link: EdgeId,
    /// Raw edge weight (after `adjust`).
    pub base: Cost,
    /// Gate penalty applied.
    pub gate: Cost,
    /// Relay penalty applied.
    pub relay: Cost,
    /// Mixed-syntax penalty applied.
    pub mixed: Cost,
    /// Resulting candidate path cost.
    pub candidate: Cost,
    /// Outcome.
    pub decision: TraceDecision,
}

/// The result of a mapping run: a directed tree rooted at the source
/// ("the marked edges form a directed tree, rooted at the source
/// vertex").
///
/// The tree owns a handle to the [`FrozenGraph`] it was mapped on —
/// which, after a back-link pass, may be an *augmented* copy of the
/// graph the caller froze — so edge ids in the labels always resolve
/// against the right snapshot and the printer needs nothing else.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The mapping source (the local host).
    pub source: NodeId,
    /// The frozen graph the labels refer to.
    pub(crate) frozen: Arc<FrozenGraph>,
    pub(crate) labels: Vec<Option<Label>>,
    /// Counters from the run.
    pub stats: MapStats,
    /// Traced relaxations for hosts requested in the options.
    pub trace: Vec<TraceEvent>,
}

impl ShortestPathTree {
    /// The frozen graph this tree's labels (and their edge ids) refer
    /// to. After a back-link pass this includes the invented edges.
    pub fn frozen(&self) -> &Arc<FrozenGraph> {
        &self.frozen
    }

    /// The label for `node`, if it was reached.
    pub fn label(&self, node: NodeId) -> Option<&Label> {
        self.labels.get(node.index()).and_then(|l| l.as_ref())
    }

    /// The path cost to `node`, if reached.
    pub fn cost(&self, node: NodeId) -> Option<Cost> {
        self.label(node).map(|l| l.cost)
    }

    /// Whether `node` was reached.
    pub fn is_mapped(&self, node: NodeId) -> bool {
        self.label(node).is_some()
    }

    /// Number of reached nodes.
    pub fn mapped_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// The tree path from the source to `node` (inclusive), or `None`
    /// if unreached.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.label(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(l) = self.label(cur) {
            match l.pred {
                Some((p, _)) => {
                    path.push(p);
                    cur = p;
                }
                None => break,
            }
            assert!(
                path.len() <= self.labels.len(),
                "predecessor chain contains a cycle"
            );
        }
        path.reverse();
        Some(path)
    }

    /// Builds dense children lists (indexed by node), each sorted by
    /// node id for deterministic traversal.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut kids: Vec<Vec<NodeId>> = vec![Vec::new(); self.labels.len()];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(Label {
                pred: Some((p, _)), ..
            }) = l
            {
                kids[p.index()].push(NodeId::from_raw(i as u32));
            }
        }
        for k in &mut kids {
            k.sort();
        }
        kids
    }

    /// Hosts that remain unreachable: mappable nodes without labels.
    pub fn unreachable(&self) -> Vec<NodeId> {
        self.frozen
            .node_ids()
            .filter(|&id| self.frozen.is_mappable(id) && self.label(id).is_none())
            .collect()
    }
}

/// Renders traced relaxations as human-readable lines (the pathalias
/// `-t` debugging output: why a route was or was not chosen).
pub fn format_trace(f: &FrozenGraph, events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let penalties = {
            let mut parts = Vec::new();
            if e.gate > 0 {
                parts.push(format!("gate+{}", e.gate));
            }
            if e.relay > 0 {
                parts.push(format!("relay+{}", e.relay));
            }
            if e.mixed > 0 {
                parts.push(format!("mixed+{}", e.mixed));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!(" [{}]", parts.join(" "))
            }
        };
        let verdict = match e.decision {
            TraceDecision::Accepted => "accepted",
            TraceDecision::Worse => "worse",
            TraceDecision::TieKept => "tie-kept",
        };
        let _ = writeln!(
            out,
            "trace: {} -> {} base {}{} => candidate {} ({verdict})",
            f.name(e.from),
            f.name(e.to),
            e.base,
            penalties,
            e.candidate,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::Graph;

    fn node(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    fn tree_with(labels: Vec<Option<Label>>) -> ShortestPathTree {
        // A frozen graph with matching node count (edges irrelevant
        // for these structural tests).
        let mut g = Graph::new();
        for i in 0..labels.len() {
            g.node(&format!("n{i}"));
        }
        ShortestPathTree {
            source: node(0),
            frozen: Arc::new(g.freeze()),
            labels,
            stats: MapStats::default(),
            trace: Vec::new(),
        }
    }

    fn lbl(cost: Cost, pred: Option<u32>) -> Label {
        Label {
            cost,
            hops: 0,
            pred: pred.map(|p| (node(p), EdgeId::from_raw(0))),
            has_left: false,
            has_right: false,
            tainted: false,
            via_backlink: false,
            ambiguous: false,
        }
    }

    #[test]
    fn path_reconstruction() {
        // 0 -> 1 -> 2, 3 unreachable.
        let t = tree_with(vec![
            Some(lbl(0, None)),
            Some(lbl(5, Some(0))),
            Some(lbl(9, Some(1))),
            None,
        ]);
        assert_eq!(t.path_to(node(2)), Some(vec![node(0), node(1), node(2)]));
        assert_eq!(t.path_to(node(0)), Some(vec![node(0)]));
        assert_eq!(t.path_to(node(3)), None);
        assert_eq!(t.mapped_count(), 3);
        assert!(t.is_mapped(node(1)));
        assert!(!t.is_mapped(node(3)));
        assert_eq!(t.unreachable(), vec![node(3)]);
    }

    #[test]
    fn children_sorted() {
        let t = tree_with(vec![
            Some(lbl(0, None)),
            Some(lbl(5, Some(0))),
            Some(lbl(6, Some(0))),
            Some(lbl(7, Some(2))),
        ]);
        let kids = t.children();
        assert_eq!(kids[0], vec![node(1), node(2)]);
        assert_eq!(kids[2], vec![node(3)]);
        assert!(kids[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_pred_detected() {
        let t = tree_with(vec![Some(lbl(1, Some(1))), Some(lbl(1, Some(0)))]);
        let _ = t.path_to(node(0));
    }
}
