//! Multi-source mapping on scoped threads.
//!
//! Pathalias maps from one source — the local host. Site administrators
//! of the era ran it once per machine they administered; the benchmark
//! harness, the `mapgen` validation suite and the server's reload
//! validation map from many sources, so this module fans the read-only
//! mapper out over `std::thread::scope`. Every worker traverses the
//! same shared [`FrozenGraph`] — freezing happens exactly once, and the
//! snapshot is immutable, so no synchronization is needed beyond the
//! scope itself. Back links are not invented (use [`crate::map_frozen`]
//! once beforehand if they matter).

use crate::dijkstra::{map_frozen_readonly, MapError, MapOptions};
use crate::tree::ShortestPathTree;
use pathalias_graph::{FrozenGraph, Graph, NodeId};
use std::sync::Arc;

/// Maps from every source in `sources` over one shared frozen graph,
/// using up to `threads` worker threads. Results come back in
/// `sources` order.
///
/// # Examples
///
/// ```
/// use pathalias_mapper::{parallel::map_many_frozen, MapOptions};
/// use std::sync::Arc;
///
/// let g = pathalias_parser::parse("a b(10)\nb a(10)\nb c(5)\n").unwrap();
/// let sources = [g.try_node("a").unwrap(), g.try_node("b").unwrap()];
/// let frozen = Arc::new(g.freeze());
/// let trees = map_many_frozen(&frozen, &sources, &MapOptions::default(), 2);
/// assert_eq!(trees.len(), 2);
/// assert_eq!(trees[0].as_ref().unwrap().cost(sources[1]), Some(10));
/// ```
pub fn map_many_frozen(
    f: &Arc<FrozenGraph>,
    sources: &[NodeId],
    opts: &MapOptions,
    threads: usize,
) -> Vec<Result<ShortestPathTree, MapError>> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads <= 1 || sources.len() <= 1 {
        return sources
            .iter()
            .map(|&s| map_frozen_readonly(f, s, opts))
            .collect();
    }

    let mut results: Vec<Option<Result<ShortestPathTree, MapError>>> =
        (0..sources.len()).map(|_| None).collect();
    let chunk = sources.len().div_ceil(threads);

    std::thread::scope(|scope| {
        let mut rest: &mut [Option<Result<ShortestPathTree, MapError>>] = &mut results;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let slice_sources = &sources[offset..offset + take];
            let f = &*f;
            scope.spawn(move || {
                for (slot, &src) in head.iter_mut().zip(slice_sources) {
                    *slot = Some(map_frozen_readonly(f, src, opts));
                }
            });
            rest = tail;
            offset += take;
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Freezes `g` once, then fans out like [`map_many_frozen`].
pub fn map_many(
    g: &Graph,
    sources: &[NodeId],
    opts: &MapOptions,
    threads: usize,
) -> Vec<Result<ShortestPathTree, MapError>> {
    map_many_frozen(&Arc::new(g.freeze()), sources, opts, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::map_readonly;
    use pathalias_parser::parse;

    fn ring(n: usize) -> Graph {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("h{} h{}(10)\n", i, (i + 1) % n));
        }
        parse(&text).unwrap()
    }

    #[test]
    fn matches_sequential() {
        let g = ring(40);
        let sources: Vec<NodeId> = g.node_ids().collect();
        let opts = MapOptions::default();
        let par = map_many(&g, &sources, &opts, 4);
        for (i, &s) in sources.iter().enumerate() {
            let seq = map_readonly(&g, s, &opts).unwrap();
            let p = par[i].as_ref().unwrap();
            for id in g.node_ids() {
                assert_eq!(seq.label(id), p.label(id));
            }
        }
    }

    #[test]
    fn workers_share_one_snapshot() {
        let g = ring(12);
        let sources: Vec<NodeId> = g.node_ids().collect();
        let frozen = Arc::new(g.freeze());
        let trees = map_many_frozen(&frozen, &sources, &MapOptions::default(), 4);
        for t in trees.iter().map(|t| t.as_ref().unwrap()) {
            assert!(Arc::ptr_eq(t.frozen(), &frozen), "no per-source refreeze");
        }
    }

    #[test]
    fn single_thread_fallback() {
        let g = ring(5);
        let sources: Vec<NodeId> = g.node_ids().collect();
        let trees = map_many(&g, &sources, &MapOptions::default(), 1);
        assert_eq!(trees.len(), 5);
        assert!(trees.iter().all(|t| t.is_ok()));
    }

    #[test]
    fn empty_sources() {
        let g = ring(3);
        assert!(map_many(&g, &[], &MapOptions::default(), 4).is_empty());
    }

    #[test]
    fn errors_surface_per_source() {
        let mut g = ring(3);
        let dead = g.try_node("h1").unwrap();
        g.delete_node(dead);
        let sources: Vec<NodeId> = g.node_ids().collect();
        let trees = map_many(&g, &sources, &MapOptions::default(), 2);
        assert!(trees[0].is_ok());
        assert_eq!(trees[1].as_ref().unwrap_err(), &MapError::DeletedSource);
    }
}
