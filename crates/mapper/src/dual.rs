//! The "second-best path" experiment from the PROBLEMS section.
//!
//! "The problem lies with our shortest path computation: we compute a
//! shortest path tree, but the routes we want to generate cannot be
//! represented in a tree. We are currently experimenting with a modified
//! algorithm that maintains the 'second-best' path when the shortest
//! path to a host goes by way of a domain."
//!
//! We realize the experiment as a dual mapping: the *primary* tree is
//! the ordinary run; the *clean* tree re-runs the mapping on the
//! subgraph with every domain node removed, so its label for a host is
//! the best domain-free path. When the primary route to a host goes by
//! way of a domain (its label is tainted), the clean label is exactly
//! the second-best path the paper wants to keep.

use crate::dijkstra::{map_frozen, map_frozen_readonly, MapError, MapOptions};
use crate::tree::{Label, ShortestPathTree};
use pathalias_graph::{FrozenGraph, Graph, NodeId};
use std::sync::Arc;

/// The result of a dual (primary + domain-free) mapping.
#[derive(Debug, Clone)]
pub struct DualTree {
    /// The ordinary shortest-path tree.
    pub primary: ShortestPathTree,
    /// The best domain-free tree.
    pub clean: ShortestPathTree,
}

impl DualTree {
    /// Whether the primary route to `node` goes by way of a domain.
    pub fn via_domain(&self, node: NodeId) -> bool {
        self.primary.label(node).is_some_and(|l| l.tainted)
    }

    /// The second-best (domain-free) label for `node`, when the primary
    /// route goes by way of a domain and an alternative exists.
    pub fn second_best(&self, node: NodeId) -> Option<&Label> {
        if self.via_domain(node) {
            self.clean.label(node)
        } else {
            None
        }
    }

    /// The label a mailer should prefer: the domain-free alternative if
    /// the primary is domain-routed and an alternative exists, else the
    /// primary.
    pub fn preferred(&self, node: NodeId) -> Option<&Label> {
        self.second_best(node).or_else(|| self.primary.label(node))
    }
}

/// Runs the dual mapping on a frozen graph: a normal [`map_frozen`]
/// (with back links) plus a domain-free [`map_frozen_readonly`] over
/// the primary run's final snapshot (so the clean pass may use the
/// invented back links, as the original did).
pub fn map_dual_frozen(
    f: &Arc<FrozenGraph>,
    source: NodeId,
    opts: &MapOptions,
) -> Result<DualTree, MapError> {
    let clean_opts = MapOptions {
        exclude_domains: true,
        no_backlinks: true,
        trace: Vec::new(),
        ..opts.clone()
    };
    // Fail on an excluded source before doing the primary work, as the
    // original did.
    if f.is_mappable(source) && f.is_domain(source) {
        return Err(MapError::ExcludedSource);
    }
    let primary = map_frozen(f, source, opts)?;
    let clean = map_frozen_readonly(primary.frozen(), source, &clean_opts)?;
    Ok(DualTree { primary, clean })
}

/// Freezes `g` and runs the dual mapping (see [`map_dual_frozen`]).
pub fn map_dual(g: &Graph, source: NodeId, opts: &MapOptions) -> Result<DualTree, MapError> {
    map_dual_frozen(&Arc::new(g.freeze()), source, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_parser::parse;

    /// The motown graph from the paper's PROBLEMS figure, with the
    /// relay penalty disabled so the domain route wins the primary tree
    /// (as in the pre-heuristic pathalias the section discusses).
    const MOTOWN: &str = "\
princeton caip(200), topaz(300)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
topaz motown(200)
";

    #[test]
    fn second_best_keeps_domain_free_route() {
        let g = parse(MOTOWN).unwrap();
        let princeton = g.try_node("princeton").unwrap();
        let motown = g.try_node("motown").unwrap();
        let topaz = g.try_node("topaz").unwrap();

        let mut opts = MapOptions::default();
        opts.model.relay_penalty = 0; // Pre-heuristic behaviour.
        let dual = map_dual(&g, princeton, &opts).unwrap();

        // Primary: via the domain at 425.
        assert_eq!(dual.primary.cost(motown), Some(425));
        assert!(dual.via_domain(motown));
        // Second best: via topaz at 500, domain-free.
        let second = dual.second_best(motown).expect("alternative exists");
        assert_eq!(second.cost, 500);
        assert_eq!(second.pred.unwrap().0, topaz);
        assert!(!second.tainted);
        // The mailer should prefer the clean route.
        assert_eq!(dual.preferred(motown).unwrap().cost, 500);
    }

    #[test]
    fn hosts_not_via_domain_have_no_second_best() {
        let g = parse(MOTOWN).unwrap();
        let princeton = g.try_node("princeton").unwrap();
        let topaz = g.try_node("topaz").unwrap();
        let dual = map_dual(&g, princeton, &MapOptions::default()).unwrap();
        assert!(!dual.via_domain(topaz));
        assert!(dual.second_best(topaz).is_none());
        assert_eq!(dual.preferred(topaz).unwrap().cost, 300);
    }

    #[test]
    fn unreachable_without_domains_yields_none() {
        // motown reachable *only* via the domain.
        let text = "\
princeton caip(200)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
";
        let g = parse(text).unwrap();
        let princeton = g.try_node("princeton").unwrap();
        let motown = g.try_node("motown").unwrap();
        let mut opts = MapOptions::default();
        opts.model.relay_penalty = 0;
        opts.no_backlinks = true;
        let dual = map_dual(&g, princeton, &opts).unwrap();
        assert!(dual.via_domain(motown));
        assert!(dual.second_best(motown).is_none(), "no clean alternative");
        // preferred() falls back to the primary.
        assert_eq!(dual.preferred(motown).unwrap().cost, 425);
    }

    #[test]
    fn domain_source_is_rejected_for_clean_run() {
        let g = parse(".edu = {caip}(0)\n").unwrap();
        let edu = g.try_node(".edu").unwrap();
        assert_eq!(
            map_dual(&g, edu, &MapOptions::default()).unwrap_err(),
            MapError::ExcludedSource
        );
    }
}
