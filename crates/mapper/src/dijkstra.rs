//! The mapping algorithms: heap Dijkstra, the quadratic baseline, and
//! the back-link pass.

use crate::cost_model::CostModel;
use crate::heap::IndexedHeap;
use crate::tree::{Label, MapStats, ShortestPathTree, TraceDecision, TraceEvent};
use pathalias_graph::{Cost, Dir, Graph, Link, LinkFlags, LinkId, NodeId};
use std::collections::HashSet;
use std::fmt;

/// Options for a mapping run.
#[derive(Debug, Clone, Default)]
pub struct MapOptions {
    /// Penalty configuration.
    pub model: CostModel,
    /// Trace relaxations whose head or tail is one of these nodes
    /// (pathalias `-t`).
    pub trace: Vec<NodeId>,
    /// Skip domain nodes entirely (used by the second-best pass).
    pub exclude_domains: bool,
    /// Disable the back-link pass in [`map`].
    pub no_backlinks: bool,
}

/// Errors from mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The source node has been `delete`d.
    DeletedSource,
    /// The source is a domain but domains are excluded from this run.
    ExcludedSource,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::DeletedSource => write!(f, "mapping source has been deleted"),
            MapError::ExcludedSource => {
                write!(f, "mapping source is a domain but domains are excluded")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// The heap key: (cost, visible hops, node id) — totally ordered, so
/// extraction order and therefore output are deterministic.
type Key = (Cost, u32, u32);

fn key_of(node: NodeId, l: &Label) -> Key {
    (l.cost, l.hops, node.raw())
}

/// Shared relaxation state for both algorithm variants.
struct Run<'g> {
    g: &'g Graph,
    model: CostModel,
    exclude_domains: bool,
    source: NodeId,
    labels: Vec<Option<Label>>,
    mapped: Vec<bool>,
    stats: MapStats,
    trace_set: HashSet<NodeId>,
    trace: Vec<TraceEvent>,
}

/// Outcome of relaxing one edge.
enum Relaxed {
    /// New label with a strictly smaller key: heap must push or
    /// decrease.
    Improved(Key),
    /// Label rewritten on an exact tie (no key change) or not improved.
    NoKeyChange,
    /// Edge skipped entirely.
    Skipped,
}

impl<'g> Run<'g> {
    fn new(g: &'g Graph, source: NodeId, opts: &MapOptions) -> Result<Self, MapError> {
        let src = g.node_ref(source);
        if !src.is_mappable() {
            return Err(MapError::DeletedSource);
        }
        if opts.exclude_domains && src.is_domain() {
            return Err(MapError::ExcludedSource);
        }
        let n = g.node_count();
        let mut labels = vec![None; n];
        labels[source.index()] = Some(Label {
            cost: 0,
            hops: 0,
            pred: None,
            has_left: false,
            has_right: false,
            tainted: src.is_domain(),
            via_backlink: false,
            ambiguous: false,
        });
        Ok(Run {
            g,
            model: opts.model,
            exclude_domains: opts.exclude_domains,
            source,
            labels,
            mapped: vec![false; n],
            stats: MapStats::default(),
            trace_set: opts.trace.iter().copied().collect(),
            trace: Vec::new(),
        })
    }

    /// Whether entering gated node `v` over `link` from `u` counts as
    /// going through a gateway. See DESIGN.md §4 for the rule table.
    fn gateway_exempt(&self, u: NodeId, link: &Link, v: NodeId) -> bool {
        let u_node = self.g.node_ref(u);
        let _ = v;
        link.flags.contains(LinkFlags::GATEWAY)
            || link.flags.contains(LinkFlags::ALIAS)
            // Parent network/domain exiting into a gated member: the
            // parent is the member's gateway.
            || link.flags.contains(LinkFlags::NET_OUT)
            // A (non-domain) host member entering its own domain.
            || (link.flags.contains(LinkFlags::NET_IN)
                && self.g.node_ref(link.to).is_domain()
                && !u_node.is_domain())
            // An explicitly written link into a gated net declares its
            // writer a gateway (how `seismo .edu(DEDICATED)` works).
            || (link.flags.is_explicit() && !u_node.is_domain())
    }

    /// The routing operator of the *visible hop* this edge appends, if
    /// any. Alias and network-entry edges append nothing; network-exit
    /// edges use "the ones encountered when entering the network".
    fn visible_op(&self, u_label: &Label, link: &Link) -> Option<pathalias_graph::RouteOp> {
        if link.flags.intersects(LinkFlags::ALIAS | LinkFlags::NET_IN) {
            return None;
        }
        if link.flags.contains(LinkFlags::NET_OUT) {
            let entering = u_label
                .pred
                .map(|(_, plid)| self.g.link_ref(plid).op)
                .unwrap_or(link.op);
            return Some(entering);
        }
        Some(link.op)
    }

    /// Relaxes `link` out of `u` (whose final label is `u_label`).
    fn relax(&mut self, u: NodeId, u_label: Label, lid: LinkId, link: &Link) -> Relaxed {
        self.stats.relaxations += 1;
        let v = link.to;
        let v_node = self.g.node_ref(v);
        if link.flags.contains(LinkFlags::DELETED)
            || !v_node.is_mappable()
            || (self.exclude_domains && v_node.is_domain())
            || self.mapped[v.index()]
        {
            return Relaxed::Skipped;
        }

        // Base weight, with the tail's `adjust` bias when transiting.
        let mut base = link.cost;
        let u_node = self.g.node_ref(u);
        if u != self.source && u_node.adjust != 0 {
            let biased = (base as i128) + (u_node.adjust as i128);
            base = biased.clamp(0, Cost::MAX as i128) as Cost;
        }

        // Heuristic penalties.
        let mut gate = 0;
        let mut relay = 0;
        let mut mixed = 0;
        let mut extra = 0;
        if link.flags.contains(LinkFlags::DEAD) {
            extra += self.model.dead_link_penalty;
        }
        if u != self.source && u_node.flags.contains(pathalias_graph::NodeFlags::DEAD) {
            extra += self.model.dead_penalty;
        }
        if v_node.is_gated() && !self.gateway_exempt(u, link, v) {
            gate = self.model.gate_penalty;
            self.stats.gate_penalties += 1;
        }
        if u_label.tainted && !link.flags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
            relay = self.model.relay_penalty;
            self.stats.relay_penalties += 1;
        }

        let vis = self.visible_op(&u_label, link);
        let mut has_left = u_label.has_left;
        let mut has_right = u_label.has_right;
        let mut hop_ambiguous = false;
        if let Some(op) = vis {
            match op.dir {
                Dir::Left => {
                    // `!` applied after `@` builds an address UUCP
                    // mailers misparse: always penalized, and recorded
                    // even when the penalty is configured to zero.
                    if u_label.has_right {
                        mixed = self.model.mixed_penalty;
                        hop_ambiguous = true;
                        self.stats.ambiguous_hops += 1;
                    }
                    has_left = true;
                }
                Dir::Right => {
                    // The classic `bang!path!%s@host` form is tolerated
                    // unless strict mode penalizes all mixing.
                    if self.model.strict_mixed && u_label.has_left {
                        mixed = self.model.mixed_penalty;
                    }
                    has_right = true;
                }
            }
            if mixed > 0 {
                self.stats.mixed_penalties += 1;
            }
        }

        let cost = u_label
            .cost
            .saturating_add(base)
            .saturating_add(gate)
            .saturating_add(relay)
            .saturating_add(mixed)
            .saturating_add(extra);
        let hops = u_label.hops + u32::from(vis.is_some());
        let cand = Label {
            cost,
            hops,
            pred: Some((u, lid)),
            has_left,
            has_right,
            tainted: u_label.tainted || v_node.is_domain(),
            via_backlink: u_label.via_backlink || link.flags.contains(LinkFlags::BACK),
            ambiguous: u_label.ambiguous || hop_ambiguous,
        };

        let slot = &mut self.labels[v.index()];
        let (outcome, decision) = match slot {
            None => {
                *slot = Some(cand);
                (Relaxed::Improved(key_of(v, &cand)), TraceDecision::Accepted)
            }
            Some(old) => {
                if (cand.cost, cand.hops) < (old.cost, old.hops) {
                    *old = cand;
                    (Relaxed::Improved(key_of(v, &cand)), TraceDecision::Accepted)
                } else if (cand.cost, cand.hops) == (old.cost, old.hops) {
                    // Deterministic tie break independent of visit
                    // order: smaller (pred id, link id) wins.
                    let old_pred = old.pred.map(|(p, l)| (p.raw(), l.raw()));
                    let new_pred = cand.pred.map(|(p, l)| (p.raw(), l.raw()));
                    if new_pred < old_pred {
                        *old = cand;
                        (Relaxed::NoKeyChange, TraceDecision::Accepted)
                    } else {
                        (Relaxed::NoKeyChange, TraceDecision::TieKept)
                    }
                } else {
                    (Relaxed::NoKeyChange, TraceDecision::Worse)
                }
            }
        };
        if self.trace_set.contains(&v) || self.trace_set.contains(&u) {
            self.trace.push(TraceEvent {
                from: u,
                to: v,
                link: lid,
                base,
                gate,
                relay,
                mixed,
                candidate: cost,
                decision,
            });
        }
        outcome
    }

    fn finish(self) -> ShortestPathTree {
        ShortestPathTree {
            source: self.source,
            labels: self.labels,
            stats: self.stats,
            trace: self.trace,
        }
    }
}

/// Maps the graph from `source` with the priority-queue variant of
/// Dijkstra's algorithm (O(e log v) on the sparse maps pathalias sees),
/// without mutating the graph (no back links).
pub fn map_readonly(
    g: &Graph,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    let mut run = Run::new(g, source, opts)?;
    let mut heap: IndexedHeap<Key> = IndexedHeap::new(g.node_count());
    heap.push(
        source.raw(),
        key_of(source, run.labels[source.index()].as_ref().expect("source")),
    );
    run.stats.pushes += 1;

    while let Some((u_raw, _)) = heap.pop() {
        run.stats.pops += 1;
        let u = NodeId::from_raw(u_raw);
        run.mapped[u.index()] = true;
        run.stats.mapped += 1;
        let u_label = run.labels[u.index()].expect("queued node has a label");
        for (lid, _) in run.g.links_from(u) {
            // Re-borrow the link each iteration to keep the borrow
            // checker happy about `run` mutations.
            let link = *run.g.link_ref(lid);
            if let Relaxed::Improved(key) = run.relax(u, u_label, lid, &link) {
                let v_raw = link.to.raw();
                if heap.contains(v_raw) {
                    heap.decrease(v_raw, key);
                    run.stats.decreases += 1;
                } else {
                    heap.push(v_raw, key);
                    run.stats.pushes += 1;
                }
            }
        }
    }
    Ok(run.finish())
}

/// Maps with the standard O(v²) array-scan Dijkstra the paper compares
/// against. Produces labels identical to [`map_readonly`].
pub fn map_quadratic_readonly(
    g: &Graph,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    let mut run = Run::new(g, source, opts)?;
    loop {
        // Select the unmapped labelled node with the smallest key by
        // scanning the whole array — the v² part.
        let mut best: Option<(Key, NodeId)> = None;
        for i in 0..run.labels.len() {
            run.stats.scan_steps += 1;
            if run.mapped[i] {
                continue;
            }
            if let Some(l) = &run.labels[i] {
                let id = NodeId::from_raw(i as u32);
                let k = key_of(id, l);
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, id));
                }
            }
        }
        let Some((_, u)) = best else { break };
        run.mapped[u.index()] = true;
        run.stats.mapped += 1;
        let u_label = run.labels[u.index()].expect("selected node has a label");
        for (lid, _) in run.g.links_from(u) {
            let link = *run.g.link_ref(lid);
            let _ = run.relax(u, u_label, lid, &link);
        }
    }
    Ok(run.finish())
}

/// Maps from `source`, then runs the back-link pass to fixpoint: "we
/// examine the connections out of each unreachable host, invent links
/// from its neighbors back to the host, and continue with Dijkstra's
/// algorithm." Invented links are added to the graph with
/// [`LinkFlags::BACK`] and the back-link penalty.
pub fn map(g: &mut Graph, source: NodeId, opts: &MapOptions) -> Result<ShortestPathTree, MapError> {
    let mut rounds = 0u32;
    let mut invented_total = 0u64;
    loop {
        let mut tree = map_readonly(g, source, opts)?;
        tree.stats.backlink_rounds = rounds;
        tree.stats.invented_links = invented_total;
        if opts.no_backlinks {
            return Ok(tree);
        }
        // Invent reverse links for unreachable hosts that declare a
        // connection out to a mapped host.
        let mut inventions: Vec<(NodeId, NodeId, Cost, pathalias_graph::RouteOp)> = Vec::new();
        for u in tree.unreachable(g) {
            if opts.exclude_domains && g.node_ref(u).is_domain() {
                continue;
            }
            for (_, l) in g.links_from(u) {
                if l.flags.contains(LinkFlags::DELETED) || l.flags.contains(LinkFlags::BACK) {
                    continue;
                }
                if tree.is_mapped(l.to) {
                    let cost = l.cost.saturating_add(opts.model.backlink_penalty);
                    inventions.push((l.to, u, cost, l.op));
                }
            }
        }
        if inventions.is_empty() {
            return Ok(tree);
        }
        for (from, to, cost, op) in inventions {
            // Only invent a given reverse link once across rounds.
            let exists = g
                .links_from(from)
                .any(|(_, l)| l.to == to && l.flags.contains(LinkFlags::BACK));
            if !exists {
                g.add_raw_link(from, to, cost, op, LinkFlags::BACK);
                invented_total += 1;
            }
        }
        rounds += 1;
        assert!(
            (rounds as usize) <= g.node_count() + 1,
            "back-link pass failed to converge"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::{NodeFlags, INF};
    use pathalias_parser::parse;

    fn ids(g: &Graph, names: &[&str]) -> Vec<NodeId> {
        names.iter().map(|n| g.try_node(n).unwrap()).collect()
    }

    #[test]
    fn straight_line_costs() {
        let mut g = parse("a b(10)\nb c(20)\nc d(5)\n").unwrap();
        let v = ids(&g, &["a", "b", "c", "d"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[0]), Some(0));
        assert_eq!(t.cost(v[1]), Some(10));
        assert_eq!(t.cost(v[2]), Some(30));
        assert_eq!(t.cost(v[3]), Some(35));
        assert_eq!(t.path_to(v[3]).unwrap(), v);
    }

    #[test]
    fn picks_cheaper_indirect_route() {
        // The paper's observation: unc->phs direct (2000) loses to
        // unc->duke->phs (500+300).
        let mut g = parse("unc duke(500), phs(2000)\nduke phs(300)\n").unwrap();
        let v = ids(&g, &["unc", "duke", "phs"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(800));
        assert_eq!(t.path_to(v[2]).unwrap(), v);
    }

    #[test]
    fn quadratic_matches_heap_exactly() {
        let text = "\
a b(10), c(200), @d(40)
b c(20), e(100)
c d(5)
d e(1)
e a(1)
N = {b, d, f}(30)
g h(10)
";
        let g = parse(text).unwrap();
        let a = g.try_node("a").unwrap();
        let opts = MapOptions::default();
        let t1 = map_readonly(&g, a, &opts).unwrap();
        let t2 = map_quadratic_readonly(&g, a, &opts).unwrap();
        for id in g.node_ids() {
            assert_eq!(t1.label(id), t2.label(id), "node {}", g.name(id));
        }
        assert!(t1.stats.pushes > 0);
        assert_eq!(t2.stats.pushes, 0);
        assert!(t2.stats.scan_steps > 0);
    }

    #[test]
    fn network_membership_costs() {
        // Pay to enter, exit for free.
        let mut g = parse("a NET(50)\nNET = {x, y}(75)\n").unwrap();
        let v = ids(&g, &["a", "NET", "x", "y"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(50));
        assert_eq!(t.cost(v[2]), Some(50), "exit is free");
        assert_eq!(t.cost(v[3]), Some(50));
    }

    #[test]
    fn alias_edges_are_free_and_invisible() {
        let mut g = parse("a princeton(100)\nprinceton = fun\nfun z(10)\n").unwrap();
        let v = ids(&g, &["a", "princeton", "fun", "z"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(100), "alias costs nothing");
        assert_eq!(
            t.label(v[2]).unwrap().hops,
            t.label(v[1]).unwrap().hops,
            "alias adds no visible hop"
        );
        assert_eq!(t.cost(v[3]), Some(110), "links from the alias work");
    }

    #[test]
    fn dead_host_never_relays() {
        let mut g = parse("a b(10)\nb c(10)\na c(1000)\ndead {b}\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(10), "dead host is reachable");
        assert_eq!(t.cost(v[2]), Some(1000), "but never relays");
    }

    #[test]
    fn dead_link_is_last_resort() {
        let mut g = parse("a b(10)\ndead {a!b}\na c(50)\nc b(50)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(100), "detour beats dead link");
    }

    #[test]
    fn deleted_nodes_and_links_ignored() {
        let mut g = parse("a b(10)\nb c(10)\ndelete {b}\na c(500)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), None);
        assert_eq!(t.cost(v[2]), Some(500));
    }

    #[test]
    fn adjust_bias_applies_in_transit_only() {
        let mut g = parse("a b(10)\nb c(10)\nadjust {b(100)}\na c(50)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(10), "bias not charged to reach b");
        assert_eq!(t.cost(v[2]), Some(50), "transit through b costs 120");
    }

    #[test]
    fn negative_adjust_clamps_at_zero() {
        let mut g = parse("a b(10)\nb c(5)\nadjust {b(-100)}\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(10), "edge cost clamps at zero");
    }

    #[test]
    fn gated_network_penalty_and_gateway() {
        let text = "\
GNET = {x, y}(10)
gated {GNET}
a x(10), g(10)
g GNET(20)
gateway {GNET!g}
";
        let mut g = parse(text).unwrap();
        let v = ids(&g, &["a", "x", "g", "GNET", "y"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        // Entering via member x is penalized; via gateway g is not.
        assert_eq!(t.cost(v[3]), Some(30), "a->g->GNET");
        assert_eq!(t.cost(v[4]), Some(30), "y via the gateway");
        assert!(t.stats.gate_penalties > 0);
    }

    #[test]
    fn explicit_link_into_gated_net_is_gateway() {
        // No `gateway` command: the explicit link itself qualifies.
        let text = "GNET = {x}(10)\ngated {GNET}\na s(10)\ns GNET(5)\n";
        let mut g = parse(text).unwrap();
        let v = ids(&g, &["a", "s", "GNET", "x"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(15));
        assert_eq!(t.cost(v[3]), Some(15));
    }

    #[test]
    fn domain_up_edge_essentially_infinite() {
        // .edu has member .rutgers; going up .rutgers -> .edu must cost
        // about INF (the membership entry edge is not exempt for a
        // domain member).
        let text = ".edu = {.rutgers}(0)\n.rutgers = {caip}(0)\nstart caip(10)\n";
        let mut g = parse(text).unwrap();
        let v = ids(&g, &["start", "caip", ".rutgers", ".edu"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        // caip is a member of .rutgers: entering is exempt; but its
        // path then went through a domain, so further links from .edu
        // are relay-penalized; the up edge gets the gate penalty too.
        let up = t.cost(v[3]).unwrap();
        assert!(
            up >= INF,
            "up-tree cost {up} should be essentially infinite"
        );
        assert!(t.cost(v[2]).unwrap() < INF);
    }

    #[test]
    fn relay_restriction_after_domain() {
        // Once through a domain, further links are penalized.
        let text = "a caip(10)\ncaip .rutgers.edu(20)\n.rutgers.edu = {blue}(0)\nblue far(10)\n";
        let mut g = parse(text).unwrap();
        let v = ids(&g, &["a", "blue", "far"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(30), "blue via the domain is fine");
        assert!(
            t.cost(v[2]).unwrap() >= INF,
            "onward relaying from a domain-reached host is penalized"
        );
        assert!(t.label(v[1]).unwrap().tainted);
    }

    #[test]
    fn mixed_syntax_bang_after_at_penalized() {
        // a -@-> b -!-> c: the ! hop lands after an @ hop.
        let mut g = parse("a @b(10)\nb c(10)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        let m = MapOptions::default().model;
        assert_eq!(t.cost(v[2]), Some(20 + m.mixed_penalty));
        assert_eq!(t.stats.mixed_penalties, 1);
    }

    #[test]
    fn classic_at_after_bang_free() {
        // The paper's own example form: pure ! prefix then a final @.
        let mut g = parse("a b(10)\nb @c(10)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(20), "no penalty by default");

        let strict = MapOptions {
            model: CostModel {
                strict_mixed: true,
                ..CostModel::default()
            },
            ..MapOptions::default()
        };
        let t = map(&mut g, v[0], &strict).unwrap();
        assert_eq!(
            t.cost(v[2]),
            Some(20 + strict.model.mixed_penalty),
            "strict mode penalizes any mixing"
        );
    }

    #[test]
    fn backlinks_reach_leaf_hosts() {
        // leaf declares a link out but nobody links back to it.
        let mut g = parse("a b(10)\nleaf b(25)\n").unwrap();
        let v = ids(&g, &["a", "b", "leaf"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        let m = MapOptions::default().model;
        assert_eq!(
            t.cost(v[2]),
            Some(10 + 25 + m.backlink_penalty),
            "b gets an invented link back to leaf"
        );
        assert!(t.label(v[2]).unwrap().via_backlink);
        assert_eq!(t.stats.invented_links, 1);
        assert_eq!(t.stats.backlink_rounds, 1);
    }

    #[test]
    fn backlinks_iterate_to_fixpoint() {
        // A whole chain pointing the wrong way: leaf2 -> leaf1 -> b.
        let mut g = parse("a b(10)\nleaf1 b(20)\nleaf2 leaf1(30)\n").unwrap();
        let v = ids(&g, &["a", "leaf1", "leaf2"]);
        let t = map(&mut g, v[0], &MapOptions::default()).unwrap();
        assert!(t.is_mapped(v[1]));
        assert!(t.is_mapped(v[2]), "second round reaches leaf2");
        assert_eq!(t.stats.backlink_rounds, 2);
    }

    #[test]
    fn no_backlinks_option() {
        let mut g = parse("a b(10)\nleaf b(25)\n").unwrap();
        let v = ids(&g, &["a", "leaf"]);
        let opts = MapOptions {
            no_backlinks: true,
            ..MapOptions::default()
        };
        let t = map(&mut g, v[0], &opts).unwrap();
        assert!(!t.is_mapped(v[1]));
        assert_eq!(t.unreachable(&g), vec![v[1]]);
    }

    #[test]
    fn deleted_source_errors() {
        let mut g = parse("a b(10)\ndelete {a}\n").unwrap();
        let a = g.try_node("a").unwrap();
        assert_eq!(
            map(&mut g, a, &MapOptions::default()).unwrap_err(),
            MapError::DeletedSource
        );
    }

    #[test]
    fn trace_records_decisions() {
        let mut g = parse("a b(10), c(5)\nc b(1)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let opts = MapOptions {
            trace: vec![v[1]],
            ..MapOptions::default()
        };
        let t = map(&mut g, v[0], &opts).unwrap();
        assert!(t.trace.len() >= 2, "both relaxations into b traced");
        assert!(t
            .trace
            .iter()
            .any(|e| e.decision == TraceDecision::Accepted));
        assert_eq!(t.cost(v[1]), Some(6));
    }

    #[test]
    fn determinism_across_variants_and_runs() {
        let text = "\
hub a(10), b(10), c(10)
a x(10)
b x(10)
c x(10)
x y(1)
";
        let g = parse(text).unwrap();
        let hub = g.try_node("hub").unwrap();
        let opts = MapOptions::default();
        let t1 = map_readonly(&g, hub, &opts).unwrap();
        let t2 = map_readonly(&g, hub, &opts).unwrap();
        let t3 = map_quadratic_readonly(&g, hub, &opts).unwrap();
        let x = g.try_node("x").unwrap();
        // Three equal-cost preds for x: the smallest node id (a) wins
        // in every variant.
        let a = g.try_node("a").unwrap();
        assert_eq!(t1.label(x).unwrap().pred.unwrap().0, a);
        assert_eq!(t1.label(x), t2.label(x));
        assert_eq!(t1.label(x), t3.label(x));
    }

    #[test]
    fn private_hosts_map_normally() {
        let mut g = Graph::new();
        g.begin_file("f");
        let a = g.node("a");
        let p = g.declare_private("bilbo");
        g.declare_link(a, p, 10, pathalias_graph::RouteOp::UUCP);
        let t = map(&mut g, a, &MapOptions::default()).unwrap();
        assert_eq!(t.cost(p), Some(10));
        assert!(g.node_ref(p).flags.contains(NodeFlags::PRIVATE));
    }
}
