//! The mapping algorithms: heap Dijkstra over the frozen CSR graph,
//! the quadratic baseline, and the back-link pass.
//!
//! The engine traverses a [`FrozenGraph`]: contiguous edge slices per
//! node instead of the build-time linked lists, dense visit arrays
//! indexed by node id, and `adjust` biases already folded into the
//! stored costs. Callers that hold only a mutable [`Graph`] can use the
//! freezing wrappers ([`map`], [`map_readonly`]); anything that maps
//! more than once — the staged pipeline, the multi-source fan-out, the
//! server — freezes once and calls the `*_frozen` entry points.

use crate::cost_model::CostModel;
use crate::tree::{Label, MapStats, ShortestPathTree, TraceDecision, TraceEvent};
use pathalias_graph::{
    Cost, Dir, EdgeId, FrozenEdge, FrozenGraph, Graph, LinkFlags, NodeFlags, NodeId,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Options for a mapping run.
#[derive(Debug, Clone, Default)]
pub struct MapOptions {
    /// Penalty configuration.
    pub model: CostModel,
    /// Trace relaxations whose head or tail is one of these nodes
    /// (pathalias `-t`).
    pub trace: Vec<NodeId>,
    /// Skip domain nodes entirely (used by the second-best pass).
    pub exclude_domains: bool,
    /// Disable the back-link pass in [`map`].
    pub no_backlinks: bool,
}

/// Errors from mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The source node has been `delete`d.
    DeletedSource,
    /// The source is a domain but domains are excluded from this run.
    ExcludedSource,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::DeletedSource => write!(f, "mapping source has been deleted"),
            MapError::ExcludedSource => {
                write!(f, "mapping source is a domain but domains are excluded")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// The heap key, packed into one `u128`: cost in the high 64 bits,
/// then visible hops, then the node id — totally ordered, so
/// extraction order and therefore output are deterministic, and small
/// enough that a heap slot is one 16-byte move.
type Key = u128;

#[inline]
fn pack_key(cost: Cost, hops: u32, node: u32) -> Key {
    ((cost as u128) << 64) | ((hops as u128) << 32) | node as u128
}

/// Per-node path-state bits, packed so the hot loop's visit state is
/// one byte per node (the full [`Label`] is materialized once, at the
/// end of the run).
const LABELLED: u8 = 1 << 0;
const HAS_LEFT: u8 = 1 << 1;
const HAS_RIGHT: u8 = 1 << 2;
const TAINTED: u8 = 1 << 3;
const VIA_BACK: u8 = 1 << 4;
const AMBIGUOUS: u8 = 1 << 5;
const MAPPED: u8 = 1 << 6;

/// The source's predecessor sentinel (only the source has no pred).
const NO_PRED: (u32, u32) = (u32::MAX, u32::MAX);

/// Everything the relaxation needs about the tail node, loaded once
/// per heap extraction instead of once per edge.
struct Tail {
    u: NodeId,
    cost: Cost,
    hops: u32,
    state: u8,
    /// The edge that reached `u` (for the network-exit operator rule).
    pred_edge: Option<EdgeId>,
    is_domain: bool,
    /// Edges out of the source use raw costs when the source carries
    /// an `adjust` bias (the bias was folded in at freeze time).
    use_raw: bool,
    /// Dead-host penalty owed by every edge out of `u`.
    dead_extra: Cost,
}

/// Shared relaxation state for both algorithm variants: labels kept as
/// dense parallel arrays (struct-of-arrays), so the common "candidate
/// is worse" outcome touches two words, not a whole label.
struct Run<'g> {
    f: &'g FrozenGraph,
    model: CostModel,
    exclude_domains: bool,
    source: NodeId,
    /// Each labelled node's packed heap key (cost, hops, own id):
    /// comparing two candidates for the same node is one `u128`
    /// compare, and the key pushed on improvement is the stored value.
    key: Vec<Key>,
    pred: Vec<(u32, u32)>,
    state: Vec<u8>,
    stats: MapStats,
    /// Only consulted when tracing was requested; the empty-set case
    /// skips the per-relaxation lookups entirely.
    tracing: bool,
    trace_set: HashSet<NodeId>,
    trace: Vec<TraceEvent>,
}

/// Outcome of relaxing one edge.
enum Relaxed {
    /// New label with a strictly smaller key: heap must push or
    /// decrease.
    Improved(Key),
    /// Label rewritten on an exact tie (no key change) or not improved.
    NoKeyChange,
    /// Edge skipped entirely.
    Skipped,
}

impl<'g> Run<'g> {
    fn new(f: &'g FrozenGraph, source: NodeId, opts: &MapOptions) -> Result<Self, MapError> {
        if !f.is_mappable(source) {
            return Err(MapError::DeletedSource);
        }
        if opts.exclude_domains && f.is_domain(source) {
            return Err(MapError::ExcludedSource);
        }
        let n = f.node_count();
        let mut run = Run {
            f,
            model: opts.model,
            exclude_domains: opts.exclude_domains,
            source,
            key: (0..n as u32).map(|i| pack_key(0, 0, i)).collect(),
            pred: vec![NO_PRED; n],
            state: vec![0; n],
            stats: MapStats::default(),
            tracing: !opts.trace.is_empty(),
            trace_set: opts.trace.iter().copied().collect(),
            trace: Vec::new(),
        };
        run.state[source.index()] = LABELLED | if f.is_domain(source) { TAINTED } else { 0 };
        Ok(run)
    }

    /// Loads the tail-side relaxation context for `u` (which must be
    /// labelled).
    fn tail(&self, u: NodeId) -> Tail {
        let i = u.index();
        let pred = self.pred[i];
        let is_source = u == self.source;
        let uflags = self.f.flags(u);
        Tail {
            u,
            cost: (self.key[i] >> 64) as Cost,
            hops: (self.key[i] >> 32) as u32,
            state: self.state[i],
            pred_edge: (pred != NO_PRED).then(|| EdgeId::from_raw(pred.1)),
            is_domain: uflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && self.f.adjust(u) != 0,
            dead_extra: if !is_source && uflags.contains(NodeFlags::DEAD) {
                self.model.dead_penalty
            } else {
                0
            },
        }
    }

    /// Whether entering gated node `v` over the edge counts as going
    /// through a gateway. See DESIGN.md §4 for the rule table.
    #[inline]
    fn gateway_exempt(&self, tail: &Tail, eflags: LinkFlags, v_is_domain: bool) -> bool {
        eflags.contains(LinkFlags::GATEWAY)
            || eflags.contains(LinkFlags::ALIAS)
            // Parent network/domain exiting into a gated member: the
            // parent is the member's gateway.
            || eflags.contains(LinkFlags::NET_OUT)
            // A (non-domain) host member entering its own domain.
            || (eflags.contains(LinkFlags::NET_IN) && v_is_domain && !tail.is_domain)
            // An explicitly written link into a gated net declares its
            // writer a gateway (how `seismo .edu(DEDICATED)` works).
            || (eflags.is_explicit() && !tail.is_domain)
    }

    /// The operator side of the *visible hop* this edge appends, if
    /// any. Alias and network-entry edges append nothing; network-exit
    /// edges use "the ones encountered when entering the network". The
    /// relaxation never needs the operator character, only its side.
    #[inline]
    fn visible_dir(&self, tail: &Tail, edge: FrozenEdge) -> Option<Dir> {
        let eflags = edge.flags();
        if eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_IN) {
            return None;
        }
        if eflags.contains(LinkFlags::NET_OUT) {
            let entering = tail
                .pred_edge
                .map(|pe| self.f.edge(pe).dir())
                .unwrap_or_else(|| edge.dir());
            return Some(entering);
        }
        Some(edge.dir())
    }

    /// Relaxes the frozen edge `e_raw` (= `edge`) out of `tail`. The
    /// caller accounts `stats.relaxations` once per adjacency run.
    #[inline]
    fn relax(&mut self, tail: &Tail, e_raw: u32, edge: FrozenEdge) -> Relaxed {
        let v = edge.to();
        let vi = v.index();
        let vstate = self.state[vi];
        if vstate & MAPPED != 0 {
            return Relaxed::Skipped;
        }
        let vflags = self.f.flags(v);
        let v_is_domain = vflags.contains(NodeFlags::DOMAIN);
        if self.exclude_domains && v_is_domain {
            return Relaxed::Skipped;
        }
        let eflags = edge.flags();

        // Base weight: the tail's `adjust` bias was folded in at freeze
        // time; edges leaving the *source* must use the raw cost.
        let base = if tail.use_raw {
            self.f.edge_raw_cost(EdgeId::from_raw(e_raw))
        } else {
            edge.cost()
        };

        // Heuristic penalties.
        let mut gate = 0;
        let mut relay = 0;
        let mut mixed = 0;
        let mut extra = tail.dead_extra;
        if eflags.contains(LinkFlags::DEAD) {
            extra += self.model.dead_link_penalty;
        }
        if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
            && !self.gateway_exempt(tail, eflags, v_is_domain)
        {
            gate = self.model.gate_penalty;
            self.stats.gate_penalties += 1;
        }
        if tail.state & TAINTED != 0 && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
            relay = self.model.relay_penalty;
            self.stats.relay_penalties += 1;
        }

        let vis = self.visible_dir(tail, edge);
        let mut cand_state = (tail.state & !MAPPED) | LABELLED;
        if let Some(dir) = vis {
            match dir {
                Dir::Left => {
                    // `!` applied after `@` builds an address UUCP
                    // mailers misparse: always penalized, and recorded
                    // even when the penalty is configured to zero.
                    if tail.state & HAS_RIGHT != 0 {
                        mixed = self.model.mixed_penalty;
                        cand_state |= AMBIGUOUS;
                        self.stats.ambiguous_hops += 1;
                    }
                    cand_state |= HAS_LEFT;
                }
                Dir::Right => {
                    // The classic `bang!path!%s@host` form is tolerated
                    // unless strict mode penalizes all mixing.
                    if self.model.strict_mixed && tail.state & HAS_LEFT != 0 {
                        mixed = self.model.mixed_penalty;
                    }
                    cand_state |= HAS_RIGHT;
                }
            }
            if mixed > 0 {
                self.stats.mixed_penalties += 1;
            }
        }
        if v_is_domain {
            cand_state |= TAINTED;
        }
        if eflags.contains(LinkFlags::BACK) {
            cand_state |= VIA_BACK;
        }

        let cand_cost = tail
            .cost
            .saturating_add(base)
            .saturating_add(gate)
            .saturating_add(relay)
            .saturating_add(mixed)
            .saturating_add(extra);
        let cand_hops = tail.hops + u32::from(vis.is_some());
        let cand_key = pack_key(cand_cost, cand_hops, v.raw());
        let cand_pred = (tail.u.raw(), e_raw);

        let (outcome, decision) = if vstate & LABELLED == 0 {
            self.key[vi] = cand_key;
            self.pred[vi] = cand_pred;
            self.state[vi] = cand_state;
            (Relaxed::Improved(cand_key), TraceDecision::Accepted)
        } else {
            let old = self.key[vi];
            if cand_key < old {
                self.key[vi] = cand_key;
                self.pred[vi] = cand_pred;
                self.state[vi] = cand_state;
                (Relaxed::Improved(cand_key), TraceDecision::Accepted)
            } else if cand_key == old {
                // Deterministic tie break independent of visit order:
                // smaller (pred id, edge id) wins.
                if cand_pred < self.pred[vi] {
                    self.pred[vi] = cand_pred;
                    self.state[vi] = cand_state;
                    (Relaxed::NoKeyChange, TraceDecision::Accepted)
                } else {
                    (Relaxed::NoKeyChange, TraceDecision::TieKept)
                }
            } else {
                (Relaxed::NoKeyChange, TraceDecision::Worse)
            }
        };
        if self.tracing && (self.trace_set.contains(&v) || self.trace_set.contains(&tail.u)) {
            self.trace.push(TraceEvent {
                from: tail.u,
                to: v,
                link: EdgeId::from_raw(e_raw),
                base,
                gate,
                relay,
                mixed,
                candidate: cand_cost,
                decision,
            });
        }
        outcome
    }

    /// Materializes the packed run state into the public tree labels.
    fn finish(self, frozen: Arc<FrozenGraph>) -> ShortestPathTree {
        let labels = self
            .state
            .iter()
            .enumerate()
            .map(|(i, &st)| {
                if st & LABELLED == 0 {
                    return None;
                }
                let pred = self.pred[i];
                Some(Label {
                    cost: (self.key[i] >> 64) as Cost,
                    hops: (self.key[i] >> 32) as u32,
                    pred: (pred != NO_PRED)
                        .then(|| (NodeId::from_raw(pred.0), EdgeId::from_raw(pred.1))),
                    has_left: st & HAS_LEFT != 0,
                    has_right: st & HAS_RIGHT != 0,
                    tainted: st & TAINTED != 0,
                    via_backlink: st & VIA_BACK != 0,
                    ambiguous: st & AMBIGUOUS != 0,
                })
            })
            .collect();
        ShortestPathTree {
            source: self.source,
            frozen,
            labels,
            stats: self.stats,
            trace: self.trace,
        }
    }
}

/// Maps the frozen graph from `source` with the priority-queue variant
/// of Dijkstra's algorithm (O(e log v) on the sparse maps pathalias
/// sees). No back links are invented.
///
/// The queue is a lazy-deletion binary heap over the packed 128-bit
/// keys: an improved label is pushed again and the superseded entry is
/// skipped when popped (one state-byte test). On sparse maps this
/// benches about twice as fast as the paper's decrease-key heap — the
/// position index costs two extra stores per sift level, and pathalias
/// graphs see few decreases — so the engine takes the modern shape;
/// the 1986 structure survives faithfully in [`crate::heap`] and in
/// the `pathalias_bench::legacy` baseline.
pub fn map_frozen_readonly(
    f: &Arc<FrozenGraph>,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    let mut run = Run::new(f, source, opts)?;
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(256);
    heap.push(Reverse(pack_key(0, 0, source.raw())));
    run.stats.pushes += 1;

    while let Some(Reverse(key)) = heap.pop() {
        let u_raw = key as u32;
        if run.state[u_raw as usize] & MAPPED != 0 {
            run.stats.stale_pops += 1; // Superseded by a later improvement.
            continue;
        }
        run.stats.pops += 1;
        let u = NodeId::from_raw(u_raw);
        run.state[u.index()] |= MAPPED;
        run.stats.mapped += 1;
        let tail = run.tail(u);
        let (base_edge, row) = f.edge_slice(u);
        run.stats.relaxations += row.len() as u64;
        for (i, &edge) in row.iter().enumerate() {
            if let Relaxed::Improved(key) = run.relax(&tail, base_edge + i as u32, edge) {
                heap.push(Reverse(key));
                run.stats.pushes += 1;
            }
        }
    }
    Ok(run.finish(f.clone()))
}

/// Maps with the standard O(v²) array-scan Dijkstra the paper compares
/// against. Produces labels identical to [`map_frozen_readonly`].
pub fn map_frozen_quadratic_readonly(
    f: &Arc<FrozenGraph>,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    let mut run = Run::new(f, source, opts)?;
    loop {
        // Select the unmapped labelled node with the smallest key by
        // scanning the whole array — the v² part.
        let mut best: Option<(Key, NodeId)> = None;
        for i in 0..run.state.len() {
            run.stats.scan_steps += 1;
            if run.state[i] & (LABELLED | MAPPED) != LABELLED {
                continue;
            }
            let id = NodeId::from_raw(i as u32);
            let k = run.key[i];
            if best.map_or(true, |(bk, _)| k < bk) {
                best = Some((k, id));
            }
        }
        let Some((_, u)) = best else { break };
        run.state[u.index()] |= MAPPED;
        run.stats.mapped += 1;
        let tail = run.tail(u);
        let (base_edge, row) = f.edge_slice(u);
        run.stats.relaxations += row.len() as u64;
        for (i, &edge) in row.iter().enumerate() {
            let _ = run.relax(&tail, base_edge + i as u32, edge);
        }
    }
    Ok(run.finish(f.clone()))
}

/// Maps from `source`, then runs the back-link pass to fixpoint: "we
/// examine the connections out of each unreachable host, invent links
/// from its neighbors back to the host, and continue with Dijkstra's
/// algorithm." Invented links carry [`LinkFlags::BACK`] and the
/// back-link penalty; each round rebuilds an augmented frozen graph
/// (the original is never touched), and the returned tree's
/// [`frozen`](ShortestPathTree::frozen) handle is the final snapshot
/// including every invented edge.
pub fn map_frozen(
    f: &Arc<FrozenGraph>,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    let mut frozen = f.clone();
    let mut rounds = 0u32;
    let mut invented_total = 0u64;
    loop {
        let mut tree = map_frozen_readonly(&frozen, source, opts)?;
        tree.stats.backlink_rounds = rounds;
        tree.stats.invented_links = invented_total;
        if opts.no_backlinks {
            return Ok(tree);
        }
        // Invent reverse links for unreachable hosts that declare a
        // connection out to a mapped host.
        let mut inventions: Vec<(NodeId, NodeId, Cost, pathalias_graph::RouteOp, LinkFlags)> =
            Vec::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for u in tree.unreachable() {
            if opts.exclude_domains && frozen.is_domain(u) {
                continue;
            }
            for e in frozen.out_edges(u) {
                if frozen.edge_flags(e).contains(LinkFlags::BACK) {
                    continue;
                }
                let to = frozen.edge_target(e);
                if tree.is_mapped(to) {
                    // The invented edge starts from the declared raw
                    // weight; the *neighbor's* own bias is applied when
                    // the augmented graph is rebuilt.
                    let cost = frozen
                        .edge_raw_cost(e)
                        .saturating_add(opts.model.backlink_penalty);
                    // Only invent a given reverse link once, across
                    // rounds and within this round.
                    if !frozen.has_back_edge(to, u) && seen.insert((to.raw(), u.raw())) {
                        inventions.push((to, u, cost, frozen.edge_op(e), LinkFlags::BACK));
                    }
                }
            }
        }
        if inventions.is_empty() {
            return Ok(tree);
        }
        invented_total += inventions.len() as u64;
        frozen = Arc::new(frozen.with_edges_appended(&inventions));
        rounds += 1;
        assert!(
            (rounds as usize) <= frozen.node_count() + 1,
            "back-link pass failed to converge"
        );
    }
}

/// Repairs `old` — a tree mapped over a snapshot that differs from
/// `graph` only in the adjacency rows of the `dirty` nodes — into the
/// tree a fresh [`map_frozen_readonly`] run over `graph` would
/// produce, in time proportional to the affected cone rather than the
/// whole world (Ramalingam–Reps-style dynamic SSSP over the packed
/// run state).
///
/// The caller must pass the `graph`/`shift` pair returned by
/// [`FrozenGraph::with_rows_replaced`] applied to `old.frozen()`, and
/// the same `opts` the old tree was mapped with. The repair seeds the
/// priority queue with the dirty tails and the intact frontier around
/// the invalidated subtrees and re-runs the ordinary relaxation; the
/// deterministic tie break ("smaller (pred, edge) wins") is
/// visit-order independent, so the repaired labels are bit-identical
/// to a cold run's.
///
/// Returns `Ok(None)` — caller falls back to a full remap — when the
/// repair cannot cheaply certify equivalence: tracing is on (a
/// repair's trace log would differ from a full run's), the dirty cone
/// exceeds `max_dirty_fraction` of the world (the worst-case guard:
/// a delta must never cost more than the full run it replaces), the
/// set of reached nodes changed (the back-link pass would invent a
/// different augmentation), or an unreachable dirty node gained an
/// edge to a mapped host (a full run would invent a new back link).
pub fn repair_frozen(
    old: &ShortestPathTree,
    graph: &Arc<FrozenGraph>,
    dirty: &[NodeId],
    shift: &pathalias_graph::EdgeShift,
    opts: &MapOptions,
    max_dirty_fraction: f64,
) -> Result<Option<ShortestPathTree>, MapError> {
    let n = graph.node_count();
    if !opts.trace.is_empty() || n != old.frozen().node_count() || n == 0 {
        return Ok(None);
    }
    let source = old.source;
    let mut run = Run::new(graph, source, opts)?;

    // Re-load the packed run state from the old tree's labels (pred
    // edge ids still in old-snapshot terms; remapped below).
    for i in 0..n {
        match &old.labels[i] {
            Some(l) => {
                run.key[i] = pack_key(l.cost, l.hops, i as u32);
                run.pred[i] = match l.pred {
                    Some((p, e)) => (p.raw(), e.raw()),
                    None => NO_PRED,
                };
                run.state[i] = LABELLED
                    | if l.has_left { HAS_LEFT } else { 0 }
                    | if l.has_right { HAS_RIGHT } else { 0 }
                    | if l.tainted { TAINTED } else { 0 }
                    | if l.via_backlink { VIA_BACK } else { 0 }
                    | if l.ambiguous { AMBIGUOUS } else { 0 };
            }
            None => {
                run.key[i] = pack_key(0, 0, i as u32);
                run.pred[i] = NO_PRED;
                run.state[i] = 0;
            }
        }
    }

    let mut is_dirty = vec![false; n];
    for &d in dirty {
        is_dirty[d.index()] = true;
    }

    // Invalidate every strict descendant of a dirty node: its label
    // was derived (directly or transitively) through a replaced row.
    // The dirty nodes themselves keep their labels — the path *into*
    // them is intact.
    let children = old.children();
    let mut invalid = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    for &d in dirty {
        stack.extend(children[d.index()].iter().copied());
    }
    while let Some(v) = stack.pop() {
        let vi = v.index();
        if run.state[vi] & LABELLED == 0 {
            continue; // Already cleared via another dirty ancestor.
        }
        run.state[vi] = 0;
        run.pred[vi] = NO_PRED;
        run.key[vi] = pack_key(0, 0, vi as u32);
        invalid += 1;
        stack.extend(children[vi].iter().copied());
    }
    let budget = ((n as f64) * max_dirty_fraction) as usize;
    if invalid + dirty.len() > budget.max(1) {
        return Ok(None);
    }

    // Surviving labels still hold old edge ids; shift them into the
    // new snapshot. An intact pred inside a replaced row is impossible
    // (its head would have been invalidated above) — bail rather than
    // trust a corrupt input.
    for i in 0..n {
        if run.state[i] & LABELLED != 0 && run.pred[i] != NO_PRED {
            match shift.map(EdgeId::from_raw(run.pred[i].1)) {
                Some(e) => run.pred[i].1 = e.raw(),
                None => return Ok(None),
            }
        }
    }

    // Seed the queue: every labelled dirty tail (its row's weights
    // changed) and every intact node on the frontier of the cleared
    // region (an edge into an unlabelled node). Over-seeding is
    // harmless — a pop whose relaxations all lose is just wasted work.
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(256);
    for (i, &dirty) in is_dirty.iter().enumerate() {
        if run.state[i] & LABELLED == 0 {
            continue;
        }
        let seed = dirty || {
            let (_, row) = graph.edge_slice(NodeId::from_raw(i as u32));
            row.iter()
                .any(|e| run.state[e.to().index()] & LABELLED == 0)
        };
        if seed {
            heap.push(Reverse(run.key[i]));
            run.stats.pushes += 1;
        }
    }

    // The ordinary lazy-deletion loop over the seeded frontier.
    while let Some(Reverse(key)) = heap.pop() {
        let u_raw = key as u32;
        if run.state[u_raw as usize] & MAPPED != 0 {
            run.stats.stale_pops += 1;
            continue;
        }
        run.stats.pops += 1;
        let u = NodeId::from_raw(u_raw);
        run.state[u.index()] |= MAPPED;
        run.stats.mapped += 1;
        let tail = run.tail(u);
        let (base_edge, row) = graph.edge_slice(u);
        run.stats.relaxations += row.len() as u64;
        for (i, &edge) in row.iter().enumerate() {
            if let Relaxed::Improved(key) = run.relax(&tail, base_edge + i as u32, edge) {
                heap.push(Reverse(key));
                run.stats.pushes += 1;
            }
        }
    }

    // The reached set must be exactly the old one: anything else means
    // the back-link pass would run differently on a cold start.
    for i in 0..n {
        if (run.state[i] & LABELLED != 0) != old.labels[i].is_some() {
            return Ok(None);
        }
    }
    // An unreachable dirty node whose *new* row reaches a mapped host
    // would make a cold run invent a back link that the old
    // augmentation lacks.
    if !opts.no_backlinks {
        for &d in dirty {
            if run.state[d.index()] & LABELLED != 0 {
                continue;
            }
            let (_, row) = graph.edge_slice(d);
            if row.iter().any(|e| {
                !e.flags().contains(LinkFlags::BACK) && run.state[e.to().index()] & LABELLED != 0
            }) {
                return Ok(None);
            }
        }
    }

    run.stats.backlink_rounds = old.stats.backlink_rounds;
    run.stats.invented_links = old.stats.invented_links;
    Ok(Some(run.finish(graph.clone())))
}

/// Freezes `g` and maps it from `source` with back links (see
/// [`map_frozen`]). Convenient for one-shot callers; anything that maps
/// repeatedly should freeze once.
pub fn map(g: &Graph, source: NodeId, opts: &MapOptions) -> Result<ShortestPathTree, MapError> {
    map_frozen(&Arc::new(g.freeze()), source, opts)
}

/// Freezes `g` and maps it from `source` without back links (see
/// [`map_frozen_readonly`]).
pub fn map_readonly(
    g: &Graph,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    map_frozen_readonly(&Arc::new(g.freeze()), source, opts)
}

/// Freezes `g` and maps it with the O(v²) array-scan variant (see
/// [`map_frozen_quadratic_readonly`]).
pub fn map_quadratic_readonly(
    g: &Graph,
    source: NodeId,
    opts: &MapOptions,
) -> Result<ShortestPathTree, MapError> {
    map_frozen_quadratic_readonly(&Arc::new(g.freeze()), source, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::{NodeFlags, INF};
    use pathalias_parser::parse;

    fn ids(g: &Graph, names: &[&str]) -> Vec<NodeId> {
        names.iter().map(|n| g.try_node(n).unwrap()).collect()
    }

    #[test]
    fn straight_line_costs() {
        let g = parse("a b(10)\nb c(20)\nc d(5)\n").unwrap();
        let v = ids(&g, &["a", "b", "c", "d"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[0]), Some(0));
        assert_eq!(t.cost(v[1]), Some(10));
        assert_eq!(t.cost(v[2]), Some(30));
        assert_eq!(t.cost(v[3]), Some(35));
        assert_eq!(t.path_to(v[3]).unwrap(), v);
    }

    #[test]
    fn picks_cheaper_indirect_route() {
        // The paper's observation: unc->phs direct (2000) loses to
        // unc->duke->phs (500+300).
        let g = parse("unc duke(500), phs(2000)\nduke phs(300)\n").unwrap();
        let v = ids(&g, &["unc", "duke", "phs"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(800));
        assert_eq!(t.path_to(v[2]).unwrap(), v);
    }

    #[test]
    fn quadratic_matches_heap_exactly() {
        let text = "\
a b(10), c(200), @d(40)
b c(20), e(100)
c d(5)
d e(1)
e a(1)
N = {b, d, f}(30)
g h(10)
";
        let g = parse(text).unwrap();
        let a = g.try_node("a").unwrap();
        let opts = MapOptions::default();
        let frozen = Arc::new(g.freeze());
        let t1 = map_frozen_readonly(&frozen, a, &opts).unwrap();
        let t2 = map_frozen_quadratic_readonly(&frozen, a, &opts).unwrap();
        for id in g.node_ids() {
            assert_eq!(t1.label(id), t2.label(id), "node {}", g.name(id));
        }
        assert!(t1.stats.pushes > 0);
        assert_eq!(t2.stats.pushes, 0);
        assert!(t2.stats.scan_steps > 0);
    }

    #[test]
    fn network_membership_costs() {
        // Pay to enter, exit for free.
        let g = parse("a NET(50)\nNET = {x, y}(75)\n").unwrap();
        let v = ids(&g, &["a", "NET", "x", "y"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(50));
        assert_eq!(t.cost(v[2]), Some(50), "exit is free");
        assert_eq!(t.cost(v[3]), Some(50));
    }

    #[test]
    fn alias_edges_are_free_and_invisible() {
        let g = parse("a princeton(100)\nprinceton = fun\nfun z(10)\n").unwrap();
        let v = ids(&g, &["a", "princeton", "fun", "z"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(100), "alias costs nothing");
        assert_eq!(
            t.label(v[2]).unwrap().hops,
            t.label(v[1]).unwrap().hops,
            "alias adds no visible hop"
        );
        assert_eq!(t.cost(v[3]), Some(110), "links from the alias work");
    }

    #[test]
    fn dead_host_never_relays() {
        let g = parse("a b(10)\nb c(10)\na c(1000)\ndead {b}\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(10), "dead host is reachable");
        assert_eq!(t.cost(v[2]), Some(1000), "but never relays");
    }

    #[test]
    fn dead_link_is_last_resort() {
        let g = parse("a b(10)\ndead {a!b}\na c(50)\nc b(50)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(100), "detour beats dead link");
    }

    #[test]
    fn deleted_nodes_and_links_ignored() {
        let g = parse("a b(10)\nb c(10)\ndelete {b}\na c(500)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), None);
        assert_eq!(t.cost(v[2]), Some(500));
    }

    #[test]
    fn adjust_bias_applies_in_transit_only() {
        let g = parse("a b(10)\nb c(10)\nadjust {b(100)}\na c(50)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(10), "bias not charged to reach b");
        assert_eq!(t.cost(v[2]), Some(50), "transit through b costs 120");
    }

    #[test]
    fn adjusted_source_pays_no_own_bias() {
        // The bias on the *source* must not apply to its own edges —
        // the case the freeze-time folding has to undo.
        let g = parse("a b(10)\nadjust {a(100)}\n").unwrap();
        let v = ids(&g, &["a", "b"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(10), "source exempt from its bias");
        // Mapping from elsewhere, the bias applies in transit.
        let g = parse("z a(5)\na b(10)\nadjust {a(100)}\n").unwrap();
        let v = ids(&g, &["z", "a", "b"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(115));
    }

    #[test]
    fn negative_adjust_clamps_at_zero() {
        let g = parse("a b(10)\nb c(5)\nadjust {b(-100)}\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(10), "edge cost clamps at zero");
    }

    #[test]
    fn gated_network_penalty_and_gateway() {
        let text = "\
GNET = {x, y}(10)
gated {GNET}
a x(10), g(10)
g GNET(20)
gateway {GNET!g}
";
        let g = parse(text).unwrap();
        let v = ids(&g, &["a", "x", "g", "GNET", "y"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        // Entering via member x is penalized; via gateway g is not.
        assert_eq!(t.cost(v[3]), Some(30), "a->g->GNET");
        assert_eq!(t.cost(v[4]), Some(30), "y via the gateway");
        assert!(t.stats.gate_penalties > 0);
    }

    #[test]
    fn explicit_link_into_gated_net_is_gateway() {
        // No `gateway` command: the explicit link itself qualifies.
        let text = "GNET = {x}(10)\ngated {GNET}\na s(10)\ns GNET(5)\n";
        let g = parse(text).unwrap();
        let v = ids(&g, &["a", "s", "GNET", "x"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(15));
        assert_eq!(t.cost(v[3]), Some(15));
    }

    #[test]
    fn domain_up_edge_essentially_infinite() {
        // .edu has member .rutgers; going up .rutgers -> .edu must cost
        // about INF (the membership entry edge is not exempt for a
        // domain member).
        let text = ".edu = {.rutgers}(0)\n.rutgers = {caip}(0)\nstart caip(10)\n";
        let g = parse(text).unwrap();
        let v = ids(&g, &["start", "caip", ".rutgers", ".edu"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        // caip is a member of .rutgers: entering is exempt; but its
        // path then went through a domain, so further links from .edu
        // are relay-penalized; the up edge gets the gate penalty too.
        let up = t.cost(v[3]).unwrap();
        assert!(
            up >= INF,
            "up-tree cost {up} should be essentially infinite"
        );
        assert!(t.cost(v[2]).unwrap() < INF);
    }

    #[test]
    fn relay_restriction_after_domain() {
        // Once through a domain, further links are penalized.
        let text = "a caip(10)\ncaip .rutgers.edu(20)\n.rutgers.edu = {blue}(0)\nblue far(10)\n";
        let g = parse(text).unwrap();
        let v = ids(&g, &["a", "blue", "far"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[1]), Some(30), "blue via the domain is fine");
        assert!(
            t.cost(v[2]).unwrap() >= INF,
            "onward relaying from a domain-reached host is penalized"
        );
        assert!(t.label(v[1]).unwrap().tainted);
    }

    #[test]
    fn mixed_syntax_bang_after_at_penalized() {
        // a -@-> b -!-> c: the ! hop lands after an @ hop.
        let g = parse("a @b(10)\nb c(10)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        let m = MapOptions::default().model;
        assert_eq!(t.cost(v[2]), Some(20 + m.mixed_penalty));
        assert_eq!(t.stats.mixed_penalties, 1);
    }

    #[test]
    fn classic_at_after_bang_free() {
        // The paper's own example form: pure ! prefix then a final @.
        let g = parse("a b(10)\nb @c(10)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert_eq!(t.cost(v[2]), Some(20), "no penalty by default");

        let strict = MapOptions {
            model: CostModel {
                strict_mixed: true,
                ..CostModel::default()
            },
            ..MapOptions::default()
        };
        let t = map(&g, v[0], &strict).unwrap();
        assert_eq!(
            t.cost(v[2]),
            Some(20 + strict.model.mixed_penalty),
            "strict mode penalizes any mixing"
        );
    }

    #[test]
    fn backlinks_reach_leaf_hosts() {
        // leaf declares a link out but nobody links back to it.
        let g = parse("a b(10)\nleaf b(25)\n").unwrap();
        let v = ids(&g, &["a", "b", "leaf"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        let m = MapOptions::default().model;
        assert_eq!(
            t.cost(v[2]),
            Some(10 + 25 + m.backlink_penalty),
            "b gets an invented link back to leaf"
        );
        assert!(t.label(v[2]).unwrap().via_backlink);
        assert_eq!(t.stats.invented_links, 1);
        assert_eq!(t.stats.backlink_rounds, 1);
        // The invented edge lives in the tree's (augmented) snapshot,
        // not in anything the caller holds.
        assert!(t.frozen().has_back_edge(v[1], v[2]));
    }

    #[test]
    fn backlinks_iterate_to_fixpoint() {
        // A whole chain pointing the wrong way: leaf2 -> leaf1 -> b.
        let g = parse("a b(10)\nleaf1 b(20)\nleaf2 leaf1(30)\n").unwrap();
        let v = ids(&g, &["a", "leaf1", "leaf2"]);
        let t = map(&g, v[0], &MapOptions::default()).unwrap();
        assert!(t.is_mapped(v[1]));
        assert!(t.is_mapped(v[2]), "second round reaches leaf2");
        assert_eq!(t.stats.backlink_rounds, 2);
    }

    #[test]
    fn no_backlinks_option() {
        let g = parse("a b(10)\nleaf b(25)\n").unwrap();
        let v = ids(&g, &["a", "leaf"]);
        let opts = MapOptions {
            no_backlinks: true,
            ..MapOptions::default()
        };
        let t = map(&g, v[0], &opts).unwrap();
        assert!(!t.is_mapped(v[1]));
        assert_eq!(t.unreachable(), vec![v[1]]);
    }

    #[test]
    fn deleted_source_errors() {
        let g = parse("a b(10)\ndelete {a}\n").unwrap();
        let a = g.try_node("a").unwrap();
        assert_eq!(
            map(&g, a, &MapOptions::default()).unwrap_err(),
            MapError::DeletedSource
        );
    }

    #[test]
    fn trace_records_decisions() {
        let g = parse("a b(10), c(5)\nc b(1)\n").unwrap();
        let v = ids(&g, &["a", "b", "c"]);
        let opts = MapOptions {
            trace: vec![v[1]],
            ..MapOptions::default()
        };
        let t = map(&g, v[0], &opts).unwrap();
        assert!(t.trace.len() >= 2, "both relaxations into b traced");
        assert!(t
            .trace
            .iter()
            .any(|e| e.decision == TraceDecision::Accepted));
        assert_eq!(t.cost(v[1]), Some(6));
    }

    #[test]
    fn determinism_across_variants_and_runs() {
        let text = "\
hub a(10), b(10), c(10)
a x(10)
b x(10)
c x(10)
x y(1)
";
        let g = parse(text).unwrap();
        let hub = g.try_node("hub").unwrap();
        let opts = MapOptions::default();
        let t1 = map_readonly(&g, hub, &opts).unwrap();
        let t2 = map_readonly(&g, hub, &opts).unwrap();
        let t3 = map_quadratic_readonly(&g, hub, &opts).unwrap();
        let x = g.try_node("x").unwrap();
        // Three equal-cost preds for x: the smallest node id (a) wins
        // in every variant.
        let a = g.try_node("a").unwrap();
        assert_eq!(t1.label(x).unwrap().pred.unwrap().0, a);
        assert_eq!(t1.label(x), t2.label(x));
        assert_eq!(t1.label(x), t3.label(x));
    }

    /// Asserts every label of `a` equals the matching label of `b`.
    fn assert_trees_equal(a: &ShortestPathTree, b: &ShortestPathTree) {
        for id in a.frozen().node_ids() {
            assert_eq!(a.label(id), b.label(id), "label of node {id:?}");
        }
    }

    #[test]
    fn repair_matches_cold_run_on_cost_change() {
        let text = "\
hub a(10), b(10), c(10)
a x(10)
b x(10)
c x(10)
x y(1)
y hub(1)
";
        let g = parse(text).unwrap();
        let hub = g.try_node("hub").unwrap();
        let a = g.try_node("a").unwrap();
        let x = g.try_node("x").unwrap();
        let opts = MapOptions::default();
        let frozen = Arc::new(g.freeze());
        let old = map_frozen_readonly(&frozen, hub, &opts).unwrap();

        // Cheapen a -> x so the tie for x flips to a decisive win.
        let (patched, shift) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: a,
            edges: vec![(x, 1, pathalias_graph::RouteOp::UUCP, LinkFlags::empty())],
        }]);
        let patched = Arc::new(patched);
        let repaired = repair_frozen(&old, &patched, &[a], &shift, &opts, 1.0)
            .unwrap()
            .expect("repair applies");
        let cold = map_frozen_readonly(&patched, hub, &opts).unwrap();
        assert_trees_equal(&repaired, &cold);
        assert_eq!(repaired.cost(x), Some(11));
    }

    #[test]
    fn repair_matches_cold_run_on_link_removal() {
        let text = "\
hub a(10), b(50)
a x(10)
b x(10)
x y(1)
b a(70)
";
        let g = parse(text).unwrap();
        let hub = g.try_node("hub").unwrap();
        let a = g.try_node("a").unwrap();
        let x = g.try_node("x").unwrap();
        let opts = MapOptions::default();
        let frozen = Arc::new(g.freeze());
        let old = map_frozen_readonly(&frozen, hub, &opts).unwrap();
        assert_eq!(old.cost(x), Some(20), "via a");

        // Drop a -> x: x must re-route through b, and the whole x
        // subtree repairs.
        let (patched, shift) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: a,
            edges: vec![],
        }]);
        let patched = Arc::new(patched);
        let repaired = repair_frozen(&old, &patched, &[a], &shift, &opts, 1.0)
            .unwrap()
            .expect("repair applies");
        let cold = map_frozen_readonly(&patched, hub, &opts).unwrap();
        assert_trees_equal(&repaired, &cold);
        assert_eq!(repaired.cost(x), Some(60), "re-routed via b");
    }

    #[test]
    fn repair_settles_ties_like_cold_run() {
        // Three equal preds for x; dirtying one must leave the
        // deterministic winner (smallest pred id) in place.
        let text = "\
hub a(10), b(10), c(10)
a x(10)
b x(10)
c x(10)
";
        let g = parse(text).unwrap();
        let hub = g.try_node("hub").unwrap();
        let c = g.try_node("c").unwrap();
        let x = g.try_node("x").unwrap();
        let opts = MapOptions::default();
        let frozen = Arc::new(g.freeze());
        let old = map_frozen_readonly(&frozen, hub, &opts).unwrap();
        let (patched, shift) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: c,
            edges: vec![(x, 10, pathalias_graph::RouteOp::UUCP, LinkFlags::empty())],
        }]);
        let patched = Arc::new(patched);
        let repaired = repair_frozen(&old, &patched, &[c], &shift, &opts, 1.0)
            .unwrap()
            .expect("repair applies");
        let cold = map_frozen_readonly(&patched, hub, &opts).unwrap();
        assert_trees_equal(&repaired, &cold);
        let a = g.try_node("a").unwrap();
        assert_eq!(repaired.label(x).unwrap().pred.unwrap().0, a);
    }

    #[test]
    fn repair_bails_when_reachability_changes() {
        let g = parse("hub a(10)\na x(10)\n").unwrap();
        let hub = g.try_node("hub").unwrap();
        let a = g.try_node("a").unwrap();
        let x = g.try_node("x").unwrap();
        let opts = MapOptions {
            no_backlinks: true,
            ..MapOptions::default()
        };
        let frozen = Arc::new(g.freeze());
        let old = map_frozen_readonly(&frozen, hub, &opts).unwrap();
        // Cutting a -> x strands x: the reached set shrinks, so the
        // repair must hand back to the full pipeline.
        let (patched, shift) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: a,
            edges: vec![],
        }]);
        let patched = Arc::new(patched);
        assert!(repair_frozen(&old, &patched, &[a], &shift, &opts, 1.0)
            .unwrap()
            .is_none());
        // And a too-small dirty budget bails before doing any work.
        let (same, shift2) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: a,
            edges: vec![(x, 11, pathalias_graph::RouteOp::UUCP, LinkFlags::empty())],
        }]);
        let same = Arc::new(same);
        assert!(
            repair_frozen(&old, &same, &[a], &shift2, &opts, 0.0)
                .unwrap()
                .is_none(),
            "zero budget always falls back"
        );
    }

    #[test]
    fn repair_bails_when_unreachable_dirty_node_gains_mapped_target() {
        // leaf is unreachable (no_backlinks run over a world where a
        // cold full map would invent b -> leaf). Giving leaf an edge
        // while it stays unreachable must bail under default options
        // because a cold run's invention set would change.
        let g = parse("hub b(10)\nleaf b(25)\n").unwrap();
        let hub = g.try_node("hub").unwrap();
        let b = g.try_node("b").unwrap();
        let leaf = g.try_node("leaf").unwrap();
        let opts = MapOptions {
            no_backlinks: true,
            ..MapOptions::default()
        };
        let frozen = Arc::new(g.freeze());
        let old = map_frozen_readonly(&frozen, hub, &opts).unwrap();
        assert!(!old.is_mapped(leaf));
        let (patched, shift) = frozen.with_rows_replaced(&[pathalias_graph::RowPatch {
            node: leaf,
            edges: vec![(b, 30, pathalias_graph::RouteOp::UUCP, LinkFlags::empty())],
        }]);
        let patched = Arc::new(patched);
        // With back links enabled a cold run would invent differently.
        let with_backlinks = MapOptions::default();
        assert!(
            repair_frozen(&old, &patched, &[leaf], &shift, &with_backlinks, 1.0)
                .unwrap()
                .is_none(),
            "invention-changing delta must fall back"
        );
        // With back links disabled the repair can stand.
        let repaired = repair_frozen(&old, &patched, &[leaf], &shift, &opts, 1.0)
            .unwrap()
            .expect("no inventions to differ on");
        let cold = map_frozen_readonly(&patched, hub, &opts).unwrap();
        assert_trees_equal(&repaired, &cold);
    }

    #[test]
    fn repair_over_augmented_snapshot_cost_change() {
        // A world that needed a back link: the cached tree's graph is
        // the augmented snapshot. A cost-only patch to a row of that
        // snapshot (base prefix + kept BACK tail) must still repair to
        // the cold answer over the same augmentation.
        let g = parse("hub a(10)\na x(10)\nleaf a(25)\n").unwrap();
        let hub = g.try_node("hub").unwrap();
        let a = g.try_node("a").unwrap();
        let x = g.try_node("x").unwrap();
        let opts = MapOptions::default();
        let frozen = Arc::new(g.freeze());
        let old = map_frozen(&frozen, hub, &opts).unwrap();
        assert_eq!(old.stats.invented_links, 1);
        let aug = old.frozen().clone();

        // Rebuild a's row with the same shape, only the a->x cost
        // changed; the invented a->leaf BACK edge rides along.
        let mut edges = Vec::new();
        for e in aug.out_edges(a) {
            let cost = if aug.edge_target(e) == x {
                99
            } else {
                aug.edge_raw_cost(e)
            };
            edges.push((aug.edge_target(e), cost, aug.edge_op(e), aug.edge_flags(e)));
        }
        let (patched, shift) =
            aug.with_rows_replaced(&[pathalias_graph::RowPatch { node: a, edges }]);
        assert!(shift.is_identity_outside_rows());
        let patched = Arc::new(patched);
        let repaired = repair_frozen(&old, &patched, &[a], &shift, &opts, 1.0)
            .unwrap()
            .expect("repair applies over the augmented snapshot");
        let cold = map_frozen_readonly(&patched, hub, &opts).unwrap();
        assert_trees_equal(&repaired, &cold);
        assert_eq!(repaired.cost(x), Some(109));
    }

    #[test]
    fn private_hosts_map_normally() {
        let mut g = Graph::new();
        g.begin_file("f");
        let a = g.node("a");
        let p = g.declare_private("bilbo");
        g.declare_link(a, p, 10, pathalias_graph::RouteOp::UUCP);
        let t = map(&g, a, &MapOptions::default()).unwrap();
        assert_eq!(t.cost(p), Some(10));
        assert!(g.node_ref(p).flags.contains(NodeFlags::PRIVATE));
    }
}
