//! Property test: the indexed heap against a sorted-model oracle.

use pathalias_mapper::heap::IndexedHeap;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32, u64),
    DecreaseToHalf(u32),
    Pop,
}

fn op(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 0u64..10_000).prop_map(|(i, k)| Op::Push(i, k)),
        (0..n).prop_map(Op::DecreaseToHalf),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_model(ops in proptest::collection::vec(op(64), 1..400)) {
        let mut heap: IndexedHeap<(u64, u32)> = IndexedHeap::new(64);
        // Model: node -> key.
        let mut model: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Push(node, key) => {
                    model.entry(node).or_insert_with(|| {
                        heap.push(node, (key, node));
                        key
                    });
                }
                Op::DecreaseToHalf(node) => {
                    if let Some(k) = model.get_mut(&node) {
                        *k /= 2;
                        heap.decrease(node, (*k, node));
                    }
                }
                Op::Pop => {
                    let expected = model
                        .iter()
                        .map(|(&n, &k)| (k, n))
                        .min();
                    match expected {
                        None => prop_assert!(heap.pop().is_none()),
                        Some((k, n)) => {
                            prop_assert_eq!(heap.pop(), Some((n, (k, n))));
                            model.remove(&n);
                        }
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
            for (&n, &k) in &model {
                prop_assert!(heap.contains(n));
                prop_assert_eq!(heap.key_of(n), Some((k, n)));
            }
        }
    }
}
