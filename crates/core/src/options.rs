//! Pipeline options.

use pathalias_mapper::CostModel;
use pathalias_printer::Sort;

/// Options controlling the whole pipeline, mirroring the original
/// command line where one exists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    /// The local host: the mapping source and the `0 ... %s` line of
    /// the output (`-l`). When unset, the first host declared in the
    /// input is used.
    pub local: Option<String>,
    /// Fold host names to lower case (`-i`).
    pub ignore_case: bool,
    /// Show costs in the output (`-c`).
    pub with_costs: bool,
    /// Output ordering.
    pub sort: Sort,
    /// Routing-heuristic configuration.
    pub cost_model: CostModel,
    /// Disable the back-link pass for unreachable hosts.
    pub no_backlinks: bool,
    /// Hosts whose relaxations should be traced (`-t`).
    pub trace: Vec<String>,
    /// Also compute the domain-free "second-best" tree (the PROBLEMS
    /// section experiment).
    pub second_best: bool,
    /// Include hidden entries (networks, subdomains, private hosts) in
    /// the rendered output, `#`-marked.
    pub include_hidden: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_behaviour() {
        let o = Options::default();
        assert!(o.local.is_none());
        assert!(!o.ignore_case);
        assert!(!o.with_costs);
        assert_eq!(o.cost_model, CostModel::paper());
        assert!(!o.no_backlinks);
        assert!(!o.second_best);
    }
}
