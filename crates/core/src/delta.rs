//! Entry-level parse diffing for incremental reload.
//!
//! A map edit is usually one line in one file; re-running parse, build,
//! freeze, map and print over a million-node world to absorb it is the
//! O(world) cost the incremental reload path exists to avoid. This
//! module compares the previous input texts against the re-read ones at
//! *statement* granularity and, when the edit is provably safe, emits
//! the [`RowPatch`] set that [`FrozenGraph::with_rows_replaced`] turns
//! into a patched snapshot — skipping the build and freeze stages
//! entirely.
//!
//! "Provably safe" is the whole game. Pathalias input has non-local
//! semantics — `private` rescopes names per file, `dead`/`delete`/
//! `adjust` rewrite flags declared elsewhere, networks and aliases
//! fabricate edges on *other* nodes' rows, and node ids (which every
//! frozen structure is keyed by) are assigned in first-mention order
//! across the whole file set. The planner therefore only accepts an
//! edit when:
//!
//! * exactly one input file changed;
//! * every removed and added statement is *plain* — a `host target,
//!   target...` link list with no `{`, `}` or `=`;
//! * the file's first-mention sequence of names is unchanged, so every
//!   node keeps its id (cost expressions are skipped during this walk:
//!   `(HOURLY*4)` mentions no host);
//! * no name touched by the edit — and no target of any surviving
//!   statement whose row is being rebuilt — appears anywhere in a
//!   non-plain statement, which keeps the edit clear of `private`
//!   scoping, network membership, aliasing, adjustments and the rest.
//!
//! Everything else falls back to the full pipeline, which stays the
//! oracle: the reload path proves the patched snapshot equal to a cold
//! rebuild before trusting it further.

use pathalias_graph::{FrozenGraph, NodeId, RowPatch};
use pathalias_parser::parse_into;
use std::collections::HashSet;

/// The planner's verdict on one re-read of the input files.
#[derive(Debug)]
pub enum DeltaPlan {
    /// The inputs are byte-identical (or differ only in comments and
    /// whitespace): nothing to do.
    Unchanged,
    /// The edit is safe to absorb as row replacements.
    Patch {
        /// Replacement rows, sorted by node id, one per dirty head.
        patches: Vec<RowPatch>,
    },
    /// The edit could not be proven safe; re-run the full pipeline.
    /// The string names the first gate that failed, for telemetry.
    Fallback(&'static str),
}

/// Diffs `old` against `new` (parallel `(file, text)` lists) and plans
/// the cheapest safe reload against `frozen`, the snapshot built from
/// `old`.
///
/// # Examples
///
/// ```
/// use pathalias_core::{plan_delta, DeltaPlan};
///
/// let old = vec![("m".to_string(), "a b(10)\nb c(20)\n".to_string())];
/// let new = vec![("m".to_string(), "a b(10)\nb c(5)\n".to_string())];
/// let frozen = pathalias_parser::parse("a b(10)\nb c(20)\n").unwrap().freeze();
/// match plan_delta(&old, &new, &frozen) {
///     DeltaPlan::Patch { patches } => assert_eq!(patches.len(), 1),
///     other => panic!("expected a patch, got {other:?}"),
/// }
/// ```
pub fn plan_delta(
    old: &[(String, String)],
    new: &[(String, String)],
    frozen: &FrozenGraph,
) -> DeltaPlan {
    if old.len() != new.len() {
        return DeltaPlan::Fallback("file set changed");
    }
    let mut changed: Option<usize> = None;
    for (i, ((of, ot), (nf, nt))) in old.iter().zip(new).enumerate() {
        if of != nf {
            return DeltaPlan::Fallback("file set changed");
        }
        if ot != nt {
            if changed.is_some() {
                return DeltaPlan::Fallback("multiple files changed");
            }
            changed = Some(i);
        }
    }
    let Some(ci) = changed else {
        return DeltaPlan::Unchanged;
    };

    let Some(old_stmts) = split_statements(&old[ci].1) else {
        return DeltaPlan::Fallback("unbalanced braces");
    };
    let Some(new_stmts) = split_statements(&new[ci].1) else {
        return DeltaPlan::Fallback("unbalanced braces");
    };

    // Longest common prefix and suffix of the statement lists; the
    // window between them is the edit.
    let mut p = 0;
    while p < old_stmts.len() && p < new_stmts.len() && old_stmts[p] == new_stmts[p] {
        p += 1;
    }
    let mut s = 0;
    while s < old_stmts.len() - p
        && s < new_stmts.len() - p
        && old_stmts[old_stmts.len() - 1 - s] == new_stmts[new_stmts.len() - 1 - s]
    {
        s += 1;
    }
    let removed = &old_stmts[p..old_stmts.len() - s];
    let added = &new_stmts[p..new_stmts.len() - s];
    if removed.is_empty() && added.is_empty() {
        return DeltaPlan::Unchanged;
    }
    if removed.iter().chain(added).any(|st| !is_plain(st)) {
        return DeltaPlan::Fallback("edit touches a non-plain statement");
    }

    // Node ids are assigned in first-mention order across the file
    // set; the edited file's mention sequence must be unchanged.
    let fold = frozen.ignore_case();
    if mention_sequence(&old_stmts, fold) != mention_sequence(&new_stmts, fold) {
        return DeltaPlan::Fallback("first-mention sequence changed");
    }

    // Names with non-plain semantics anywhere in the file set: private
    // scoping, network membership, aliases, dead/delete/adjust marks,
    // gateways. The edit must stay clear of all of them.
    let mut complex: HashSet<String> = HashSet::new();
    for (_, text) in new {
        let Some(stmts) = split_statements(text) else {
            return DeltaPlan::Fallback("unbalanced braces");
        };
        for st in &stmts {
            if !is_plain(st) {
                collect_names(st, fold, true, &mut |n| {
                    complex.insert(n.to_string());
                });
            }
        }
    }

    // The dirty heads, and the gate on every edited name.
    let mut dirty: Vec<NodeId> = Vec::new();
    let mut gate_failed = None;
    for st in removed.iter().chain(added) {
        let mut first = true;
        collect_names(st, fold, false, &mut |n| {
            if complex.contains(n) {
                gate_failed = Some("edited name has non-plain semantics");
            }
            let Some(id) = frozen.id_of(n) else {
                gate_failed = Some("edited name is not in the snapshot");
                return;
            };
            if first {
                first = false;
                if !dirty.contains(&id) {
                    dirty.push(id);
                }
            }
        });
    }
    if let Some(why) = gate_failed {
        return DeltaPlan::Fallback(why);
    }

    build_patches(new, frozen, &complex, &mut dirty)
}

/// Re-derives the full replacement row for every dirty head by running
/// its surviving plain statements (from every file) through the real
/// parser, then mapping the scratch graph's links back by name.
fn build_patches(
    new: &[(String, String)],
    frozen: &FrozenGraph,
    complex: &HashSet<String>,
    dirty: &mut [NodeId],
) -> DeltaPlan {
    let fold = frozen.ignore_case();
    // Stored names keep their declared case; the mention walk folds.
    let dirty_names: HashSet<String> = dirty
        .iter()
        .map(|&id| {
            let n = frozen.name(id);
            if fold {
                n.to_ascii_lowercase()
            } else {
                n.to_string()
            }
        })
        .collect();

    // Every plain statement whose head is dirty, in file order — link
    // order and duplicate handling must match a cold parse.
    let mut scratch_text = String::new();
    for (_, text) in new {
        let Some(stmts) = split_statements(text) else {
            return DeltaPlan::Fallback("unbalanced braces");
        };
        for st in &stmts {
            if !is_plain(st) {
                continue;
            }
            let mut head_is_dirty = false;
            let mut bad_target = false;
            let mut first = true;
            collect_names(st, fold, false, &mut |n| {
                if first {
                    first = false;
                    head_is_dirty = dirty_names.contains(n);
                } else if head_is_dirty && complex.contains(n) {
                    // The statement resolves this target through file
                    // scoping the scratch parse cannot reproduce.
                    bad_target = true;
                }
            });
            if bad_target {
                return DeltaPlan::Fallback("surviving target has non-plain semantics");
            }
            if head_is_dirty {
                scratch_text.push_str(st);
                scratch_text.push('\n');
            }
        }
    }

    let mut scratch = pathalias_graph::Graph::with_ignore_case(fold);
    if parse_into(&mut scratch, "<delta>", &scratch_text).is_err() {
        return DeltaPlan::Fallback("edited statements do not parse");
    }

    dirty.sort();
    let mut patches = Vec::with_capacity(dirty.len());
    for &node in dirty.iter() {
        let mut edges = Vec::new();
        if let Some(sh) = scratch.try_node(frozen.name(node)) {
            for (_, l) in scratch.links_from(sh) {
                let Some(to) = frozen.id_of(scratch.name(l.to)) else {
                    return DeltaPlan::Fallback("edited target is not in the snapshot");
                };
                edges.push((to, l.cost, l.op, l.flags));
            }
            // The adjacency list is stored newest-first; the patch,
            // like the freeze, wants declaration order.
            edges.reverse();
        }
        patches.push(RowPatch { node, edges });
    }
    DeltaPlan::Patch { patches }
}

/// Splits input text into statements: comment-stripped, continuation
/// lines joined, newlines inside brace lists absorbed (the scanner
/// skips them there), surrounding whitespace trimmed, empties dropped.
/// Returns `None` on unbalanced braces.
fn split_statements(text: &str) -> Option<Vec<String>> {
    let bytes = text.as_bytes();
    let mut stmts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    let mut i = 0;
    let flush = |cur: &mut String, stmts: &mut Vec<String>| {
        let trimmed = cur.trim();
        if !trimmed.is_empty() {
            stmts.push(trimmed.to_string());
        }
        cur.clear();
    };
    while i < bytes.len() {
        match bytes[i] {
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\\' if bytes.get(i + 1) == Some(&b'\n') => {
                cur.push(' ');
                i += 2;
            }
            b'\n' => {
                if depth > 0 {
                    cur.push(' ');
                } else {
                    flush(&mut cur, &mut stmts);
                }
                i += 1;
            }
            b => {
                if b == b'{' {
                    depth += 1;
                } else if b == b'}' {
                    depth = depth.checked_sub(1)?;
                }
                cur.push(b as char);
                i += 1;
            }
        }
    }
    if depth != 0 {
        return None;
    }
    flush(&mut cur, &mut stmts);
    Some(stmts)
}

/// Whether a (comment-stripped) statement is a plain link list: no
/// network or alias declaration, no brace-list command.
fn is_plain(stmt: &str) -> bool {
    !stmt.bytes().any(|b| matches!(b, b'{' | b'}' | b'='))
}

/// Calls `f` with every name token in `stmt`, skipping parenthesized
/// cost expressions unless `in_parens` (symbolic costs like `HOURLY`
/// are not host mentions, but for the complex-name set, over-collecting
/// is the conservative direction). Folds case when `fold`.
fn collect_names(stmt: &str, fold: bool, in_parens: bool, f: &mut dyn FnMut(&str)) {
    let bytes = stmt.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'(' {
            depth += 1;
            i += 1;
        } else if b == b')' {
            depth = depth.saturating_sub(1);
            i += 1;
        } else if is_name_start(b) {
            let start = i;
            while i < bytes.len() && is_name_byte(bytes[i]) {
                i += 1;
            }
            if depth == 0 || in_parens {
                let name = &stmt[start..i];
                if name.bytes().all(|b| b.is_ascii_digit()) {
                    continue; // a number, never a host
                }
                if fold {
                    f(&name.to_ascii_lowercase());
                } else {
                    f(name);
                }
            }
        } else {
            i += 1;
        }
    }
}

/// The ordered sequence of distinct names across all statements — the
/// order `Graph::node` first sees them in, which is the order node ids
/// are assigned in.
fn mention_sequence(stmts: &[String], fold: bool) -> Vec<String> {
    let mut seen = HashSet::new();
    let mut seq = Vec::new();
    for st in stmts {
        collect_names(st, fold, false, &mut |n| {
            if seen.insert(n.to_string()) {
                seq.push(n.to_string());
            }
        });
    }
    seq
}

// The scanner's name alphabet (`pathalias_parser::token` keeps its
// classifiers crate-private).
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-'
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(texts: &[(&str, &str)]) -> Vec<(String, String)> {
        texts
            .iter()
            .map(|(f, t)| (f.to_string(), t.to_string()))
            .collect()
    }

    fn frozen_of(inputs: &[(String, String)]) -> FrozenGraph {
        let pairs: Vec<(&str, &str)> = inputs
            .iter()
            .map(|(f, t)| (f.as_str(), t.as_str()))
            .collect();
        pathalias_parser::parse_files(&pairs).unwrap().freeze()
    }

    fn expect_patch(plan: DeltaPlan) -> Vec<RowPatch> {
        match plan {
            DeltaPlan::Patch { patches } => patches,
            other => panic!("expected Patch, got {other:?}"),
        }
    }

    #[test]
    fn identical_inputs_are_unchanged() {
        let old = inputs(&[("m", "a b(10)\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &old.clone(), &frozen),
            DeltaPlan::Unchanged
        ));
    }

    #[test]
    fn comment_only_edit_is_unchanged() {
        let old = inputs(&[("m", "a b(10) # slow\n")]);
        let new = inputs(&[("m", "a b(10) # fast now\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Unchanged
        ));
    }

    #[test]
    fn cost_edit_patches_one_row() {
        let old = inputs(&[("m", "a b(10)\nb c(20)\nc a(30)\n")]);
        let new = inputs(&[("m", "a b(10)\nb c(5)\nc a(30)\n")]);
        let frozen = frozen_of(&old);
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        assert_eq!(patches.len(), 1);
        let b = frozen.id_of("b").unwrap();
        let c = frozen.id_of("c").unwrap();
        assert_eq!(patches[0].node, b);
        assert_eq!(patches[0].edges.len(), 1);
        assert_eq!(patches[0].edges[0].0, c);
        assert_eq!(patches[0].edges[0].1, 5);
    }

    #[test]
    fn patched_snapshot_equals_cold_freeze() {
        // The planner's output fed through with_rows_replaced must be
        // indistinguishable from a full re-freeze of the new text.
        let old = inputs(&[("m", "hub a(10), b(20)\na x(10)\nb x(10)\nx y(5)\n")]);
        let new = inputs(&[("m", "hub a(10), b(20)\na x(10), y(50)\nb x(10)\nx y(5)\n")]);
        let frozen = frozen_of(&old);
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        let (patched, _) = frozen.with_rows_replaced(&patches);
        assert_eq!(patched, frozen_of(&new));
    }

    #[test]
    fn link_removal_and_symbolic_costs() {
        let old = inputs(&[("m", "a b(HOURLY), c(HOURLY*4)\nb c(10)\n")]);
        let new = inputs(&[("m", "a b(HOURLY)\nb c(10)\n")]);
        let frozen = frozen_of(&old);
        // c vanishes from a's row but stays mentioned via b's — the
        // mention walk must not count HOURLY as a host.
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        let (patched, _) = frozen.with_rows_replaced(&patches);
        assert_eq!(patched, frozen_of(&new));
    }

    #[test]
    fn new_name_falls_back() {
        let old = inputs(&[("m", "a b(10)\n")]);
        let new = inputs(&[("m", "a b(10), newhost(5)\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn vanished_mention_falls_back() {
        let old = inputs(&[("m", "a b(10)\na c(10)\n")]);
        let new = inputs(&[("m", "a b(10)\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn non_plain_edit_falls_back() {
        let old = inputs(&[("m", "a b(10)\nN = {a, b}(5)\n")]);
        let new = inputs(&[("m", "a b(10)\nN = {a, b}(7)\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn edit_touching_network_member_falls_back() {
        let old = inputs(&[("m", "a b(10)\nN = {b, c}(5)\nc d(1)\n")]);
        let new = inputs(&[("m", "a b(20)\nN = {b, c}(5)\nc d(1)\n")]);
        let frozen = frozen_of(&old);
        // b is a network member: its row carries fabricated edges the
        // scratch parse would lose.
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn edit_touching_private_name_falls_back() {
        let old = inputs(&[
            ("one", "a b(10)\n"),
            ("two", "private {b}\nb z(5)\nq b(9)\n"),
        ]);
        let mut new = old.clone();
        new[0].1 = "a b(20)\n".to_string();
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn surviving_statement_with_private_target_falls_back() {
        // The edit itself touches only clean names, but rebuilding q's
        // row would re-resolve its other statement's target `p`, which
        // is privately scoped in its own file.
        let old = inputs(&[
            ("one", "private {p}\np x(1)\nq p(5)\n"),
            ("two", "q r(10)\n"),
        ]);
        let mut new = old.clone();
        new[1].1 = "q r(20)\n".to_string();
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn reordered_first_mentions_fall_back() {
        let old = inputs(&[("m", "a b(10)\nc d(10)\n")]);
        let new = inputs(&[("m", "c d(10)\na b(10)\n")]);
        let frozen = frozen_of(&old);
        assert!(matches!(
            plan_delta(&old, &new, &frozen),
            DeltaPlan::Fallback(_)
        ));
    }

    #[test]
    fn multi_file_edit_patches_row_with_links_from_both_files() {
        // b's row is fed by statements in both files; only one file
        // changed, but the rebuilt row must include both.
        let old = inputs(&[("one", "a b(10)\nb c(10)\n"), ("two", "b d(10)\nd a(1)\n")]);
        let mut new = old.clone();
        new[0].1 = "a b(10)\nb c(7)\n".to_string();
        let frozen = frozen_of(&old);
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        let (patched, _) = frozen.with_rows_replaced(&patches);
        assert_eq!(patched, frozen_of(&new));
    }

    #[test]
    fn duplicate_links_keep_cheapest_like_cold_parse() {
        let old = inputs(&[("m", "a b(300)\na b(100)\nb a(5)\n")]);
        let new = inputs(&[("m", "a b(300)\na b(50)\nb a(5)\n")]);
        let frozen = frozen_of(&old);
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        let (patched, _) = frozen.with_rows_replaced(&patches);
        assert_eq!(patched, frozen_of(&new));
    }

    #[test]
    fn continuation_and_multiline_statements_split() {
        let stmts = split_statements("a b(5), \\\n  c(6)\nN = {x,\n y}(5)\n# note\n").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].starts_with("a b(5),"));
        assert!(stmts[1].contains('{') && stmts[1].contains('}'));
        assert!(split_statements("N = {a, b\n").is_none());
    }

    #[test]
    fn ignore_case_folds_mentions() {
        let old = inputs(&[("m", "A b(10)\nb c(5)\n")]);
        let new = inputs(&[("m", "a B(10)\nb c(5)\n")]);
        let pairs: Vec<(&str, &str)> = old.iter().map(|(f, t)| (f.as_str(), t.as_str())).collect();
        let mut g = pathalias_graph::Graph::with_ignore_case(true);
        for (f, t) in &pairs {
            pathalias_parser::parse_into(&mut g, f, t).unwrap();
        }
        g.validate();
        let frozen = g.freeze();
        // Case-only respelling is a no-op statement change for a
        // folding graph: the patch rebuilds a's row identically.
        let patches = expect_patch(plan_delta(&old, &new, &frozen));
        let (patched, _) = frozen.with_rows_replaced(&patches);
        assert_eq!(patched, frozen);
    }
}
