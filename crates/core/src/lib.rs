//! The pathalias pipeline: parse → build → freeze → map → print.
//!
//! "Pathalias runs in three phases: parse the input, build a shortest
//! path tree, and print the routes." This reproduction splits the run
//! into explicit [stages] — `Parsed → Built → Frozen → Mapped →
//! Printed` — each a value you can keep, re-enter, and time; the
//! freeze step snapshots the built graph into the immutable CSR form
//! the mapper traverses. [`Pathalias`] wires the stages behind one
//! builder-style API, with the original tool's options (`-l` local
//! host, `-i` ignore case, `-c` print costs, `-t` trace) plus the
//! reproduction's extras (heuristic configuration, second-best
//! mapping, phase timings).
//!
//! # Examples
//!
//! ```
//! use pathalias_core::Pathalias;
//!
//! let mut pa = Pathalias::new();
//! pa.options_mut().local = Some("unc".to_string());
//! pa.options_mut().with_costs = true;
//! pa.parse_str("map", "unc duke(500)\nduke phs(300)\n").unwrap();
//! let out = pa.run().unwrap();
//! assert!(out.rendered.contains("800\tphs\tduke!phs!%s"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
mod options;
mod pipeline;
pub mod stages;

pub use delta::{plan_delta, DeltaPlan};
pub use options::Options;
pub use pipeline::{Error, Output, Pathalias, PhaseTimings};
pub use stages::{Built, Frozen, Mapped, Parsed, Printed};

// Re-export the component crates' vocabulary so downstream users need
// only this crate.
pub use pathalias_graph::{
    dot, snapshot, stats, symbol_cost, symbol_table, unparse, ChIndex, Cost, Dir, EdgeId,
    EdgeShift, FrozenGraph, Graph, LinkFlags, NodeFlags, NodeId, ReverseGraph, RouteOp, RowPatch,
    SnapshotError, Warning, DEFAULT_COST, INF,
};
pub use pathalias_mapper::{
    format_trace, map, map_dual, map_dual_frozen, map_frozen, map_frozen_quadratic_readonly,
    map_frozen_readonly, map_quadratic_readonly, map_readonly, parallel, repair_frozen, CostModel,
    DualTree, Label, MapError, MapOptions, MapStats, ShortestPathTree,
};
pub use pathalias_parser::{parse, parse_files, parse_into, ParseError};
pub use pathalias_printer::diff::{diff as diff_routes, RouteChange};
pub use pathalias_printer::{
    compute_routes, render, update_routes, write_routes, PrintOptions, Route, RouteKind,
    RouteTable, Sort,
};
