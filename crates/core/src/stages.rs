//! The staged pipeline: `Parsed → Built → Frozen → Mapped → Printed`.
//!
//! The original driver was a monolith: parse, map, print, all in one
//! call. This module splits the run into *values* — each stage is a
//! struct you can keep, re-enter, and time:
//!
//! * [`Parsed`] — the named input texts, before any graph exists;
//! * [`Built`] — the mutable [`Graph`] produced by parsing (validated,
//!   warnings recorded);
//! * [`Frozen`] — the immutable CSR snapshot
//!   ([`pathalias_graph::FrozenGraph`]) plus everything later stages
//!   need from the build (first host, warnings). Cheap to share.
//! * [`Mapped`] — the shortest-path tree (and optional second-best
//!   dual) from one mapping run;
//! * [`Printed`] — the route table and rendered text.
//!
//! Re-entry is the point: holding a [`Frozen`] stage, you can map with
//! different options (a different `-l` host, other penalties, traces)
//! without re-parsing or re-freezing — this is how the server's hot
//! reload skips the expensive stages when only mapping options change,
//! and how multi-source validation fans out over one snapshot.
//!
//! # Examples
//!
//! ```
//! use pathalias_core::{Options, Parsed};
//!
//! let mut parsed = Parsed::new();
//! parsed.push_str("map", "unc duke(500)\nduke phs(300)\n");
//! let options = Options { local: Some("unc".into()), ..Options::default() };
//! let frozen = parsed.build(&options).unwrap().freeze();
//! // Map twice from the same snapshot — no re-parse, no re-freeze.
//! let out1 = frozen.map(&options).unwrap().print(&options);
//! let out2 = frozen.map(&options).unwrap().print(&options);
//! assert_eq!(out1.rendered, out2.rendered);
//! assert!(out1.rendered.contains("phs\tduke!phs!%s"));
//! ```

use crate::options::Options;
use crate::pipeline::Error;
use pathalias_graph::snapshot::{self, SnapshotError};
use pathalias_graph::{ChIndex, FrozenGraph, Graph, NodeId, ReverseGraph, Warning};
use pathalias_mapper::{map_dual_frozen, map_frozen, DualTree, MapOptions, ShortestPathTree};
use pathalias_parser::parse_into;
use pathalias_printer::{compute_routes, render, PrintOptions, RouteTable};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stage 1: named input texts, not yet parsed.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    inputs: Vec<(String, String)>,
}

impl Parsed {
    /// No inputs yet.
    pub fn new() -> Self {
        Parsed::default()
    }

    /// Adds one named input.
    pub fn push_str(&mut self, file: &str, text: &str) {
        self.inputs.push((file.to_string(), text.to_string()));
    }

    /// Reads and adds an input file from disk.
    pub fn push_file(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        self.inputs
            .push((path.to_string_lossy().into_owned(), text));
        Ok(())
    }

    /// Reads and adds several input files, in order — the shape every
    /// multi-file caller (CLI file lists, the server's map sources)
    /// wants. Stops at the first unreadable file.
    pub fn push_files(
        &mut self,
        paths: impl IntoIterator<Item = impl AsRef<Path>>,
    ) -> std::io::Result<()> {
        for path in paths {
            self.push_file(path)?;
        }
        Ok(())
    }

    /// The inputs accumulated so far.
    pub fn inputs(&self) -> &[(String, String)] {
        &self.inputs
    }

    /// Whether any input was added.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Stage 2: parses every input into a fresh graph (only
    /// `options.ignore_case` matters here) and validates it.
    pub fn build(&self, options: &Options) -> Result<Built, Error> {
        let t0 = Instant::now();
        let mut graph = Graph::with_ignore_case(options.ignore_case);
        let mut first_host = None;
        for (file, text) in &self.inputs {
            let before = graph.node_count();
            parse_into(&mut graph, file, text)?;
            if first_host.is_none() && graph.node_count() > before {
                first_host = Some(
                    graph
                        .node_ids()
                        .nth(before)
                        .expect("a node was just created"),
                );
            }
        }
        graph.validate();
        Ok(Built {
            graph,
            first_host,
            build_time: t0.elapsed(),
        })
    }
}

/// Stage 2: the mutable graph built by parsing.
#[derive(Debug)]
pub struct Built {
    graph: Graph,
    first_host: Option<NodeId>,
    /// Wall-clock time spent parsing and validating.
    pub build_time: Duration,
}

impl Built {
    /// The built graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The first host declared in the input (the default `-l`).
    pub fn first_host(&self) -> Option<NodeId> {
        self.first_host
    }

    /// Stage 3: freezes the graph into its immutable CSR snapshot.
    /// The `Built` stage survives, so a caller can re-freeze after
    /// further mutation.
    pub fn freeze(&self) -> Frozen {
        let t0 = Instant::now();
        Frozen {
            graph: Arc::new(self.graph.freeze()),
            reverse: None,
            ch: None,
            first_host: self.first_host,
            warnings: self.graph.warnings().to_vec(),
            freeze_time: t0.elapsed(),
        }
    }
}

/// Stage 3: the immutable snapshot every later stage works from.
#[derive(Debug, Clone)]
pub struct Frozen {
    graph: Arc<FrozenGraph>,
    reverse: Option<Arc<ReverseGraph>>,
    ch: Option<Arc<ChIndex>>,
    first_host: Option<NodeId>,
    warnings: Vec<Warning>,
    /// Wall-clock time spent freezing.
    pub freeze_time: Duration,
}

impl Frozen {
    /// Assembles the stage from parts (for drivers that build the
    /// graph incrementally rather than through [`Parsed::build`]).
    pub fn from_parts(
        graph: Arc<FrozenGraph>,
        first_host: Option<NodeId>,
        warnings: Vec<Warning>,
        freeze_time: Duration,
    ) -> Self {
        Frozen {
            graph,
            reverse: None,
            ch: None,
            first_host,
            warnings,
            freeze_time,
        }
    }

    /// Attaches a contraction hierarchy to the stage, so it is carried
    /// into snapshots ([`write_snapshot_all`](Frozen::write_snapshot_all))
    /// and picked up by serving engines. The hierarchy must have been
    /// built over this stage's graph — loaders and engines re-validate
    /// the pairing and drop a mismatched one rather than trust it.
    pub fn with_hierarchy(mut self, ch: Arc<ChIndex>) -> Self {
        self.ch = Some(ch);
        self
    }

    /// Re-enters the pipeline at the frozen stage from a PAGF1
    /// snapshot file ([`pathalias_graph::snapshot`]): parse, build and
    /// freeze are skipped entirely — this is the daemon cold-start
    /// path, and `freeze_time` records the (milliseconds-scale) load
    /// instead.
    pub fn from_snapshot(path: impl AsRef<Path>) -> Result<Frozen, SnapshotError> {
        let t0 = Instant::now();
        let (graph, reverse, ch) = snapshot::read_snapshot_all(path)?;
        // `Parsed::build` pins the default `-l` to the first node
        // parsing ever creates, which is node 0 of a non-empty pool;
        // node ids survive freezing and serialization, so the same
        // node is the default here.
        let first_host = graph.node_ids().next();
        Ok(Frozen {
            graph: Arc::new(graph),
            reverse: reverse.map(Arc::new),
            ch: ch.map(Arc::new),
            first_host,
            warnings: Vec::new(),
            freeze_time: t0.elapsed(),
        })
    }

    /// Writes the frozen graph to `path` as a PAGF1 snapshot,
    /// [`from_snapshot`](Frozen::from_snapshot)'s counterpart.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        snapshot::write_snapshot(&self.graph, path)
    }

    /// Writes the snapshot with the reverse-index section included, so
    /// a loader serving point-to-point queries skips the transpose
    /// rebuild (`pathalias freeze` writes this form). Reuses the
    /// stage's reverse index when it already has one.
    pub fn write_snapshot_with_reverse(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        match &self.reverse {
            Some(rev) => snapshot::write_snapshot_full(&self.graph, Some(rev), path),
            None => snapshot::write_snapshot_full(&self.graph, Some(&self.graph.reverse()), path),
        }
    }

    /// Writes the snapshot with every optional section the stage
    /// carries: the reverse index (built here when absent) and the
    /// contraction hierarchy when one was attached
    /// ([`with_hierarchy`](Frozen::with_hierarchy)) or loaded
    /// (`pathalias freeze --ch` writes this form).
    pub fn write_snapshot_all(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let ch = self.ch.as_deref();
        match &self.reverse {
            Some(rev) => snapshot::write_snapshot_all(&self.graph, Some(rev), ch, path),
            None => {
                snapshot::write_snapshot_all(&self.graph, Some(&self.graph.reverse()), ch, path)
            }
        }
    }

    /// Re-enters the frozen stage with the given rows replaced — the
    /// incremental-reload path, which patches the CSR in place of a
    /// full re-parse/build/freeze ([`crate::delta`] plans the patches).
    ///
    /// The reverse index and the contraction hierarchy are *dropped*,
    /// not patched: both are derived over the edge set, and serving a
    /// stale hierarchy across a cost change answers `PATH` queries
    /// wrongly. Callers rebuild what they need from the patched graph.
    pub fn with_rows_replaced(
        &self,
        patches: &[pathalias_graph::RowPatch],
    ) -> (Frozen, pathalias_graph::EdgeShift) {
        let t0 = Instant::now();
        let (graph, shift) = self.graph.with_rows_replaced(patches);
        (
            Frozen {
                graph: Arc::new(graph),
                reverse: None,
                ch: None,
                first_host: self.first_host,
                warnings: self.warnings.clone(),
                freeze_time: t0.elapsed(),
            },
            shift,
        )
    }

    /// The frozen graph.
    pub fn graph(&self) -> &Arc<FrozenGraph> {
        &self.graph
    }

    /// The reverse adjacency index, when the stage came from a
    /// snapshot that stored one. `None` means callers who need the
    /// transpose build it themselves ([`FrozenGraph::reverse`]).
    pub fn reverse_index(&self) -> Option<&Arc<ReverseGraph>> {
        self.reverse.as_ref()
    }

    /// The contraction hierarchy, when the stage came from a snapshot
    /// that stored one or one was attached with
    /// [`with_hierarchy`](Frozen::with_hierarchy). `None` means the
    /// point-to-point tier serves without the hierarchy fast path.
    pub fn hierarchy(&self) -> Option<&Arc<ChIndex>> {
        self.ch.as_ref()
    }

    /// Warnings recorded while building.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Resolves the mapping source: `options.local` by name, else the
    /// first declared host.
    pub fn resolve_local(&self, options: &Options) -> Result<NodeId, Error> {
        match &options.local {
            Some(name) => self
                .graph
                .id_of(name)
                .ok_or_else(|| Error::UnknownLocal(name.clone())),
            None => self.first_host.ok_or(Error::NoInput),
        }
    }

    /// Stage 4: maps from the local host (with back links, and the
    /// second-best dual when requested). Re-entrant: call as often as
    /// you like with different options.
    pub fn map(&self, options: &Options) -> Result<Mapped, Error> {
        let source = self.resolve_local(options)?;
        let map_opts = MapOptions {
            model: options.cost_model,
            trace: options
                .trace
                .iter()
                .filter_map(|n| self.graph.id_of(n))
                .collect(),
            exclude_domains: false,
            no_backlinks: options.no_backlinks,
        };
        let t0 = Instant::now();
        let (tree, dual) = if options.second_best {
            let dual = map_dual_frozen(&self.graph, source, &map_opts)?;
            (dual.primary.clone(), Some(dual))
        } else {
            (map_frozen(&self.graph, source, &map_opts)?, None)
        };
        Ok(Mapped {
            tree,
            dual,
            map_time: t0.elapsed(),
        })
    }
}

/// Stage 4: the result of one mapping run.
#[derive(Debug, Clone)]
pub struct Mapped {
    /// The shortest-path tree (the dual's primary when `-s` was set).
    pub tree: ShortestPathTree,
    /// The second-best (domain-free) result, when requested.
    pub dual: Option<DualTree>,
    /// Wall-clock time spent mapping.
    pub map_time: Duration,
}

impl Mapped {
    /// Stage 5: computes and renders the routes.
    pub fn print(&self, options: &Options) -> Printed {
        let t0 = Instant::now();
        let routes = compute_routes(&self.tree);
        let rendered = render(
            &routes,
            &PrintOptions {
                with_costs: options.with_costs,
                sort: options.sort,
                include_hidden: options.include_hidden,
            },
        );
        let unreachable = self
            .tree
            .unreachable()
            .into_iter()
            .map(|id| self.tree.frozen().name(id).to_string())
            .collect();
        Printed {
            routes,
            rendered,
            unreachable,
            print_time: t0.elapsed(),
        }
    }
}

/// Stage 5: the printable output.
#[derive(Debug, Clone)]
pub struct Printed {
    /// Every computed route (hidden entries included).
    pub routes: RouteTable,
    /// The rendered route list.
    pub rendered: String,
    /// Hosts that stayed unreachable even after back links.
    pub unreachable: Vec<String>,
    /// Wall-clock time spent printing.
    pub print_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAP: &str = "unc duke(500)\nduke phs(300)\n";

    fn parsed() -> Parsed {
        let mut p = Parsed::new();
        p.push_str("m", MAP);
        p
    }

    #[test]
    fn stages_compose() {
        let options = Options {
            local: Some("unc".into()),
            with_costs: true,
            ..Options::default()
        };
        let built = parsed().build(&options).unwrap();
        assert_eq!(built.graph().node_count(), 3);
        let frozen = built.freeze();
        let mapped = frozen.map(&options).unwrap();
        let printed = mapped.print(&options);
        assert!(printed.rendered.contains("800\tphs\tduke!phs!%s"));
    }

    #[test]
    fn frozen_stage_is_reentrant_with_new_options() {
        let options = Options::default();
        let frozen = parsed().build(&options).unwrap().freeze();
        // Same snapshot, two different mapping sources.
        let from_unc = Options {
            local: Some("unc".into()),
            ..Options::default()
        };
        let from_phs = Options {
            local: Some("phs".into()),
            ..Options::default()
        };
        let a = frozen.map(&from_unc).unwrap().print(&from_unc);
        let b = frozen.map(&from_phs).unwrap().print(&from_phs);
        assert!(a.routes.find("unc").unwrap().route == "%s");
        assert!(b.routes.find("phs").unwrap().route == "%s");
    }

    #[test]
    fn freezing_shares_not_copies() {
        let options = Options::default();
        let frozen = parsed().build(&options).unwrap().freeze();
        let mapped = frozen.map(&options).unwrap();
        assert!(
            Arc::ptr_eq(frozen.graph(), mapped.tree.frozen()),
            "no back links here, so the tree holds the same snapshot"
        );
    }

    #[test]
    fn unknown_local_and_no_input() {
        let options = Options {
            local: Some("nosuch".into()),
            ..Options::default()
        };
        let frozen = parsed().build(&options).unwrap().freeze();
        assert!(matches!(frozen.map(&options), Err(Error::UnknownLocal(_))));
        let empty = Parsed::new().build(&Options::default()).unwrap().freeze();
        assert!(matches!(
            empty.map(&Options::default()),
            Err(Error::NoInput)
        ));
    }

    #[test]
    fn built_survives_freezing_for_refreeze() {
        let options = Options::default();
        let built = parsed().build(&options).unwrap();
        let f1 = built.freeze();
        let f2 = built.freeze();
        assert_eq!(f1.graph().node_count(), f2.graph().node_count());
    }

    #[test]
    fn snapshot_reentry_prints_identically() {
        let options = Options {
            local: Some("unc".into()),
            with_costs: true,
            ..Options::default()
        };
        let frozen = parsed().build(&options).unwrap().freeze();
        let path =
            std::env::temp_dir().join(format!("pathalias-stages-{}.pagf", std::process::id()));
        frozen.write_snapshot(&path).unwrap();
        let loaded = Frozen::from_snapshot(&path).unwrap();
        assert_eq!(
            loaded.graph().as_ref(),
            frozen.graph().as_ref(),
            "loaded snapshot equals the in-memory freeze"
        );
        let a = frozen.map(&options).unwrap().print(&options);
        let b = loaded.map(&options).unwrap().print(&options);
        assert_eq!(a.rendered, b.rendered, "routes byte-identical");
        // The default `-l` (first declared host) also survives.
        let defaults = Options::default();
        let da = frozen.map(&defaults).unwrap().print(&defaults);
        let db = loaded.map(&defaults).unwrap().print(&defaults);
        assert_eq!(da.rendered, db.rendered);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn snapshot_load_failures_report() {
        let missing = std::env::temp_dir().join("definitely-missing.pagf");
        assert!(matches!(
            Frozen::from_snapshot(&missing),
            Err(SnapshotError::Io(_))
        ));
        let garbage =
            std::env::temp_dir().join(format!("pathalias-stages-bad-{}.pagf", std::process::id()));
        std::fs::write(&garbage, "not a snapshot").unwrap();
        assert!(matches!(
            Frozen::from_snapshot(&garbage),
            Err(SnapshotError::Corrupt(_))
        ));
        std::fs::remove_file(garbage).unwrap();
    }

    #[test]
    fn push_file_reads_disk() {
        let path =
            std::env::temp_dir().join(format!("pathalias-stages-{}.map", std::process::id()));
        std::fs::write(&path, MAP).unwrap();
        let mut p = Parsed::new();
        p.push_file(&path).unwrap();
        assert_eq!(p.inputs().len(), 1);
        assert!(!p.is_empty());
        let built = p.build(&Options::default()).unwrap();
        assert_eq!(built.graph().node_count(), 3);
        std::fs::remove_file(path).unwrap();
    }
}
