//! The pipeline driver: a thin convenience wrapper over the staged API.
//!
//! [`Pathalias`] accumulates parsed input incrementally (the CLI shape:
//! parse files as they arrive, then run), drives the
//! [stages](crate::stages) `Built → Frozen → Mapped → Printed`, and
//! caches the [`Frozen`] stage between runs — calling [`run`] twice
//! with different mapping or printing options re-enters the pipeline at
//! the map stage without re-parsing or re-freezing.
//!
//! [`run`]: Pathalias::run

use crate::options::Options;
use crate::stages::{Frozen, Mapped, Printed};
use pathalias_graph::{Graph, NodeId, Warning};
use pathalias_mapper::{DualTree, MapError, ShortestPathTree};
use pathalias_parser::{parse_into, ParseError};
use pathalias_printer::RouteTable;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fatal pipeline error.
#[derive(Debug)]
pub enum Error {
    /// Scanning or parsing failed.
    Parse(ParseError),
    /// Mapping failed.
    Map(MapError),
    /// The `-l` host does not appear in the input.
    UnknownLocal(String),
    /// `run` was called with no parsed input.
    NoInput,
    /// Reading an input file failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Map(e) => write!(f, "mapping error: {e}"),
            Error::UnknownLocal(h) => write!(f, "local host `{h}` not found in the input"),
            Error::NoInput => write!(f, "no input parsed"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<MapError> for Error {
    fn from(e: MapError) -> Self {
        Error::Map(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Wall-clock time spent in each phase (experiment E9 reports these;
/// the server exports the latest reload's timings over `METRICS`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Time spent parsing input.
    pub parse: Duration,
    /// Time spent building the graph from parsed input. The
    /// incremental [`Pathalias`] driver fuses building into parsing
    /// (`parse_into` grows the graph as text arrives), so it reports
    /// zero here; the staged `Parsed → Built` path (reloads, `freeze`)
    /// reports the build stage separately.
    pub build: Duration,
    /// Time spent freezing the built graph into its CSR snapshot.
    pub freeze: Duration,
    /// Time spent building the shortest-path tree.
    pub map: Duration,
    /// Time spent computing and rendering routes.
    pub print: Duration,
}

/// Everything a pipeline run produces.
#[derive(Debug)]
pub struct Output {
    /// Every computed route (hidden entries included).
    pub routes: RouteTable,
    /// The rendered route list.
    pub rendered: String,
    /// The shortest-path tree.
    pub tree: ShortestPathTree,
    /// The dual (second-best) result, when requested.
    pub dual: Option<DualTree>,
    /// Warnings accumulated while building the graph.
    pub warnings: Vec<Warning>,
    /// Hosts that stayed unreachable even after back links ("before
    /// reporting these hosts on the error output").
    pub unreachable: Vec<String>,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// The pipeline driver. Parse one or more inputs, then [`run`].
///
/// [`run`]: Pathalias::run
#[derive(Debug)]
pub struct Pathalias {
    options: Options,
    graph: Graph,
    parsed_any: bool,
    first_host: Option<NodeId>,
    parse_time: Duration,
    validated: bool,
    /// Cached frozen stage; dropped whenever new input arrives.
    frozen: Option<Frozen>,
}

impl Default for Pathalias {
    fn default() -> Self {
        Self::new()
    }
}

impl Pathalias {
    /// Creates a pipeline with default options.
    pub fn new() -> Self {
        Self::with_options(Options::default())
    }

    /// Creates a pipeline with the given options.
    pub fn with_options(options: Options) -> Self {
        let graph = Graph::with_ignore_case(options.ignore_case);
        Pathalias {
            options,
            graph,
            parsed_any: false,
            first_host: None,
            parse_time: Duration::ZERO,
            validated: false,
            frozen: None,
        }
    }

    /// The options (mutable, so callers can adjust between parses; note
    /// `ignore_case` only takes effect when set before the first
    /// parse).
    pub fn options_mut(&mut self) -> &mut Options {
        &mut self.options
    }

    /// Shared access to the options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parses one named input.
    pub fn parse_str(&mut self, file: &str, text: &str) -> Result<(), ParseError> {
        let t0 = Instant::now();
        let before = self.graph.node_count();
        parse_into(&mut self.graph, file, text)?;
        if self.first_host.is_none() && self.graph.node_count() > before {
            self.first_host = Some(
                self.graph
                    .node_ids()
                    .nth(before)
                    .expect("a node was just created"),
            );
        }
        self.parsed_any = true;
        // New input invalidates the snapshot and requires revalidation.
        self.frozen = None;
        self.validated = false;
        self.parse_time += t0.elapsed();
        Ok(())
    }

    /// Reads and parses an input file from disk.
    pub fn parse_file(&mut self, path: impl AsRef<Path>) -> Result<(), Error> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let name = path.to_string_lossy().into_owned();
        self.parse_str(&name, &text)?;
        Ok(())
    }

    /// The frozen stage for the input parsed so far, building (and
    /// caching) it on first use. Lets callers re-enter the staged API
    /// directly — e.g. to fan out multi-source mapping over the same
    /// snapshot [`run`](Pathalias::run) uses.
    pub fn frozen(&mut self) -> Result<&Frozen, Error> {
        if !self.parsed_any {
            return Err(Error::NoInput);
        }
        if self.frozen.is_none() {
            if !self.validated {
                self.graph.validate();
                self.validated = true;
            }
            let t0 = Instant::now();
            let snapshot = Arc::new(self.graph.freeze());
            self.frozen = Some(Frozen::from_parts(
                snapshot,
                self.first_host,
                self.graph.warnings().to_vec(),
                t0.elapsed(),
            ));
        }
        Ok(self.frozen.as_ref().expect("just built"))
    }

    /// Runs the freeze, map and print stages, consuming nothing: `run`
    /// may be called repeatedly (e.g. with different options), and only
    /// the stages invalidated by intervening changes are redone —
    /// repeat runs on unchanged input skip straight to mapping.
    pub fn run(&mut self) -> Result<Output, Error> {
        let options = self.options.clone();
        let parse_time = self.parse_time;
        let frozen = self.frozen()?;
        let mapped: Mapped = frozen.map(&options)?;
        let printed: Printed = mapped.print(&options);
        Ok(Output {
            routes: printed.routes,
            rendered: printed.rendered,
            tree: mapped.tree,
            dual: mapped.dual,
            warnings: frozen.warnings().to_vec(),
            unreachable: printed.unreachable,
            timings: PhaseTimings {
                parse: parse_time,
                build: Duration::ZERO,
                freeze: frozen.freeze_time,
                map: mapped.map_time,
                print: printed.print_time,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example input (OUTPUT section).
    const PAPER_1981: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";

    #[test]
    fn paper_output_reproduced_exactly() {
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("unc".into());
        pa.options_mut().with_costs = true;
        pa.parse_str("1981-map", PAPER_1981).unwrap();
        let out = pa.run().unwrap();
        let expected = "\
0\tunc\t%s
500\tduke\tduke!%s
800\tphs\tduke!phs!%s
3000\tresearch\tduke!research!%s
3300\tucbvax\tduke!research!ucbvax!%s
3395\tmit-ai\tduke!research!ucbvax!%s@mit-ai
3395\tstanford\tduke!research!ucbvax!%s@stanford
";
        assert_eq!(out.rendered, expected);
    }

    #[test]
    fn default_local_is_first_host() {
        let mut pa = Pathalias::new();
        pa.parse_str("m", "alpha beta(10)\n").unwrap();
        let out = pa.run().unwrap();
        let root = out.routes.find("alpha").unwrap();
        assert_eq!(root.route, "%s");
    }

    #[test]
    fn unknown_local_is_error() {
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("nosuch".into());
        pa.parse_str("m", "a b(1)\n").unwrap();
        assert!(matches!(pa.run(), Err(Error::UnknownLocal(_))));
    }

    #[test]
    fn no_input_is_error() {
        let mut pa = Pathalias::new();
        assert!(matches!(pa.run(), Err(Error::NoInput)));
    }

    #[test]
    fn ignore_case_merges_names() {
        let mut pa = Pathalias::with_options(Options {
            ignore_case: true,
            ..Options::default()
        });
        pa.parse_str("m", "Alpha beta(10)\nALPHA gamma(20)\n")
            .unwrap();
        let out = pa.run().unwrap();
        assert!(out.routes.find("gamma").is_some());
        assert_eq!(pa.graph().node_count(), 3);
    }

    #[test]
    fn unreachable_reported() {
        let mut pa = Pathalias::new();
        pa.options_mut().no_backlinks = true;
        pa.parse_str("m", "a b(1)\nisland remote(5)\n").unwrap();
        let out = pa.run().unwrap();
        assert!(out.unreachable.contains(&"island".to_string()));
        assert!(out.unreachable.contains(&"remote".to_string()));
    }

    #[test]
    fn warnings_surface() {
        let mut pa = Pathalias::new();
        pa.parse_str("m", "a b(10)\na b(20)\n").unwrap();
        let out = pa.run().unwrap();
        assert!(!out.warnings.is_empty());
    }

    #[test]
    fn second_best_included_when_requested() {
        let mut pa = Pathalias::new();
        pa.options_mut().second_best = true;
        pa.options_mut().cost_model.relay_penalty = 0;
        pa.parse_str(
            "m",
            "p caip(200), topaz(300)\ncaip .r.edu(200)\n.r.edu motown(25)\ntopaz motown(200)\n",
        )
        .unwrap();
        let out = pa.run().unwrap();
        let dual = out.dual.expect("dual requested");
        let motown = pa.graph().try_node("motown").unwrap();
        assert_eq!(dual.second_best(motown).unwrap().cost, 500);
    }

    #[test]
    fn run_twice_is_stable_and_reuses_the_snapshot() {
        let mut pa = Pathalias::new();
        pa.options_mut().with_costs = true;
        pa.parse_str("m", PAPER_1981).unwrap();
        pa.options_mut().local = Some("unc".into());
        let a = pa.run().unwrap();
        let b = pa.run().unwrap();
        assert_eq!(a.rendered, b.rendered);
        // The second run re-entered at the map stage: same Arc.
        assert!(Arc::ptr_eq(a.tree.frozen(), b.tree.frozen()));
    }

    #[test]
    fn new_input_invalidates_the_snapshot() {
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("a".into());
        pa.parse_str("one", "a b(10)\n").unwrap();
        let first = pa.run().unwrap();
        assert!(first.routes.find("c").is_none());
        pa.parse_str("two", "b c(10)\n").unwrap();
        let second = pa.run().unwrap();
        assert_eq!(second.routes.find("c").unwrap().route, "b!c!%s");
        assert!(!Arc::ptr_eq(first.tree.frozen(), second.tree.frozen()));
    }

    #[test]
    fn input_after_a_run_is_still_validated() {
        // A run between two parses must not leave later input
        // unvalidated: the second file's gateway-into-ungated construct
        // has to produce its warning.
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("a".into());
        pa.parse_str("one", "a b(10)\n").unwrap();
        assert!(pa.run().unwrap().warnings.is_empty());
        pa.parse_str("two", "OPEN = {x}\nh OPEN(10)\ngateway {OPEN!h}\na h(5)\n")
            .unwrap();
        let out = pa.run().unwrap();
        assert!(
            out.warnings
                .iter()
                .any(|w| matches!(w, Warning::GatewayIntoUngated { .. })),
            "warnings: {:?}",
            out.warnings
        );
    }

    #[test]
    fn local_may_name_a_private_only_host() {
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("bilbo".into());
        pa.parse_str("site", "private {bilbo}\nbilbo wiretap(25)\n")
            .unwrap();
        let out = pa.run().unwrap();
        assert_eq!(out.routes.find("wiretap").unwrap().route, "wiretap!%s");
    }

    #[test]
    fn multiple_files_accumulate() {
        let mut pa = Pathalias::new();
        pa.parse_str("one", "a b(10)\n").unwrap();
        pa.parse_str("two", "b c(10)\n").unwrap();
        pa.options_mut().local = Some("a".into());
        let out = pa.run().unwrap();
        assert_eq!(out.routes.find("c").unwrap().route, "b!c!%s");
    }

    #[test]
    fn timings_populated() {
        let mut pa = Pathalias::new();
        pa.parse_str("m", PAPER_1981).unwrap();
        pa.options_mut().local = Some("unc".into());
        let out = pa.run().unwrap();
        assert!(out.timings.parse > Duration::ZERO);
        assert!(out.timings.freeze > Duration::ZERO);
    }
}
