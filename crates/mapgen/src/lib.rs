//! Synthetic UUCP/ARPANET map generator.
//!
//! The paper's workloads were the real 1986 maps: "USENET maps contain
//! over 5,700 nodes and 20,000 links, while ARPANET, CSNET, and BITNET
//! add another 2,800 nodes and 8,000 links." Those data files are long
//! gone, so this crate generates a synthetic universe with the same
//! scale and shape (see DESIGN.md §5):
//!
//! * a sparse host graph (e ∝ v) with a hub backbone and power-law-ish
//!   leaf attachment, grouped into regional map files;
//! * fully connected networks represented as cliques-as-stars, a
//!   fraction using ARPANET `@` syntax, some gatewayed;
//! * domain trees with explicit gateway hosts;
//! * aliases, `private` name collisions, dead hosts and links, and
//!   `adjust` entries — every input construct the parser supports;
//! * a deliberate fraction of one-way leaf links, so the back-link pass
//!   has work to do, as it did on the real maps.
//!
//! Output is pathalias *input text*, so generated maps exercise the
//! scanner and parser exactly as the 1986 data did.
//!
//! # Examples
//!
//! ```
//! use pathalias_mapgen::{generate, MapSpec};
//!
//! let map = generate(&MapSpec::small(200, 42));
//! assert!(map.stats.hosts >= 200);
//! let g = map.parse().unwrap();
//! assert!(g.node_count() >= 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod names;
mod spec;

pub use generate::{generate, GenStats, GeneratedMap};
pub use names::HostNamer;
pub use spec::MapSpec;
