//! Generation parameters.

/// Parameters for a synthetic map.
#[derive(Debug, Clone)]
pub struct MapSpec {
    /// RNG seed; equal specs generate byte-identical maps.
    pub seed: u64,
    /// UUCP hosts (the USENET map proper).
    pub uucp_hosts: usize,
    /// Hosts that exist mainly as members of the big networks
    /// (ARPANET / CSNET / BITNET in the paper).
    pub net_hosts: usize,
    /// Mean explicit links per UUCP host (the paper's maps ran at
    /// roughly 20,000 links over 5,700 hosts ≈ 3.5).
    pub mean_degree: f64,
    /// Fraction of UUCP hosts that act as hubs (ihnp4, seismo, ...).
    pub hub_fraction: f64,
    /// Probability that a leaf's uplink has a matching return link;
    /// the remainder exercises the back-link pass.
    pub bidir_probability: f64,
    /// Number of fully connected networks (cliques as stars).
    pub networks: usize,
    /// Fraction of networks declared with ARPANET `@` syntax.
    pub arpa_net_fraction: f64,
    /// Number of top-level domains (each grows 1–3 subdomains).
    pub domains: usize,
    /// Fraction of hosts given an alias.
    pub alias_fraction: f64,
    /// Host-name collisions resolved with `private`.
    pub collisions: usize,
    /// Fraction of hosts marked `dead`.
    pub dead_fraction: f64,
    /// Number of regional map files to emit.
    pub files: usize,
}

impl MapSpec {
    /// The paper's 1986 scale: 5,700 + 2,800 hosts, ~28,000 links.
    pub fn usenet_1986(seed: u64) -> Self {
        MapSpec {
            seed,
            uucp_hosts: 5_700,
            net_hosts: 2_800,
            mean_degree: 3.5,
            hub_fraction: 0.02,
            bidir_probability: 0.85,
            networks: 24,
            arpa_net_fraction: 0.25,
            domains: 6,
            alias_fraction: 0.03,
            collisions: 12,
            dead_fraction: 0.01,
            files: 40,
        }
    }

    /// A small map for tests: `hosts` UUCP hosts plus a proportional
    /// everything-else.
    pub fn small(hosts: usize, seed: u64) -> Self {
        MapSpec {
            seed,
            uucp_hosts: hosts,
            net_hosts: hosts / 4,
            mean_degree: 3.0,
            hub_fraction: 0.05,
            bidir_probability: 0.85,
            networks: (hosts / 60).max(1),
            arpa_net_fraction: 0.25,
            domains: (hosts / 150).clamp(1, 6),
            alias_fraction: 0.05,
            collisions: (hosts / 100).min(8),
            dead_fraction: 0.01,
            files: (hosts / 50).clamp(1, 20),
        }
    }

    /// Expected total host count.
    pub fn total_hosts(&self) -> usize {
        self.uucp_hosts + self.net_hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale() {
        let s = MapSpec::usenet_1986(1);
        assert_eq!(s.total_hosts(), 8_500);
        // Mean degree matches 20,000 links over 5,700 hosts.
        assert!((s.mean_degree - 20_000.0 / 5_700.0).abs() < 0.1);
    }

    #[test]
    fn small_is_proportional() {
        let s = MapSpec::small(200, 7);
        assert_eq!(s.uucp_hosts, 200);
        assert!(s.networks >= 1);
        assert!(s.domains >= 1);
        assert!(s.files >= 1);
    }
}
