//! Era-plausible host-name generation.
//!
//! Real 1986 names were short, lower case, and frequently built from an
//! institution plus a machine flavour: `ucbvax`, `seismo`, `mcvax`,
//! `psuvax1`, `ihnp4`. The namer composes the same way and guarantees
//! uniqueness by numbering overflow.

/// Deterministic host-name generator.
#[derive(Debug, Clone)]
pub struct HostNamer {
    issued: usize,
}

const SITES: &[&str] = &[
    "unc", "duke", "psu", "ucb", "mit", "cmu", "osu", "nyu", "gatech", "utexas", "wisc", "umn",
    "uw", "ucla", "rice", "cornell", "rutgers", "ihn", "att", "bell", "dec", "sun", "hp", "ibm",
    "tek", "inter", "amd", "xerox", "rand", "sri", "bbn", "mc", "cwi", "kth", "inria", "ukc",
    "sydney", "waterloo", "toronto", "ubc", "yale", "brown", "uiuc", "purdue", "iastate", "ksu",
];

const FLAVOURS: &[&str] = &[
    "vax", "cad", "gvax", "uxa", "sun", "pyr", "dsp", "cs", "ee", "phys", "astro", "math", "lab",
    "eng", "sys", "net", "gw", "relay", "hub", "news", "mail",
];

impl HostNamer {
    /// A fresh namer.
    pub fn new() -> Self {
        HostNamer { issued: 0 }
    }

    /// The `i`-th name in the deterministic sequence.
    pub fn name_at(i: usize) -> String {
        let site = SITES[i % SITES.len()];
        let flavour = FLAVOURS[(i / SITES.len()) % FLAVOURS.len()];
        let round = i / (SITES.len() * FLAVOURS.len());
        if round == 0 {
            format!("{site}{flavour}")
        } else {
            format!("{site}{flavour}{round}")
        }
    }

    /// Issues the next unique host name.
    pub fn next_name(&mut self) -> String {
        let n = Self::name_at(self.issued);
        self.issued += 1;
        n
    }

    /// How many names have been issued.
    pub fn issued(&self) -> usize {
        self.issued
    }
}

impl Default for HostNamer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_legal() {
        let mut namer = HostNamer::new();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let n = namer.next_name();
            assert!(seen.insert(n.clone()), "duplicate name {n}");
            assert!(n
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
            assert!(!n.starts_with('.'), "host must not look like a domain");
            assert!(n.len() <= 14, "era names were short: {n}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(HostNamer::name_at(0), HostNamer::name_at(0));
        let mut a = HostNamer::new();
        let mut b = HostNamer::new();
        for _ in 0..100 {
            assert_eq!(a.next_name(), b.next_name());
        }
    }

    #[test]
    fn first_names_look_like_1986() {
        assert_eq!(HostNamer::name_at(0), "uncvax");
        let mut namer = HostNamer::new();
        let first: Vec<String> = (0..5).map(|_| namer.next_name()).collect();
        assert!(first.iter().all(|n| !n.contains(char::is_uppercase)));
    }
}
