//! The generator proper.

use crate::names::HostNamer;
use crate::spec::MapSpec;
use pathalias_graph::Graph;
use pathalias_parser::{parse_files, ParseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Counters describing a generated map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Hosts named (UUCP + network-only + aliases + collisions).
    pub hosts: usize,
    /// Explicit link declarations emitted.
    pub links: usize,
    /// Network declarations.
    pub networks: usize,
    /// Domain nodes (top-level + subdomains).
    pub domains: usize,
    /// Alias declarations.
    pub aliases: usize,
    /// Private name collisions.
    pub collisions: usize,
    /// Hosts marked dead.
    pub dead_hosts: usize,
    /// Links marked dead.
    pub dead_links: usize,
    /// Leaf hosts whose only links point outward (back-link fodder).
    pub one_way_leaves: usize,
}

/// A generated map: named input files plus statistics.
#[derive(Debug, Clone)]
pub struct GeneratedMap {
    /// `(file name, contents)` pairs, parseable with
    /// [`pathalias_parser::parse_files`].
    pub files: Vec<(String, String)>,
    /// Generation counters.
    pub stats: GenStats,
    /// A well-connected hub suitable as the mapping source.
    pub home: String,
}

impl GeneratedMap {
    /// Parses the generated files into a graph.
    pub fn parse(&self) -> Result<Graph, ParseError> {
        let refs: Vec<(&str, &str)> = self
            .files
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        parse_files(&refs)
    }

    /// All files concatenated (for scanner benchmarks). `file { ... }`
    /// markers preserve private scoping in the single stream.
    pub fn concatenated(&self) -> String {
        let mut out = String::new();
        for (name, text) in &self.files {
            let _ = writeln!(out, "file {{{name}}}");
            out.push_str(text);
        }
        out
    }

    /// Total size in bytes of the generated text.
    pub fn byte_size(&self) -> usize {
        self.files.iter().map(|(_, t)| t.len()).sum()
    }
}

/// Samples an era-plausible cost expression.
fn sample_cost(rng: &mut StdRng) -> String {
    match rng.random_range(0..10) {
        0 | 1 => "HOURLY".into(),
        2 | 3 => "EVENING".into(),
        4..=6 => "DAILY".into(),
        7 => "POLLED".into(),
        8 => format!("HOURLY*{}", rng.random_range(2..6)),
        _ => "DEMAND".into(),
    }
}

fn backbone_cost(rng: &mut StdRng) -> &'static str {
    match rng.random_range(0..3) {
        0 => "DEDICATED",
        1 => "DIRECT",
        _ => "DEMAND",
    }
}

/// Preferentially samples an attachment point among hosts `0..limit`,
/// biased strongly toward low indices (the hubs), giving the power-law
/// degree shape of the real maps.
fn preferential(rng: &mut StdRng, limit: usize) -> usize {
    let u: f64 = rng.random();
    ((u * u * u) * limit as f64) as usize
}

const TLDS: &[&str] = &[".edu", ".com", ".gov", ".mil", ".org", ".arpa"];
const BIG_NETS: &[&str] = &["ARPA", "CSNET", "BITNET"];

/// Generates a synthetic map from `spec`. Deterministic in the seed.
pub fn generate(spec: &MapSpec) -> GeneratedMap {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut stats = GenStats::default();
    let mut namer = HostNamer::new();

    let uucp: Vec<String> = (0..spec.uucp_hosts).map(|_| namer.next_name()).collect();
    let netonly: Vec<String> = (0..spec.net_hosts).map(|_| namer.next_name()).collect();
    stats.hosts = uucp.len() + netonly.len();

    let hubs = ((spec.uucp_hosts as f64 * spec.hub_fraction) as usize).max(2);

    // Per-host link targets: (target name, cost expr, prefix-op).
    let mut targets: Vec<Vec<(String, String, &'static str)>> = vec![Vec::new(); uucp.len()];
    let push_link = |targets: &mut Vec<Vec<(String, String, &'static str)>>,
                     stats: &mut GenStats,
                     from: usize,
                     to: &str,
                     cost: String| {
        targets[from].push((to.to_string(), cost, ""));
        stats.links += 1;
    };

    // Hub backbone: a ring plus random chords, all bidirectional.
    for h in 0..hubs {
        let next = (h + 1) % hubs;
        if next != h {
            push_link(
                &mut targets,
                &mut stats,
                h,
                &uucp[next],
                backbone_cost(&mut rng).into(),
            );
            push_link(
                &mut targets,
                &mut stats,
                next,
                &uucp[h],
                backbone_cost(&mut rng).into(),
            );
        }
        for _ in 0..rng.random_range(1..4usize) {
            let other = rng.random_range(0..hubs);
            if other != h {
                push_link(
                    &mut targets,
                    &mut stats,
                    h,
                    &uucp[other],
                    backbone_cost(&mut rng).into(),
                );
                push_link(
                    &mut targets,
                    &mut stats,
                    other,
                    &uucp[h],
                    backbone_cost(&mut rng).into(),
                );
            }
        }
    }

    // Leaves attach preferentially to earlier hosts.
    for i in hubs..uucp.len() {
        let k = match rng.random_range(0..10) {
            0..=3 => 1,
            4..=7 => 2,
            _ => 3,
        };
        let mut any_return = false;
        for _ in 0..k {
            let relay = preferential(&mut rng, i);
            if relay == i {
                continue;
            }
            push_link(
                &mut targets,
                &mut stats,
                i,
                &uucp[relay],
                sample_cost(&mut rng),
            );
            if rng.random_bool(spec.bidir_probability) {
                push_link(
                    &mut targets,
                    &mut stats,
                    relay,
                    &uucp[i],
                    sample_cost(&mut rng),
                );
                any_return = true;
            }
        }
        if !any_return {
            stats.one_way_leaves += 1;
        }
    }

    // Regional host files.
    let mut files: Vec<(String, String)> = Vec::new();
    let nfiles = spec.files.max(1);
    for f in 0..nfiles {
        let lo = f * uucp.len() / nfiles;
        let hi = (f + 1) * uucp.len() / nfiles;
        let mut text = format!("# synthetic usenet map, region {f}\n");
        for i in lo..hi {
            if targets[i].is_empty() {
                let _ = writeln!(text, "{}", uucp[i]);
                continue;
            }
            let list: Vec<String> = targets[i]
                .iter()
                .map(|(to, cost, op)| format!("{op}{to}({cost})"))
                .collect();
            let _ = writeln!(text, "{}\t{}", uucp[i], list.join(", "));
        }
        files.push((format!("region-{f:02}.map"), text));
    }

    // Networks. The first few are the "big" nets holding the
    // network-only hosts; the rest are regional cliques of UUCP hosts.
    let mut net_text = String::from("# networks\n");
    let mut big_members = netonly.iter().peekable();
    #[allow(clippy::needless_range_loop)] // `n` also names nets past BIG_NETS
    for n in 0..spec.networks {
        let name = if n < BIG_NETS.len() {
            BIG_NETS[n].to_string()
        } else {
            format!("NET-{n}")
        };
        let arpa_style = rng.random_bool(spec.arpa_net_fraction) || name == "ARPA";
        let mut members: Vec<String> = Vec::new();
        if n < BIG_NETS.len() && !netonly.is_empty() {
            // Split the network-only hosts across the big nets.
            let share = spec.net_hosts / BIG_NETS.len().min(spec.networks);
            for _ in 0..share {
                if let Some(m) = big_members.next() {
                    members.push(m.clone());
                }
            }
        }
        // Sprinkle UUCP hosts into every net.
        for _ in 0..rng.random_range(4..16usize) {
            members.push(uucp[rng.random_range(0..uucp.len())].clone());
        }
        members.dedup();
        let opc = if arpa_style { "@" } else { "" };
        let cost = if arpa_style { "DEDICATED" } else { "LOCAL" };
        let _ = writeln!(net_text, "{name} = {opc}{{{}}}({cost})", members.join(", "));
        stats.networks += 1;
        stats.links += 2 * members.len();

        if n < 2 {
            // Big nets demand gateways; a couple of hubs provide them.
            let _ = writeln!(net_text, "gated {{{name}}}");
            let gw_count = rng.random_range(2..4usize);
            let mut gws = Vec::new();
            for _ in 0..gw_count {
                let hub = rng.random_range(0..hubs);
                let _ = writeln!(net_text, "{} {name}(DEMAND)", uucp[hub]);
                stats.links += 1;
                gws.push(uucp[hub].clone());
            }
            // Also exercise the explicit gateway command on one of them.
            let _ = writeln!(net_text, "gateway {{{name}!{}}}", gws[0]);
        }
    }
    // Any big-net members not yet placed go to ARPA.
    let leftovers: Vec<String> = big_members.cloned().collect();
    if !leftovers.is_empty() {
        let _ = writeln!(net_text, "ARPA = @{{{}}}(DEDICATED)", leftovers.join(", "));
        stats.links += 2 * leftovers.len();
    }
    files.push(("networks.map".to_string(), net_text));

    // Domains: a tree per TLD with gateway hubs.
    let mut dom_text = String::from("# domain trees\n");
    let mut used_sub = std::collections::HashSet::new();
    #[allow(clippy::needless_range_loop)] // symmetry with the network loop above
    for d in 0..spec.domains.min(TLDS.len()) {
        let tld = TLDS[d];
        let sub_count = rng.random_range(1..4usize);
        let mut subs = Vec::new();
        for _ in 0..sub_count {
            // Unique subdomain labels across all TLDs.
            let mut label;
            loop {
                label = format!(
                    ".{}",
                    HostNamer::name_at(rng.random_range(0..4000usize) + 90_000)
                );
                if used_sub.insert(label.clone()) {
                    break;
                }
            }
            subs.push(label);
        }
        let _ = writeln!(dom_text, "{tld} = {{{}}}(0)", subs.join(", "));
        stats.domains += 1 + subs.len();
        stats.links += 2 * subs.len();
        for sub in &subs {
            let m = rng.random_range(2..8usize);
            let members: Vec<String> = (0..m)
                .map(|_| uucp[rng.random_range(0..uucp.len())].clone())
                .collect();
            let _ = writeln!(dom_text, "{sub} = {{{}}}(0)", members.join(", "));
            stats.links += 2 * members.len();
        }
        // One or two hub gateways per TLD.
        for _ in 0..rng.random_range(1..3usize) {
            let hub = rng.random_range(0..hubs);
            let _ = writeln!(dom_text, "{} {tld}(DEDICATED)", uucp[hub]);
            stats.links += 1;
        }
    }
    files.push(("domains.map".to_string(), dom_text));

    // Aliases.
    let mut admin_text = String::from("# aliases and administrivia\n");
    for host in &uucp {
        if rng.random_bool(spec.alias_fraction) {
            let _ = writeln!(admin_text, "{host} = {host}-aka");
            stats.aliases += 1;
            stats.hosts += 1;
        }
    }

    // Dead hosts and links, adjustments.
    for (i, host) in uucp.iter().enumerate().skip(hubs) {
        if rng.random_bool(spec.dead_fraction) {
            let _ = writeln!(admin_text, "dead {{{host}}}");
            stats.dead_hosts += 1;
        } else if rng.random_bool(spec.dead_fraction) {
            if let Some((to, _, _)) = targets[i].first() {
                let _ = writeln!(admin_text, "dead {{{host}!{to}}}");
                stats.dead_links += 1;
            }
        }
    }
    for _ in 0..(spec.uucp_hosts / 500).max(1) {
        let host = &uucp[rng.random_range(0..uucp.len())];
        let bias = rng.random_range(-200..400i64);
        let _ = writeln!(admin_text, "adjust {{{host}({bias})}}");
    }
    files.push(("admin.map".to_string(), admin_text));

    // Private collisions: reuse existing names in dedicated files.
    for c in 0..spec.collisions {
        let victim = &uucp[rng.random_range(0..uucp.len())];
        let neighbor = &uucp[rng.random_range(0..hubs.max(1))];
        let text = format!(
            "# local map with a colliding name\nprivate {{{victim}}}\n{victim}\t{neighbor}({})\n{neighbor}\t{victim}({})\n",
            sample_cost(&mut rng),
            sample_cost(&mut rng),
        );
        files.push((format!("site-{c:02}.map"), text));
        stats.collisions += 1;
        stats.hosts += 1;
        stats.links += 2;
    }

    GeneratedMap {
        files,
        stats,
        home: uucp[0].clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_mapper::{map, MapOptions};

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&MapSpec::small(300, 11));
        let b = generate(&MapSpec::small(300, 11));
        assert_eq!(a.files, b.files);
        assert_eq!(a.stats, b.stats);
        let c = generate(&MapSpec::small(300, 12));
        assert_ne!(a.files, c.files, "different seeds differ");
    }

    #[test]
    fn parses_cleanly() {
        let m = generate(&MapSpec::small(400, 5));
        let g = m.parse().expect("generated map must parse");
        assert!(g.node_count() >= 400);
        assert!(g.link_count() as f64 >= 400.0 * 2.0);
    }

    #[test]
    fn scale_matches_spec_roughly() {
        let spec = MapSpec::small(1000, 3);
        let m = generate(&spec);
        let g = m.parse().unwrap();
        // Node count: hosts + nets + domains + aliases + collisions.
        assert!(g.node_count() >= spec.total_hosts());
        // Sparse: e within a factor of two of v * mean_degree.
        let e = g.link_count() as f64;
        let target = spec.uucp_hosts as f64 * spec.mean_degree;
        assert!(
            e > target * 0.5 && e < target * 3.0,
            "links {e} vs target {target}"
        );
    }

    #[test]
    fn mostly_connected_from_home() {
        let m = generate(&MapSpec::small(500, 9));
        let g = m.parse().unwrap();
        let home = g.try_node(&m.home).unwrap();
        let tree = map(&g, home, &MapOptions::default()).unwrap();
        let mappable = g.iter_nodes().filter(|(_, n)| n.is_mappable()).count();
        let mapped = tree.mapped_count();
        assert!(
            mapped as f64 >= mappable as f64 * 0.9,
            "only {mapped}/{mappable} reachable"
        );
    }

    #[test]
    fn exercises_backlinks_and_commands() {
        let m = generate(&MapSpec::small(800, 21));
        assert!(m.stats.one_way_leaves > 0, "want back-link fodder");
        assert!(m.stats.aliases > 0);
        assert!(m.stats.collisions > 0);
        assert!(m.stats.networks > 0);
        assert!(m.stats.domains > 0);
        let text = m.concatenated();
        assert!(text.contains("gated {"));
        assert!(text.contains("gateway {"));
        assert!(text.contains("adjust {"));
        assert!(text.contains("private {"));
    }

    #[test]
    fn concatenated_stream_parses_with_file_markers() {
        let m = generate(&MapSpec::small(200, 2));
        let text = m.concatenated();
        let g = pathalias_parser::parse(&text).expect("concatenated stream parses");
        assert!(g.node_count() >= 200);
    }

    #[test]
    fn paper_scale_generates() {
        let spec = MapSpec::usenet_1986(1986);
        let m = generate(&spec);
        let g = m.parse().unwrap();
        assert!(g.node_count() >= 8_500, "nodes: {}", g.node_count());
        // The paper: ~28,000 links total across both map sets.
        let e = g.link_count();
        assert!((18_000..=60_000).contains(&e), "links: {e}");
        assert!(m.byte_size() > 100_000, "a real map is hundreds of kb");
    }
}
