//! Lock-free serving counters.
//!
//! Every counter is a relaxed [`AtomicU64`]: the numbers feed `STATS`
//! output and capacity planning, where cross-counter consistency does
//! not matter but query-path overhead does.
//!
//! Counters come in two scopes. [`Metrics`] is **per map**: a daemon
//! serving several namespaces (`--map-set`) keeps one instance per
//! map, so `STATS @name` reports that map's traffic alone.
//! [`ServerMetrics`] is **per daemon**: connections belong to the
//! process, not to any one map (a single connection may query every
//! namespace). `STATS` renders one map's counters and the daemon's
//! connection counters on one line, in the exact field order the PR-1
//! daemon used — a single-map daemon's `STATS` output is byte-identical
//! to what it always was.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-map counters: one instance per served namespace, shared by
/// every connection thread querying that map.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `QUERY` requests served against this map.
    pub queries: AtomicU64,
    /// Queries that found a route (exact or suffix).
    pub hits: AtomicU64,
    /// Queries with no route.
    pub misses: AtomicU64,
    /// Lookups answered from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Lookups that had to go to the backing table.
    pub cache_misses: AtomicU64,
    /// Queries that failed with a backend error (disk I/O, corrupt
    /// table) rather than a clean hit or miss.
    pub resolve_errors: AtomicU64,
    /// Successful `RELOAD`s of this map.
    pub reloads: AtomicU64,
    /// Failed `RELOAD`s (old table kept serving).
    pub reload_failures: AtomicU64,
    /// `PATH` answers certified by the contraction-hierarchy tier (the
    /// fast path won). Prometheus-only: `STATS` wire output is pinned
    /// to its PR-1 field set, so hierarchy counters show up in
    /// `METRICS` instead.
    pub path_ch_certified: AtomicU64,
    /// `PATH` queries that tried the hierarchy tier but fell back to
    /// the bidirectional (or oracle) search.
    pub path_ch_fallbacks: AtomicU64,
}

/// Daemon-wide counters: connection accounting and request hygiene,
/// shared by every connection regardless of which maps it queries.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Lines that did not parse as a request.
    pub bad_requests: AtomicU64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            bad_requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// `metrics.bump(&metrics.queries)` reads poorly; free functions keep
/// call sites short.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Decrements `counter` (used for the active-connection gauge).
pub fn drop_one(counter: &AtomicU64) {
    counter.fetch_sub(1, Ordering::Relaxed);
}

impl ServerMetrics {
    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

impl Metrics {
    /// One consistent-enough reading of every counter, rendered as the
    /// `STATS` payload: `key=value` pairs in the wire order clients
    /// have parsed since PR 1 (the connection-scoped fields come from
    /// `server`, everything else from this map).
    pub fn render(&self, server: &ServerMetrics, generation: u64, entries: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "queries={} hits={} misses={} cache_hits={} cache_misses={} resolve_errors={} \
             reloads={} reload_failures={} bad_requests={} connections={} \
             active_connections={} generation={generation} entries={entries} uptime_ms={}",
            g(&self.queries),
            g(&self.hits),
            g(&self.misses),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.resolve_errors),
            g(&self.reloads),
            g(&self.reload_failures),
            g(&server.bad_requests),
            g(&server.connections),
            g(&server.active_connections),
            server.uptime_ms(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_counter() {
        let m = Metrics::default();
        let s = ServerMetrics::default();
        bump(&m.queries);
        bump(&m.queries);
        bump(&m.hits);
        bump(&s.connections);
        let line = m.render(&s, 7, 42);
        assert!(line.contains("queries=2"), "{line}");
        assert!(line.contains("hits=1"), "{line}");
        assert!(line.contains("connections=1"), "{line}");
        assert!(line.contains("generation=7"), "{line}");
        assert!(line.contains("entries=42"), "{line}");
        assert!(line.contains("uptime_ms="), "{line}");
    }

    #[test]
    fn gauge_up_and_down() {
        let m = Metrics::default();
        let s = ServerMetrics::default();
        bump(&s.active_connections);
        bump(&s.active_connections);
        drop_one(&s.active_connections);
        assert!(m.render(&s, 0, 0).contains("active_connections=1"));
    }

    #[test]
    fn per_map_scopes_are_independent() {
        // Two maps share the daemon's connection counters but keep
        // their own query counters — the multi-map STATS contract.
        let a = Metrics::default();
        let b = Metrics::default();
        let s = ServerMetrics::default();
        bump(&a.queries);
        bump(&s.connections);
        assert!(a.render(&s, 0, 0).contains("queries=1"));
        assert!(b.render(&s, 0, 0).contains("queries=0"));
        assert!(b.render(&s, 0, 0).contains("connections=1"));
    }
}
