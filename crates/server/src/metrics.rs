//! Lock-free serving counters.
//!
//! Every counter is a relaxed [`AtomicU64`]: the numbers feed `STATS`
//! output and capacity planning, where cross-counter consistency does
//! not matter but query-path overhead does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counters shared by every connection thread.
#[derive(Debug)]
pub struct Metrics {
    /// `QUERY` requests served.
    pub queries: AtomicU64,
    /// Queries that found a route (exact or suffix).
    pub hits: AtomicU64,
    /// Queries with no route.
    pub misses: AtomicU64,
    /// Lookups answered from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Lookups that had to go to the backing table.
    pub cache_misses: AtomicU64,
    /// Queries that failed with a backend error (disk I/O, corrupt
    /// table) rather than a clean hit or miss.
    pub resolve_errors: AtomicU64,
    /// Successful `RELOAD`s.
    pub reloads: AtomicU64,
    /// Failed `RELOAD`s (old table kept serving).
    pub reload_failures: AtomicU64,
    /// Lines that did not parse as a request.
    pub bad_requests: AtomicU64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            resolve_errors: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// `metrics.bump(&metrics.queries)` reads poorly; free functions keep
/// call sites short.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Decrements `counter` (used for the active-connection gauge).
pub fn drop_one(counter: &AtomicU64) {
    counter.fetch_sub(1, Ordering::Relaxed);
}

impl Metrics {
    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// One consistent-enough reading of every counter, rendered as the
    /// `STATS` payload: sorted `key=value` pairs.
    pub fn render(&self, generation: u64, entries: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "queries={} hits={} misses={} cache_hits={} cache_misses={} resolve_errors={} \
             reloads={} reload_failures={} bad_requests={} connections={} \
             active_connections={} generation={generation} entries={entries} uptime_ms={}",
            g(&self.queries),
            g(&self.hits),
            g(&self.misses),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.resolve_errors),
            g(&self.reloads),
            g(&self.reload_failures),
            g(&self.bad_requests),
            g(&self.connections),
            g(&self.active_connections),
            self.uptime_ms(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_counter() {
        let m = Metrics::default();
        bump(&m.queries);
        bump(&m.queries);
        bump(&m.hits);
        let s = m.render(7, 42);
        assert!(s.contains("queries=2"), "{s}");
        assert!(s.contains("hits=1"), "{s}");
        assert!(s.contains("generation=7"), "{s}");
        assert!(s.contains("entries=42"), "{s}");
        assert!(s.contains("uptime_ms="), "{s}");
    }

    #[test]
    fn gauge_up_and_down() {
        let m = Metrics::default();
        bump(&m.active_connections);
        bump(&m.active_connections);
        drop_one(&m.active_connections);
        assert!(m.render(0, 0).contains("active_connections=1"));
    }
}
