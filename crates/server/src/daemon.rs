//! The daemon: listeners, connection threads, and request dispatch.
//!
//! One thread per connection, which is the right shape for this
//! protocol: mailers hold a connection open and stream queries down
//! it, so the thread count tracks the number of *clients*, not the
//! query rate, and each query is a hash probe against an immutable
//! snapshot — microseconds of work between blocking reads.
//!
//! `RELOAD` runs on the requesting connection's thread under a lock
//! (one rebuild at a time). Every other connection keeps answering
//! queries from the old snapshot until the atomic swap, so a reload
//! never drops or delays in-flight traffic.

use crate::cache::ShardedCache;
use crate::index::{resolve, RouteIndex, SwapCell};
use crate::metrics::{bump, drop_one, Metrics};
use crate::protocol::{parse_request, Request, Response, MAX_LINE};
use crate::reload::MapSource;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What to serve and where to listen.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where the route table comes from (initial load and `RELOAD`).
    pub source: MapSource,
    /// TCP listen address, e.g. `127.0.0.1:4175` (port 0 = ephemeral).
    /// `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path. `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// Total entries across the suffix-cache shards.
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
}

impl ServerConfig {
    /// A TCP-only config on an ephemeral loopback port with default
    /// cache sizing — what tests and examples want.
    pub fn ephemeral(source: MapSource) -> ServerConfig {
        ServerConfig {
            source,
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
            cache_capacity: 4096,
            cache_shards: 8,
        }
    }
}

/// Shared daemon state.
pub(crate) struct State {
    swap: SwapCell,
    cache: ShardedCache,
    metrics: Metrics,
    source: MapSource,
    /// Serializes rebuilds; queries never take it.
    reload_lock: Mutex<()>,
    /// The generation the next successful reload will publish.
    next_generation: AtomicU64,
    shutting_down: AtomicBool,
}

impl State {
    /// Handles one parsed request. Protocol-level; transport-agnostic.
    fn respond(self: &Arc<Self>, req: Request) -> Response {
        match req {
            Request::Query { host, user } => {
                let snapshot = self.swap.load();
                let user = user.as_deref().unwrap_or("%s");
                match resolve(&snapshot, &self.cache, &self.metrics, &host, user) {
                    Some(route) => Response::Route(route),
                    None => Response::NoRoute(host),
                }
            }
            Request::Stats => {
                let snapshot = self.swap.load();
                Response::Stats(
                    self.metrics
                        .render(snapshot.generation(), snapshot.entries()),
                )
            }
            Request::Health => {
                let snapshot = self.swap.load();
                Response::Health {
                    generation: snapshot.generation(),
                    entries: snapshot.entries(),
                }
            }
            Request::Reload => self.reload(),
            Request::Quit => Response::Bye,
        }
    }

    /// Rebuilds from the source and swaps the table in. Runs on the
    /// requesting connection's thread; other connections keep serving
    /// the old snapshot throughout.
    fn reload(self: &Arc<Self>) -> Response {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        match self.source.load() {
            Ok(db) => {
                let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
                let index = RouteIndex::new(db, generation);
                let entries = index.entries();
                // Order matters: moving the cache's floor first means a
                // cache entry can never outlive its table.
                self.cache.invalidate_to(generation);
                self.swap.store(index);
                bump(&self.metrics.reloads);
                Response::Reloaded {
                    generation,
                    entries,
                }
            }
            Err(e) => {
                bump(&self.metrics.reload_failures);
                Response::Failure(format!("reload failed: {e}"))
            }
        }
    }
}

/// Reads one `\n`-terminated line with a hard length cap. Returns
/// `Ok(None)` on clean EOF, `Err` with `InvalidData` when a peer sends
/// an over-long line.
fn read_bounded_line(reader: &mut impl BufRead, line: &mut String) -> io::Result<Option<()>> {
    line.clear();
    // Raw bytes, decoded once at the end: a multi-byte UTF-8 character
    // split across two buffer refills must not be mangled
    // chunk-by-chunk.
    let mut bytes = Vec::new();
    let mut terminated = false;
    loop {
        let (chunk_len, found_newline) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                break; // EOF
            }
            let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
                Some(i) => (&buf[..i], true),
                None => (buf, false),
            };
            if bytes.len() + chunk.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line too long",
                ));
            }
            bytes.extend_from_slice(chunk);
            (chunk.len(), found_newline)
        };
        reader.consume(chunk_len + usize::from(found_newline));
        if found_newline {
            terminated = true;
            break;
        }
    }
    if bytes.is_empty() && !terminated {
        return Ok(None); // clean EOF (a bare newline is a blank line, not EOF)
    }
    line.push_str(&String::from_utf8_lossy(&bytes));
    Ok(Some(()))
}

/// Streams that can be split into an independent reader and writer —
/// the shape both `TcpStream` and `UnixStream` share.
pub(crate) trait SplitStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same underlying socket.
    fn split(&self) -> io::Result<Self>;
}

impl SplitStream for TcpStream {
    fn split(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

#[cfg(unix)]
impl SplitStream for UnixStream {
    fn split(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}

/// Serves one connection until QUIT, EOF, error, or shutdown. The
/// reader is buffered across requests, so pipelined lines are never
/// dropped; every response is flushed before the next read.
fn serve_connection(state: Arc<State>, stream: impl SplitStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.split()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_bounded_line(&mut reader, &mut line) {
            Ok(Some(())) => {}
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                writeln!(writer, "{}", Response::BadRequest(e.to_string()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, quitting) = match parse_request(line.trim_end_matches(['\r', '\n'])) {
            Ok(req) => {
                let quitting = req == Request::Quit;
                (state.respond(req), quitting)
            }
            Err(why) => {
                bump(&state.metrics.bad_requests);
                (Response::BadRequest(why), false)
            }
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if quitting {
            return Ok(());
        }
    }
}

/// The daemon entry point.
pub struct Server;

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`]
/// (the CLI) explicitly.
pub struct ServerHandle {
    state: Arc<State>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the table (failing fast if the source is broken), binds
    /// the listeners, and starts accepting.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, StartError> {
        let db = config.source.load().map_err(StartError::Load)?;
        let state = Arc::new(State {
            swap: SwapCell::new(RouteIndex::new(db, 0)),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::default(),
            source: config.source,
            reload_lock: Mutex::new(()),
            next_generation: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
        });

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str()).map_err(StartError::Bind)?;
            tcp_addr = Some(listener.local_addr().map_err(StartError::Bind)?);
            let state = state.clone();
            accept_threads.push(std::thread::spawn(move || accept_tcp(state, listener)));
        }

        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &config.unix {
            // A previous daemon's socket file would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path).map_err(StartError::Bind)?;
            unix_path = Some(path.clone());
            let state = state.clone();
            accept_threads.push(std::thread::spawn(move || accept_unix(state, listener)));
        }
        #[cfg(not(unix))]
        if config.unix.is_some() {
            return Err(StartError::Bind(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )));
        }

        if tcp_addr.is_none() && unix_path.is_none() {
            return Err(StartError::Bind(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listener configured (need tcp and/or unix)",
            )));
        }

        Ok(ServerHandle {
            state,
            tcp_addr,
            unix_path,
            accept_threads,
        })
    }
}

fn accept_tcp(state: Arc<State>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                // One buffered write per response = one segment; with
                // nodelay set, neither Nagle nor delayed ACKs can
                // stall the request/response ping-pong.
                let _ = stream.set_nodelay(true);
                spawn_connection(state.clone(), stream);
            }
            Err(_) => continue,
        }
    }
}

#[cfg(unix)]
fn accept_unix(state: Arc<State>, listener: UnixListener) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => spawn_connection(state.clone(), stream),
            Err(_) => continue,
        }
    }
}

fn spawn_connection(state: Arc<State>, stream: impl SplitStream) {
    bump(&state.metrics.connections);
    bump(&state.metrics.active_connections);
    std::thread::spawn(move || {
        let _ = serve_connection(state.clone(), stream);
        drop_one(&state.metrics.active_connections);
    });
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum StartError {
    /// The initial table load failed.
    Load(crate::reload::LoadError),
    /// Binding a listener failed.
    Bind(io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Load(e) => write!(f, "loading route table: {e}"),
            StartError::Bind(e) => write!(f, "binding listener: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl ServerHandle {
    /// The bound TCP address (the actual port when 0 was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The serving generation and entry count, for status lines.
    pub fn table_info(&self) -> (u64, usize) {
        let snapshot = self.state.swap.load();
        (snapshot.generation(), snapshot.entries())
    }

    /// Blocks until the daemon stops accepting (i.e. forever, in
    /// daemon mode).
    pub fn wait(mut self) {
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        self.cleanup_socket();
    }

    /// Stops accepting, wakes the accept loops, and joins them.
    /// Established connections finish their current request and close
    /// on their next read.
    pub fn shutdown(mut self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept calls with a throwaway connection.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        self.cleanup_socket();
    }

    fn cleanup_socket(&self) {
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn state_for(text: &str) -> Arc<State> {
        let path = std::env::temp_dir().join(format!(
            "pathalias-daemon-test-{}-{:?}.routes",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::write(&path, text).unwrap();
        let db = pathalias_mailer::RouteDb::from_output(text).unwrap();
        Arc::new(State {
            swap: SwapCell::new(RouteIndex::new(db, 0)),
            cache: ShardedCache::new(64, 2),
            metrics: Metrics::default(),
            source: MapSource::Routes(path),
            reload_lock: Mutex::new(()),
            next_generation: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
        })
    }

    #[test]
    fn respond_covers_every_verb() {
        let state = state_for("seismo\tseismo!%s\n.edu\tseismo!%s\n");
        let q = |host: &str, user: Option<&str>| {
            state.respond(Request::Query {
                host: host.into(),
                user: user.map(str::to_string),
            })
        };
        assert_eq!(
            q("seismo", Some("rick")),
            Response::Route("seismo!rick".into())
        );
        assert_eq!(
            q("caip.rutgers.edu", Some("pleasant")),
            Response::Route("seismo!caip.rutgers.edu!pleasant".into())
        );
        assert_eq!(q("seismo", None), Response::Route("seismo!%s".into()));
        assert_eq!(q("nowhere", Some("u")), Response::NoRoute("nowhere".into()));
        assert!(matches!(state.respond(Request::Stats), Response::Stats(_)));
        assert_eq!(
            state.respond(Request::Health),
            Response::Health {
                generation: 0,
                entries: 2
            }
        );
        assert_eq!(state.respond(Request::Quit), Response::Bye);
        let reloaded = state.respond(Request::Reload);
        assert_eq!(
            reloaded,
            Response::Reloaded {
                generation: 1,
                entries: 2
            }
        );
    }

    #[test]
    fn reload_failure_keeps_old_table() {
        let state = state_for("a\ta!%s\n");
        // Sabotage the source file.
        if let MapSource::Routes(path) = &state.source {
            std::fs::write(path, "garbage-without-a-route\n").unwrap();
        }
        let resp = state.respond(Request::Reload);
        assert_eq!(resp.code(), 500);
        // Old table still serves.
        assert_eq!(
            state.respond(Request::Query {
                host: "a".into(),
                user: Some("u".into())
            }),
            Response::Route("a!u".into())
        );
        let snapshot = state.swap.load();
        assert_eq!(snapshot.generation(), 0);
    }

    #[test]
    fn bounded_line_reader() {
        let mut ok = BufReader::new(Cursor::new(b"QUERY a\n".to_vec()));
        let mut line = String::new();
        assert!(read_bounded_line(&mut ok, &mut line).unwrap().is_some());
        assert_eq!(line, "QUERY a");

        let mut eof = BufReader::new(Cursor::new(Vec::new()));
        assert!(read_bounded_line(&mut eof, &mut line).unwrap().is_none());

        // No trailing newline: still delivered at EOF.
        let mut tail = BufReader::new(Cursor::new(b"HEALTH".to_vec()));
        assert!(read_bounded_line(&mut tail, &mut line).unwrap().is_some());
        assert_eq!(line, "HEALTH");

        let mut long = BufReader::new(Cursor::new(vec![b'x'; MAX_LINE + 10]));
        let err = read_bounded_line(&mut long, &mut line).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A blank line is a line, not EOF.
        let mut blank = BufReader::new(Cursor::new(b"\nHEALTH\n".to_vec()));
        assert!(read_bounded_line(&mut blank, &mut line).unwrap().is_some());
        assert_eq!(line, "");
        assert!(read_bounded_line(&mut blank, &mut line).unwrap().is_some());
        assert_eq!(line, "HEALTH");
    }

    #[test]
    fn multibyte_utf8_survives_buffer_refills() {
        // A 1-byte BufReader forces every UTF-8 character to straddle
        // a refill boundary; the line must still decode intact.
        let text = "QUERY zürich.üñî.example häns\n";
        let mut tiny = BufReader::with_capacity(1, Cursor::new(text.as_bytes().to_vec()));
        let mut line = String::new();
        assert!(read_bounded_line(&mut tiny, &mut line).unwrap().is_some());
        assert_eq!(line, text.trim_end());
        assert!(
            !line.contains('\u{FFFD}'),
            "no replacement characters: {line}"
        );
    }
}
