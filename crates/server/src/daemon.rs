//! The daemon: listeners, the serving core, and request dispatch.
//!
//! On unix the serving core is a fixed pool of event-loop workers
//! (the `event` module): each worker multiplexes its connections —
//! thousands of mostly-idle mailers, in the C10K shape — over one
//! epoll/kqueue poller, with `SO_REUSEPORT` listener shards spreading
//! the accept load across workers and a UDP endpoint answering
//! single-shot queries. Other platforms keep the original
//! thread-per-connection path; the wire behaviour is byte-identical
//! either way.
//!
//! The daemon serves one or more named **maps** (real sites ran many
//! overlapping worlds: the regional UUCP map, the global map, local
//! overrides). Each namespace gets its own [`MapSource`], its own
//! [`Cached<BoxedResolver>`] snapshot + LRU
//! cache, its own counters, its own reload lock. Requests carry an
//! optional `@name` qualifier (protocol v2); unqualified requests go
//! to the configured default map, so a single-map daemon — and any v1
//! session — behaves byte-for-byte as it always has.
//!
//! `RELOAD [@name]` runs on the requesting connection's thread under
//! that map's lock (one rebuild per map at a time; different maps may
//! rebuild concurrently); every other connection keeps answering
//! queries from the old snapshot until the atomic swap, so a reload
//! never drops or delays in-flight traffic — on any map.
//!
//! Each connection starts in protocol v1 and may negotiate v2 with
//! `PROTO 2`, unlocking `MQUERY` (batched queries, one flush per
//! batch), `MAPS`/`@name` (namespaces), and `SHUTDOWN` (drain and
//! exit). A v1 session is byte-for-byte the PR-1 protocol.

use crate::index::Cached;
#[cfg(not(unix))]
use crate::metrics::drop_one;
use crate::metrics::{bump, Metrics, ServerMetrics};
#[cfg(not(unix))]
use crate::protocol::parse_request;
#[cfg(any(not(unix), test))]
use crate::protocol::{ProtoVersion, MAX_LINE};
use crate::protocol::{Request, Response};
use crate::reload::MapSource;
use crate::telemetry::{duration_ns, render_slow_entry, MapTelemetry};
use pathalias_mailer::{BoxedResolver, ResolveError, Resolver};
use pathalias_router::{PointToPoint, RouteError};
use pathalias_telemetry::{Logger, PromText, SlowEntry};
use std::io;
#[cfg(any(not(unix), test))]
use std::io::{BufRead, BufReader};
#[cfg(not(unix))]
use std::io::{BufWriter, Read, Write};
#[cfg(not(unix))]
use std::net::TcpStream;
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle connection thread wakes to check for shutdown.
/// Bounds how long a drain waits on a completely quiet connection.
#[cfg(not(unix))]
const IDLE_POLL: Duration = Duration::from_millis(200);

/// The namespace a single-source config serves under.
pub const DEFAULT_MAP_NAME: &str = "default";

/// A map name the wire format can carry: `@name` is one token and
/// `maps=a,b,c` is comma-joined, so names must be non-empty and free
/// of whitespace, `,` and `@`.
pub fn valid_map_name(name: &str) -> bool {
    !name.is_empty() && !name.contains(|c: char| c.is_whitespace() || c == ',' || c == '@')
}

/// What to serve and where to listen.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The named maps to serve, in declaration order (shown by
    /// `MAPS`). Names must satisfy [`valid_map_name`] and be unique.
    pub maps: Vec<(String, MapSource)>,
    /// The namespace unqualified requests go to; `None` means the
    /// first entry of `maps`.
    pub default_map: Option<String>,
    /// TCP listen address, e.g. `127.0.0.1:4175` (port 0 = ephemeral).
    /// `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path. `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// UDP listen address for single-shot datagram queries (port 0 =
    /// ephemeral). `None` disables the UDP endpoint. Unix only.
    pub udp: Option<String>,
    /// Event-loop worker threads (unix only). `None` means one per
    /// core, capped at 8.
    pub workers: Option<usize>,
    /// Total entries across one map's lookup-cache shards (each map
    /// gets its own cache of this size).
    pub cache_capacity: usize,
    /// Per-map overrides of [`ServerConfig::cache_capacity`], keyed by
    /// map name (`--map-set NAME=KIND:PATHS:cache=N`). Every name must
    /// be in `maps`; unnamed maps use the shared default.
    pub cache_capacities: Vec<(String, usize)>,
    /// Number of cache shards per map.
    pub cache_shards: usize,
    /// Poll every map's source files at this interval and reload a map
    /// when its fingerprint changes (`serve --watch`). `None` disables
    /// the watcher; `RELOAD` over the wire always works.
    pub watch: Option<Duration>,
    /// Where structured log lines go and above which level they are
    /// dropped. The `ephemeral*` constructors use [`Logger::off`] —
    /// an embedded or test server stays silent; the CLI daemon passes
    /// [`Logger::from_env`], which writes `key=value` lines to stderr
    /// at the `PATHALIAS_LOG` level.
    pub logger: Logger,
}

impl ServerConfig {
    /// A TCP-only config on an ephemeral loopback port with default
    /// cache sizing, serving `source` as the single map
    /// [`DEFAULT_MAP_NAME`] — what tests and examples want.
    pub fn ephemeral(source: MapSource) -> ServerConfig {
        ServerConfig::ephemeral_set(vec![(DEFAULT_MAP_NAME.to_string(), source)])
    }

    /// A TCP-only config on an ephemeral loopback port serving a whole
    /// map set; the first entry is the default namespace.
    pub fn ephemeral_set(maps: Vec<(String, MapSource)>) -> ServerConfig {
        ServerConfig {
            maps,
            default_map: None,
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
            udp: None,
            workers: None,
            cache_capacity: 4096,
            cache_capacities: Vec::new(),
            cache_shards: 8,
            watch: None,
            logger: Logger::off(),
        }
    }
}

/// One served namespace: a source, its serving snapshot + cache, and
/// its counters.
pub(crate) struct MapState {
    name: String,
    source: MapSource,
    cached: Cached<BoxedResolver>,
    metrics: Arc<Metrics>,
    /// Latency histograms, slow-query log, and reload phase timings
    /// for this map (`METRICS` / `SLOWLOG`).
    telemetry: MapTelemetry,
    /// The point-to-point engine (`PATH`), built from the *same*
    /// mapping run as the serving table so `PATH home x` can never
    /// disagree with `QUERY x`. `None` on table-only backends
    /// (`routes`, `padb`, `padb-mmap`), which have no frozen graph.
    /// Swapped together with the snapshot on reload; requests clone
    /// the `Arc` under a brief lock and search lock-free.
    engine: Mutex<Option<Arc<PointToPoint>>>,
    /// Serializes rebuilds of *this* map; queries never take it, and
    /// other maps reload independently.
    reload_lock: Mutex<()>,
}

impl MapState {
    /// The current engine, if this map's backend carries one.
    fn engine(&self) -> Option<Arc<PointToPoint>> {
        self.engine.lock().expect("engine lock poisoned").clone()
    }
}

/// Shared daemon state.
pub(crate) struct State {
    /// The served maps, in declaration order.
    maps: Vec<Arc<MapState>>,
    /// Index into `maps` of the default namespace.
    default_map: usize,
    pub(crate) server_metrics: Arc<ServerMetrics>,
    /// Structured logger shared by every daemon thread.
    pub(crate) logger: Logger,
    /// Source of per-connection ids for log correlation.
    pub(crate) next_conn_id: AtomicU64,
    shutting_down: AtomicBool,
    /// The event-loop workers' shared handles: per-worker gauges for
    /// `METRICS` and the wake pipes a shutdown pokes (filled in by
    /// `Server::start` before the workers spawn).
    #[cfg(unix)]
    workers: Mutex<Vec<Arc<crate::event::WorkerShared>>>,
    /// Where to poke a throwaway connection to wake the blocking
    /// accept loop (filled in by `Server::start` once bound).
    #[cfg(not(unix))]
    wake_tcp: Mutex<Option<SocketAddr>>,
}

impl State {
    /// Whether a shutdown or drain has begun.
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
    /// The namespace a request targets: the default map when
    /// unqualified, else a lookup by name. The map count is a handful,
    /// so a linear scan beats a hash map here.
    pub(crate) fn map_named(&self, name: Option<&str>) -> Result<&Arc<MapState>, Response> {
        match name {
            None => Ok(&self.maps[self.default_map]),
            Some(n) => self
                .maps
                .iter()
                .find(|m| m.name == n)
                .ok_or_else(|| Response::BadRequest(format!("unknown map `{n}`"))),
        }
    }

    /// Resolves one query against one map to its wire response.
    fn respond_query(&self, map: &MapState, host: &str, user: Option<&str>) -> Response {
        let user = user.unwrap_or("%s");
        match map.cached.resolve(host, user) {
            Ok(resolution) => Response::Route(resolution.route),
            Err(ResolveError::NoRoute) => Response::NoRoute(host.to_string()),
            Err(e) => Response::Failure(format!("resolve failed: {e}")),
        }
    }

    /// Resolves one `PATH` request against one map. `src == "*"` lists
    /// the one-hop predecessors of `dst` from the reverse index;
    /// otherwise it is a point-to-point bidirectional Dijkstra.
    /// `wire_name` is echoed in the response for qualified requests.
    fn respond_path(
        &self,
        map: &MapState,
        src: &str,
        dst: &str,
        wire_name: Option<String>,
    ) -> Response {
        let Some(engine) = map.engine() else {
            return Response::Failure(format!(
                "PATH unsupported on backend `{}`: no frozen graph",
                map.source.kind()
            ));
        };
        if src == "*" {
            return match engine.via(dst) {
                Ok(entries) => Response::Via {
                    map: wire_name,
                    dst: dst.to_string(),
                    entries: entries
                        .iter()
                        .map(|v| (engine.graph().name(v.node).to_string(), v.cost))
                        .collect(),
                },
                Err(RouteError::UnknownDest(_)) => Response::NoRoute(dst.to_string()),
                Err(e) => Response::Failure(format!("via failed: {e}")),
            };
        }
        match engine.route_with_stats(src, dst) {
            Ok((answer, stats)) => {
                if stats.tried_ch {
                    if stats.ch_certified {
                        bump(&map.metrics.path_ch_certified);
                    } else {
                        bump(&map.metrics.path_ch_fallbacks);
                    }
                }
                Response::Path {
                    map: wire_name,
                    cost: answer.cost,
                    hops: answer.hops,
                    route: answer.route,
                }
            }
            // Matches QUERY: an unreachable or unknown destination is
            // the expected negative answer, not a client error.
            Err(RouteError::NoRoute | RouteError::UnknownDest(_)) => {
                Response::NoRoute(dst.to_string())
            }
            // A bad *source* is the caller's mistake, not a missing
            // route: 400 with the engine's own message.
            Err(e @ (RouteError::UnknownSource(_) | RouteError::DeletedSource)) => {
                Response::BadRequest(e.to_string())
            }
        }
    }

    /// Handles one parsed request, producing the ordered response
    /// lines (one for most verbs, N for `MQUERY`). Protocol-level;
    /// transport-agnostic.
    pub(crate) fn respond(self: &Arc<Self>, req: Request) -> Vec<Response> {
        match req {
            Request::Query { map, host, user } => {
                let map = match self.map_named(map.as_deref()) {
                    Ok(m) => m,
                    Err(resp) => return vec![resp],
                };
                let start = Instant::now();
                let resp = self.respond_query(map, &host, user.as_deref());
                let ns = duration_ns(start.elapsed());
                map.telemetry.query.record(ns);
                map.telemetry
                    .observe_slow("QUERY", &map.name, &host, ns, outcome_of(&resp));
                vec![resp]
            }
            Request::MultiQuery { map, queries } => {
                let map = match self.map_named(map.as_deref()) {
                    Ok(m) => m,
                    // The batch contract is one response line per
                    // query token — a client counts on exactly N lines
                    // coming back. An unknown map must therefore fail
                    // every slot, not collapse the batch to one line.
                    Err(resp) => return queries.iter().map(|_| resp.clone()).collect(),
                };
                // Pin one snapshot for the whole batch: a reload
                // mid-batch must not make line 7 answer from a newer
                // table than line 3.
                let batch_start = Instant::now();
                let snapshot = map.cached.snapshot();
                let responses: Vec<Response> = queries
                    .iter()
                    .map(|(host, user)| {
                        let user = user.as_deref().unwrap_or("%s");
                        let start = Instant::now();
                        let resp = match map.cached.resolve_at(&snapshot, host, user) {
                            Ok(resolution) => Response::Route(resolution.route),
                            Err(ResolveError::NoRoute) => Response::NoRoute(host.clone()),
                            Err(e) => Response::Failure(format!("resolve failed: {e}")),
                        };
                        let ns = duration_ns(start.elapsed());
                        map.telemetry.mquery_item.record(ns);
                        map.telemetry.observe_slow(
                            "MQUERY",
                            &map.name,
                            host,
                            ns,
                            outcome_of(&resp),
                        );
                        resp
                    })
                    .collect();
                map.telemetry
                    .mquery_batch
                    .record(duration_ns(batch_start.elapsed()));
                responses
            }
            Request::Path { map, src, dst } => {
                let state = match self.map_named(map.as_deref()) {
                    Ok(m) => m,
                    Err(resp) => return vec![resp],
                };
                let start = Instant::now();
                let resp = self.respond_path(state, &src, &dst, map);
                let ns = duration_ns(start.elapsed());
                state.telemetry.path.record(ns);
                // The slow-log host column carries the whole question:
                // `src>dst` splits nowhere a key=value parser cares.
                let endpoints = format!("{src}>{dst}");
                state.telemetry.observe_slow(
                    "PATH",
                    &state.name,
                    &endpoints,
                    ns,
                    outcome_of(&resp),
                );
                vec![resp]
            }
            Request::Proto { version } => vec![Response::Proto { version }],
            Request::Stats { map } => {
                let state = match self.map_named(map.as_deref()) {
                    Ok(m) => m,
                    Err(resp) => return vec![resp],
                };
                let snapshot = state.cached.snapshot();
                let mut body = state.metrics.render(
                    &self.server_metrics,
                    snapshot.generation(),
                    snapshot.entries(),
                );
                body.push(' ');
                body.push_str(&state.cached.cache().render_shard_stats());
                // The qualified `map=<name>` echo renders in Display,
                // shared with Reloaded/Health; unqualified output is
                // byte-identical to the single-map daemon's.
                vec![Response::Stats { map, body }]
            }
            Request::Health { map } => {
                let state = match self.map_named(map.as_deref()) {
                    Ok(m) => m,
                    Err(resp) => return vec![resp],
                };
                let snapshot = state.cached.snapshot();
                vec![Response::Health {
                    map,
                    generation: snapshot.generation(),
                    entries: snapshot.entries(),
                }]
            }
            Request::Reload { map } => {
                // A draining daemon refuses rebuilds: a long rebuild on
                // this connection thread would only hold the drain open
                // for a table the process will never serve.
                if self.shutting_down.load(Ordering::SeqCst) {
                    return vec![Response::Failure(
                        "reload refused: daemon is shutting down".to_string(),
                    )];
                }
                let state = match self.map_named(map.as_deref()) {
                    Ok(m) => m.clone(),
                    Err(resp) => return vec![resp],
                };
                vec![self.reload(&state, map)]
            }
            Request::Maps => vec![Response::Maps {
                names: self.maps.iter().map(|m| m.name.clone()).collect(),
                default: self.maps[self.default_map].name.clone(),
            }],
            Request::Metrics { map } => {
                let only = match map.as_deref() {
                    None => None,
                    Some(n) => match self.maps.iter().position(|m| m.name == n) {
                        Some(i) => Some(i),
                        None => return vec![Response::BadRequest(format!("unknown map `{n}`"))],
                    },
                };
                let text = self.render_metrics(only);
                let mut responses = vec![Response::MetricsHeader {
                    lines: text.lines().count(),
                }];
                responses.extend(text.lines().map(|l| Response::Payload(l.to_string())));
                responses
            }
            Request::SlowLog { map } => {
                let selected: Vec<&Arc<MapState>> = match map.as_deref() {
                    None => self.maps.iter().collect(),
                    Some(n) => match self.maps.iter().find(|m| m.name == n) {
                        Some(m) => vec![m],
                        None => return vec![Response::BadRequest(format!("unknown map `{n}`"))],
                    },
                };
                // Merge across maps, slowest first — the per-map logs
                // are already worst-N, so this is a small sort.
                let mut entries: Vec<SlowEntry> = selected
                    .iter()
                    .flat_map(|m| m.telemetry.slowlog.snapshot())
                    .collect();
                entries.sort_by_key(|e| std::cmp::Reverse(e.latency_ns));
                let mut responses = vec![Response::SlowLogHeader {
                    entries: entries.len(),
                }];
                responses.extend(
                    entries
                        .iter()
                        .map(|e| Response::Payload(render_slow_entry(e))),
                );
                responses
            }
            Request::Shutdown => {
                self.begin_shutdown();
                vec![Response::ShuttingDown]
            }
            Request::Quit => vec![Response::Bye],
        }
    }

    /// Rebuilds one map from its source and swaps its table in. Runs
    /// on the requesting connection's thread; every connection keeps
    /// serving the old snapshot throughout, and other maps are
    /// untouched. `wire_name` is echoed in the response for qualified
    /// requests.
    pub(crate) fn reload(self: &Arc<Self>, map: &MapState, wire_name: Option<String>) -> Response {
        let _guard = map.reload_lock.lock().expect("reload lock poisoned");
        let start = Instant::now();
        match map.source.load_serving_timed() {
            Ok((resolver, engine, phases)) => {
                let entries = resolver.entries();
                let generation = map.cached.replace(resolver);
                // The engine follows the table: swapped only on
                // success, so a failed rebuild keeps PATH and QUERY
                // answering from the same old mapping run.
                *map.engine.lock().expect("engine lock poisoned") = engine;
                bump(&map.metrics.reloads);
                let ns = duration_ns(start.elapsed());
                map.telemetry.reload.record(ns);
                map.telemetry.set_reload_phases(phases);
                map.telemetry
                    .observe_slow("RELOAD", &map.name, "", ns, "ok");
                self.logger
                    .info("reload")
                    .field("map", &map.name)
                    .field("generation", generation)
                    .field("entries", entries)
                    .field("duration_ms", ns / 1_000_000)
                    .emit();
                Response::Reloaded {
                    map: wire_name,
                    generation,
                    entries,
                }
            }
            Err(e) => {
                bump(&map.metrics.reload_failures);
                let ns = duration_ns(start.elapsed());
                map.telemetry.reload.record(ns);
                map.telemetry
                    .observe_slow("RELOAD", &map.name, "", ns, "error");
                self.logger
                    .error("reload_failed")
                    .field("map", &map.name)
                    .field("error", &e)
                    .emit();
                Response::Failure(format!("reload failed: {e}"))
            }
        }
    }

    /// Renders the Prometheus text exposition served by `METRICS`.
    /// `only` restricts the per-map families to one namespace
    /// (`METRICS @name`); daemon-wide series always render.
    fn render_metrics(&self, only: Option<usize>) -> String {
        let maps: Vec<&Arc<MapState>> = match only {
            Some(i) => vec![&self.maps[i]],
            None => self.maps.iter().collect(),
        };
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = PromText::new();

        out.family(
            "pathalias_connections_total",
            "counter",
            "Connections accepted over the daemon's lifetime.",
        );
        out.sample(
            "pathalias_connections_total",
            &[],
            load(&self.server_metrics.connections),
        );
        out.family(
            "pathalias_bad_requests_total",
            "counter",
            "Request lines that did not parse.",
        );
        out.sample(
            "pathalias_bad_requests_total",
            &[],
            load(&self.server_metrics.bad_requests),
        );
        out.family(
            "pathalias_active_connections",
            "gauge",
            "Connections currently open.",
        );
        out.sample(
            "pathalias_active_connections",
            &[],
            load(&self.server_metrics.active_connections),
        );
        // Per-worker series from the event-loop core. Absent when no
        // workers run (unit-test states, non-unix platforms), so the
        // exposition elsewhere is unchanged.
        #[cfg(unix)]
        {
            let workers = self.workers.lock().expect("workers lock poisoned").clone();
            if !workers.is_empty() {
                out.family(
                    "pathalias_connections_open",
                    "gauge",
                    "Connections currently owned by each event-loop worker.",
                );
                for (i, w) in workers.iter().enumerate() {
                    let worker = i.to_string();
                    out.sample(
                        "pathalias_connections_open",
                        &[("worker", &worker)],
                        load(&w.open_connections),
                    );
                }
                out.family(
                    "pathalias_worker_pending_events",
                    "gauge",
                    "Readiness events delivered by each worker's most recent poll.",
                );
                for (i, w) in workers.iter().enumerate() {
                    let worker = i.to_string();
                    out.sample(
                        "pathalias_worker_pending_events",
                        &[("worker", &worker)],
                        load(&w.pending_events),
                    );
                }
                out.family(
                    "pathalias_udp_datagrams_total",
                    "counter",
                    "UDP request datagrams answered by each worker.",
                );
                for (i, w) in workers.iter().enumerate() {
                    let worker = i.to_string();
                    out.sample(
                        "pathalias_udp_datagrams_total",
                        &[("worker", &worker)],
                        load(&w.udp_datagrams),
                    );
                }
            }
        }
        out.family(
            "pathalias_uptime_seconds",
            "gauge",
            "Seconds since the daemon started.",
        );
        out.sample_f64(
            "pathalias_uptime_seconds",
            &[],
            self.server_metrics.uptime_ms() as f64 / 1000.0,
        );

        // Per-map counter families, samples grouped under one
        // HELP/TYPE header per family as the exposition format wants.
        type Get = fn(&Metrics) -> u64;
        let counters: [(&str, &str, Get); 10] = [
            (
                "pathalias_queries_total",
                "Queries resolved against this map (QUERY and MQUERY items).",
                |m| m.queries.load(Ordering::Relaxed),
            ),
            ("pathalias_hits_total", "Queries that found a route.", |m| {
                m.hits.load(Ordering::Relaxed)
            }),
            ("pathalias_misses_total", "Queries with no route.", |m| {
                m.misses.load(Ordering::Relaxed)
            }),
            (
                "pathalias_cache_hits_total",
                "Lookups answered from the LRU cache.",
                |m| m.cache_hits.load(Ordering::Relaxed),
            ),
            (
                "pathalias_cache_misses_total",
                "Lookups that went to the backing table.",
                |m| m.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "pathalias_resolve_errors_total",
                "Queries that failed with a backend error.",
                |m| m.resolve_errors.load(Ordering::Relaxed),
            ),
            (
                "pathalias_reloads_total",
                "Successful reloads of this map.",
                |m| m.reloads.load(Ordering::Relaxed),
            ),
            (
                "pathalias_reload_failures_total",
                "Failed reloads (the old table kept serving).",
                |m| m.reload_failures.load(Ordering::Relaxed),
            ),
            (
                "pathalias_path_ch_certified_total",
                "PATH answers certified by the contraction-hierarchy tier.",
                |m| m.path_ch_certified.load(Ordering::Relaxed),
            ),
            (
                "pathalias_path_ch_fallbacks_total",
                "PATH queries that tried the hierarchy tier but fell back.",
                |m| m.path_ch_fallbacks.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, get) in counters {
            out.family(name, "counter", help);
            for m in &maps {
                out.sample(name, &[("map", &m.name)], get(&m.metrics));
            }
        }

        out.family(
            "pathalias_generation",
            "gauge",
            "Table generation now serving.",
        );
        for m in &maps {
            out.sample(
                "pathalias_generation",
                &[("map", &m.name)],
                m.cached.snapshot().generation(),
            );
        }
        out.family(
            "pathalias_entries",
            "gauge",
            "Entries in the serving table.",
        );
        for m in &maps {
            out.sample(
                "pathalias_entries",
                &[("map", &m.name)],
                m.cached.snapshot().entries() as u64,
            );
        }

        type ShardGet = fn(&crate::cache::ShardStats) -> u64;
        let shard_families: [(&str, &str, ShardGet); 3] = [
            (
                "pathalias_cache_shard_hits_total",
                "Per-shard LRU cache hits.",
                |s| s.hits,
            ),
            (
                "pathalias_cache_shard_misses_total",
                "Per-shard LRU cache misses.",
                |s| s.misses,
            ),
            (
                "pathalias_cache_shard_evictions_total",
                "Per-shard LRU cache evictions.",
                |s| s.evictions,
            ),
        ];
        for (name, help, get) in shard_families {
            out.family(name, "counter", help);
            for m in &maps {
                for (i, stats) in m.cached.cache().shard_stats().iter().enumerate() {
                    let shard = i.to_string();
                    out.sample(name, &[("map", &m.name), ("shard", &shard)], get(stats));
                }
            }
        }

        out.family(
            "pathalias_request_latency_seconds",
            "histogram",
            "Request latency by verb (mquery_batch is one whole MQUERY line, \
             mquery_item one host within it, reload a table rebuild).",
        );
        for m in &maps {
            let verbs = [
                ("query", &m.telemetry.query),
                ("mquery_batch", &m.telemetry.mquery_batch),
                ("mquery_item", &m.telemetry.mquery_item),
                ("path", &m.telemetry.path),
                ("reload", &m.telemetry.reload),
            ];
            for (verb, histogram) in verbs {
                out.histogram(
                    "pathalias_request_latency_seconds",
                    &[("map", &m.name), ("verb", verb)],
                    &histogram.snapshot(),
                );
            }
        }

        out.family(
            "pathalias_reload_phase_seconds",
            "gauge",
            "Pipeline phase durations of the latest reload (zero = stage-cache hit; \
             absent until the first reload).",
        );
        for m in &maps {
            if let Some(t) = m.telemetry.reload_phases() {
                let phases = [
                    ("parse", t.parse),
                    ("build", t.build),
                    ("freeze", t.freeze),
                    ("map", t.map),
                    ("print", t.print),
                ];
                for (phase, duration) in phases {
                    out.sample_f64(
                        "pathalias_reload_phase_seconds",
                        &[("map", &m.name), ("phase", phase)],
                        duration.as_secs_f64(),
                    );
                }
            }
        }

        out.finish()
    }

    /// Flags shutdown and wakes the serving loops so they can observe
    /// it. Idempotent; callable from any serving thread (the
    /// `SHUTDOWN` verb) or from the handle.
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            self.logger.info("shutdown").emit();
        }
        #[cfg(unix)]
        for worker in self.workers.lock().expect("workers lock poisoned").iter() {
            worker.wake_up();
        }
        #[cfg(not(unix))]
        if let Some(addr) = *self.wake_tcp.lock().expect("wake lock poisoned") {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// The slow-log outcome tag for a response: `ok` for a route, the
/// expected `no_route` for a 404, `error` for anything else.
fn outcome_of(resp: &Response) -> &'static str {
    match resp {
        Response::Route(_) | Response::Path { .. } | Response::Via { .. } => "ok",
        Response::NoRoute(_) => "no_route",
        _ => "error",
    }
}

/// How one attempt to read a line ended.
#[cfg(any(not(unix), test))]
#[derive(Debug)]
enum LineRead {
    /// A complete line was delivered.
    Line,
    /// Clean end of stream.
    Eof,
    /// The read timed out with no complete line yet; any partial bytes
    /// stay in `partial` and the caller may retry after checking for
    /// shutdown.
    Idle,
}

/// Reads one `\n`-terminated line with a hard length cap. Partial
/// bytes accumulate in `partial` across `Idle` returns (read
/// timeouts), so a slow sender is never corrupted by the shutdown
/// poll. `Err` with `InvalidData` means the peer sent an over-long
/// line.
#[cfg(any(not(unix), test))]
fn read_bounded_line(
    reader: &mut impl BufRead,
    partial: &mut Vec<u8>,
    line: &mut String,
) -> io::Result<LineRead> {
    line.clear();
    // Raw bytes, decoded once at the end: a multi-byte UTF-8 character
    // split across two buffer refills must not be mangled
    // chunk-by-chunk.
    let mut terminated = false;
    loop {
        let (chunk_len, found_newline) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineRead::Idle);
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                break; // EOF
            }
            let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
                Some(i) => (&buf[..i], true),
                None => (buf, false),
            };
            if partial.len() + chunk.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line too long",
                ));
            }
            partial.extend_from_slice(chunk);
            (chunk.len(), found_newline)
        };
        reader.consume(chunk_len + usize::from(found_newline));
        if found_newline {
            terminated = true;
            break;
        }
    }
    if partial.is_empty() && !terminated {
        return Ok(LineRead::Eof); // clean EOF (a bare newline is a blank line, not EOF)
    }
    line.push_str(&String::from_utf8_lossy(partial));
    partial.clear();
    Ok(LineRead::Line)
}

/// Streams that can be split into an independent reader and writer —
/// the shape blocking connection threads need.
#[cfg(not(unix))]
pub(crate) trait SplitStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same underlying socket.
    fn split(&self) -> io::Result<Self>;
    /// Bounds each blocking read so the thread can poll for shutdown.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

#[cfg(not(unix))]
impl SplitStream for TcpStream {
    fn split(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

/// Serves one connection until QUIT, EOF, error, or shutdown. The
/// reader is buffered across requests, so pipelined lines are never
/// dropped; responses for one request line (one for most verbs, N for
/// `MQUERY`) are written together and flushed once.
#[cfg(not(unix))]
fn serve_connection(state: Arc<State>, stream: impl SplitStream, conn_id: u64) -> io::Result<()> {
    // Bounded reads let an idle connection notice a drain without a
    // request arriving; partial request bytes survive the poll.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut reader = BufReader::new(stream.split()?);
    let mut writer = BufWriter::new(stream);
    let mut partial = Vec::new();
    let mut line = String::new();
    let mut proto = ProtoVersion::V1;
    loop {
        match read_bounded_line(&mut reader, &mut partial, &mut line) {
            Ok(LineRead::Line) => {}
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::Idle) => {
                // Only drop an *idle* connection on drain; one with a
                // request in flight gets to finish sending it.
                if state.shutting_down.load(Ordering::SeqCst) && partial.is_empty() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                state
                    .logger
                    .warn("bad_request")
                    .field("conn", conn_id)
                    .field("reason", &e)
                    .emit();
                writeln!(writer, "{}", Response::BadRequest(e.to_string()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let (responses, closing) = match parse_request(line.trim_end_matches(['\r', '\n']), proto) {
            Ok(req) => {
                let closing = matches!(req, Request::Quit | Request::Shutdown);
                if let Request::Proto { version } = req {
                    proto = version;
                }
                (state.respond(req), closing)
            }
            Err(why) => {
                bump(&state.server_metrics.bad_requests);
                state
                    .logger
                    .warn("bad_request")
                    .field("conn", conn_id)
                    .field("reason", &why)
                    .emit();
                (vec![Response::BadRequest(why)], false)
            }
        };
        for response in &responses {
            writeln!(writer, "{response}")?;
        }
        writer.flush()?;
        if closing {
            return Ok(());
        }
    }
}

/// The daemon entry point.
pub struct Server;

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`ServerHandle::shutdown`] / [`ServerHandle::drain`] (tests)
/// or [`ServerHandle::wait`] (the CLI) explicitly.
pub struct ServerHandle {
    state: Arc<State>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    udp_addr: Option<SocketAddr>,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads every map's table (failing fast if any source is broken),
    /// binds the listeners, and starts accepting.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, StartError> {
        if config.maps.is_empty() {
            return Err(StartError::Config("no maps configured".to_string()));
        }
        for (name, _) in &config.maps {
            if !valid_map_name(name) {
                return Err(StartError::Config(format!(
                    "invalid map name `{name}` (must be non-empty, without whitespace, `,` or `@`)"
                )));
            }
            if config.maps.iter().filter(|(n, _)| n == name).count() > 1 {
                return Err(StartError::Config(format!("duplicate map name `{name}`")));
            }
        }
        for (name, _) in &config.cache_capacities {
            if !config.maps.iter().any(|(n, _)| n == name) {
                return Err(StartError::Config(format!(
                    "cache capacity names unknown map `{name}`"
                )));
            }
        }
        let default_map = match &config.default_map {
            None => 0,
            Some(name) => config
                .maps
                .iter()
                .position(|(n, _)| n == name)
                .ok_or_else(|| {
                    StartError::Config(format!("default map `{name}` is not in the map set"))
                })?,
        };

        // Fingerprint the watched files *before* the initial load: a
        // rewrite racing the (possibly long) load must read as a
        // change afterwards, not be absorbed into the baseline.
        let watch_baselines: Option<Vec<Option<crate::reload::Fingerprint>>> =
            config.watch.map(|_| {
                config
                    .maps
                    .iter()
                    .map(|(_, source)| crate::reload::fingerprint(&source.watch_paths()).ok())
                    .collect()
            });

        let logger = config.logger.clone();
        let server_metrics = Arc::new(ServerMetrics::default());
        let mut maps = Vec::with_capacity(config.maps.len());
        for (name, source) in config.maps {
            let (resolver, engine, _) =
                source
                    .load_serving_timed()
                    .map_err(|error| StartError::Load {
                        map: name.clone(),
                        error,
                    })?;
            logger
                .info("map_loaded")
                .field("map", &name)
                .field("source", source.kind())
                .field("entries", resolver.entries())
                .emit();
            let metrics = Arc::new(Metrics::default());
            let capacity = config
                .cache_capacities
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(config.cache_capacity, |(_, c)| *c);
            maps.push(Arc::new(MapState {
                name,
                source,
                cached: Cached::new(resolver, capacity, config.cache_shards, metrics.clone()),
                metrics,
                telemetry: MapTelemetry::new(),
                engine: Mutex::new(engine),
                reload_lock: Mutex::new(()),
            }));
        }

        let state = Arc::new(State {
            maps,
            default_map,
            server_metrics,
            logger,
            next_conn_id: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            #[cfg(unix)]
            workers: Mutex::new(Vec::new()),
            #[cfg(not(unix))]
            wake_tcp: Mutex::new(None),
        });

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        let mut unix_path = None;
        let mut udp_addr = None;

        #[cfg(unix)]
        {
            use std::os::unix::net::UnixStream;

            let workers_n = config
                .workers
                .unwrap_or_else(crate::event::default_workers)
                .max(1);

            // Serving more connections than the default fd soft limit
            // allows is the whole point; raise it while we can.
            let _ = pathalias_poll::raise_nofile_limit(65536);

            let mut tcp_listeners: Vec<Option<TcpListener>> = Vec::new();
            let mut distribute_tcp = false;
            if let Some(addr) = &config.tcp {
                let (listeners, bound, sharded) =
                    crate::event::bind_tcp(addr, workers_n).map_err(StartError::Bind)?;
                tcp_listeners = listeners;
                // Without SO_REUSEPORT shards, worker 0 accepts alone
                // and deals connections round-robin to the pool.
                distribute_tcp = !sharded;
                tcp_addr = Some(bound);
                state
                    .logger
                    .info("listening")
                    .field("transport", "tcp")
                    .field("addr", bound)
                    .field("shards", if sharded { workers_n } else { 1 })
                    .emit();
            }

            let mut udp_socks: Vec<Option<std::net::UdpSocket>> = Vec::new();
            if let Some(addr) = &config.udp {
                let (socks, bound) =
                    crate::event::bind_udp(addr, workers_n).map_err(StartError::Bind)?;
                udp_socks = socks;
                udp_addr = Some(bound);
                state
                    .logger
                    .info("listening")
                    .field("transport", "udp")
                    .field("addr", bound)
                    .emit();
            }

            let mut unix_listener = None;
            if let Some(path) = &config.unix {
                // A previous daemon's socket file would make bind fail.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path).map_err(StartError::Bind)?;
                unix_path = Some(path.clone());
                state
                    .logger
                    .info("listening")
                    .field("transport", "unix")
                    .field("path", path.display())
                    .emit();
                unix_listener = Some(listener);
            }

            if tcp_addr.is_none() && unix_path.is_none() && udp_addr.is_none() {
                return Err(StartError::Bind(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "no listener configured (need tcp, udp and/or unix)",
                )));
            }

            // One self-pipe per worker: shutdown, reload completions,
            // and connection handoffs all wake the loop through it.
            let mut shareds = Vec::with_capacity(workers_n);
            let mut wake_reads = Vec::with_capacity(workers_n);
            for _ in 0..workers_n {
                let (read_end, write_end) = UnixStream::pair().map_err(StartError::Bind)?;
                write_end.set_nonblocking(true).map_err(StartError::Bind)?;
                shareds.push(Arc::new(crate::event::WorkerShared::new(write_end)));
                wake_reads.push(read_end);
            }
            // Registered before any worker runs, so SHUTDOWN handled
            // by the first worker can already wake all of them.
            *state.workers.lock().expect("workers lock poisoned") = shareds.clone();

            for (index, wake_read) in wake_reads.into_iter().enumerate() {
                let setup = crate::event::WorkerSetup {
                    index,
                    shared: shareds[index].clone(),
                    all: shareds.clone(),
                    tcp: tcp_listeners.get_mut(index).and_then(Option::take),
                    unix: if index == 0 {
                        unix_listener.take()
                    } else {
                        None
                    },
                    udp: udp_socks.get_mut(index).and_then(Option::take),
                    wake_read,
                    distribute_tcp,
                };
                let state = state.clone();
                accept_threads.push(std::thread::spawn(move || {
                    crate::event::run_worker(state, setup)
                }));
            }
        }

        #[cfg(not(unix))]
        {
            if config.unix.is_some() {
                return Err(StartError::Bind(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                )));
            }
            if config.udp.is_some() {
                return Err(StartError::Bind(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "the udp endpoint wants the unix event loop",
                )));
            }
            if let Some(addr) = &config.tcp {
                let listener = TcpListener::bind(addr.as_str()).map_err(StartError::Bind)?;
                let bound = listener.local_addr().map_err(StartError::Bind)?;
                tcp_addr = Some(bound);
                *state.wake_tcp.lock().expect("wake lock poisoned") = Some(bound);
                state
                    .logger
                    .info("listening")
                    .field("transport", "tcp")
                    .field("addr", bound)
                    .emit();
                let state = state.clone();
                accept_threads.push(std::thread::spawn(move || accept_tcp(state, listener)));
            }
            if tcp_addr.is_none() {
                return Err(StartError::Bind(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "no listener configured (need tcp, udp and/or unix)",
                )));
            }
        }

        if let Some(interval) = config.watch {
            let state = state.clone();
            let baselines = watch_baselines.unwrap_or_default();
            accept_threads.push(std::thread::spawn(move || {
                watch_sources(state, interval, baselines)
            }));
        }

        Ok(ServerHandle {
            state,
            tcp_addr,
            unix_path,
            udp_addr,
            accept_threads,
        })
    }
}

#[cfg(not(unix))]
fn accept_tcp(state: Arc<State>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                // One buffered write per request line = one segment;
                // with nodelay set, neither Nagle nor delayed ACKs can
                // stall the request/response ping-pong.
                let _ = stream.set_nodelay(true);
                spawn_connection(state.clone(), stream);
            }
            Err(_) => continue,
        }
    }
}

/// The `--watch` loop: polls every map's fingerprint (size, mtime and,
/// on unix, inode/ctime — see [`crate::reload`]) and runs the ordinary
/// per-map reload path for each map whose fingerprint changed — one
/// map's rewrite never re-parses the others. A fingerprint that cannot
/// be read (a file mid-rewrite, say) skips that map for the tick
/// rather than reloading a half-written source; the next tick sees the
/// settled state. The skip is *logged*, rate-limited per map, so a map
/// whose file vanished for good does not sit silently stale forever.
/// Sleeps in short slices so a drain is never stuck behind a long
/// interval.
fn watch_sources(
    state: Arc<State>,
    interval: Duration,
    baselines: Vec<Option<crate::reload::Fingerprint>>,
) {
    const SLICE: Duration = Duration::from_millis(25);
    // A zero interval would busy-spin; poll no faster than the slice.
    let interval = interval.max(SLICE);
    let paths: Vec<Vec<PathBuf>> = state.maps.iter().map(|m| m.source.watch_paths()).collect();
    let mut last: Vec<Option<crate::reload::Fingerprint>> = (0..state.maps.len())
        .map(|i| baselines.get(i).cloned().flatten())
        .collect();
    // Consecutive fingerprint failures per map, for rate-limiting the
    // failure log: the first failure logs immediately, then every 16th
    // tick while the condition persists.
    let mut fail_streak: Vec<u64> = vec![0; state.maps.len()];
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if state.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let nap = SLICE.min(interval - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
        for (i, map) in state.maps.iter().enumerate() {
            if state.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let current = match crate::reload::fingerprint(&paths[i]) {
                Ok(fp) => {
                    fail_streak[i] = 0;
                    fp
                }
                Err(e) => {
                    fail_streak[i] += 1;
                    if fail_streak[i] == 1 || fail_streak[i] % 16 == 0 {
                        state
                            .logger
                            .warn("watch_fingerprint_failed")
                            .field("map", &map.name)
                            .field("error", e.to_string())
                            .field("streak", fail_streak[i])
                            .emit();
                    }
                    continue;
                }
            };
            if last[i].as_ref() != Some(&current) {
                state
                    .logger
                    .info("watch_reload")
                    .field("map", &map.name)
                    .emit();
                // The ordinary reload path: atomic swap on success, old
                // table keeps serving on failure. Either way the new
                // fingerprint is remembered, so a broken rewrite is
                // retried only when the file changes again.
                let _ = state.reload(map, None);
                last[i] = Some(current);
            }
        }
    }
}

#[cfg(not(unix))]
fn spawn_connection(state: Arc<State>, stream: impl SplitStream) {
    bump(&state.server_metrics.connections);
    bump(&state.server_metrics.active_connections);
    let conn_id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
    state
        .logger
        .debug("conn_open")
        .field("conn", conn_id)
        .emit();
    std::thread::spawn(move || {
        let _ = serve_connection(state.clone(), stream, conn_id);
        drop_one(&state.server_metrics.active_connections);
        state
            .logger
            .debug("conn_close")
            .field("conn", conn_id)
            .emit();
    });
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum StartError {
    /// The map set itself was malformed (empty, duplicate or invalid
    /// names, unknown default).
    Config(String),
    /// One map's initial table load failed.
    Load {
        /// The map whose source failed.
        map: String,
        /// What went wrong.
        error: crate::reload::LoadError,
    },
    /// Binding a listener failed.
    Bind(io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Config(why) => write!(f, "map set: {why}"),
            StartError::Load { map, error } => {
                write!(f, "loading route table for map `{map}`: {error}")
            }
            StartError::Bind(e) => write!(f, "binding listener: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl ServerHandle {
    /// The bound TCP address (the actual port when 0 was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The bound UDP address (the actual port when 0 was requested).
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The default map's serving generation and entry count, for
    /// status lines.
    pub fn table_info(&self) -> (u64, usize) {
        let snapshot = self.state.maps[self.state.default_map].cached.snapshot();
        (snapshot.generation(), snapshot.entries())
    }

    /// Every map's (name, source kind, generation, entries), in
    /// declaration order — what the CLI prints on startup.
    pub fn map_infos(&self) -> Vec<(String, &'static str, u64, usize)> {
        self.state
            .maps
            .iter()
            .map(|m| {
                let snapshot = m.cached.snapshot();
                (
                    m.name.clone(),
                    m.source.kind(),
                    snapshot.generation(),
                    snapshot.entries(),
                )
            })
            .collect()
    }

    /// The name of the namespace unqualified requests go to.
    pub fn default_map_name(&self) -> &str {
        &self.state.maps[self.state.default_map].name
    }

    /// Blocks until the daemon stops accepting — forever in daemon
    /// mode, or until a client issues `SHUTDOWN`, after which
    /// connections are drained (with a generous deadline) before
    /// returning.
    pub fn wait(mut self) {
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Accept loops only exit on shutdown; give in-flight
        // connections their drain window.
        self.await_connections(Duration::from_secs(5));
        self.cleanup_socket();
    }

    /// Stops accepting, wakes the accept loops, and joins them.
    /// Established connections finish their current request and close
    /// on their next read. Does not wait for them; see
    /// [`ServerHandle::drain`].
    pub fn shutdown(mut self) {
        self.state.begin_shutdown();
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        self.cleanup_socket();
    }

    /// Graceful shutdown: stops accepting, then lets in-flight
    /// connections finish until `deadline` elapses. Returns `true` if
    /// every connection closed in time, `false` if the deadline struck
    /// with stragglers still open (which are then abandoned to process
    /// exit, as [`shutdown`](ServerHandle::shutdown) would).
    pub fn drain(mut self, deadline: Duration) -> bool {
        self.state.begin_shutdown();
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        let drained = self.await_connections(deadline);
        self.state
            .logger
            .info("drain")
            .field("complete", drained)
            .emit();
        self.cleanup_socket();
        drained
    }

    /// Polls the active-connection gauge until it reaches zero or the
    /// deadline passes.
    fn await_connections(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        loop {
            if self
                .state
                .server_metrics
                .active_connections
                .load(Ordering::Relaxed)
                == 0
            {
                return true;
            }
            if start.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn cleanup_socket(&self) {
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Read};

    fn temp_routes(tag: &str, text: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "pathalias-daemon-test-{tag}-{}-{:?}.routes",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::write(&path, text).unwrap();
        path
    }

    /// One served map from any source kind, with the engine when the
    /// backend carries a frozen graph.
    fn state_from_source(name: &str, source: MapSource) -> Arc<MapState> {
        let (resolver, engine, _) = source.load_serving_timed().unwrap();
        let metrics = Arc::new(Metrics::default());
        Arc::new(MapState {
            name: name.to_string(),
            source,
            cached: Cached::new(resolver, 64, 2, metrics.clone()),
            metrics,
            telemetry: MapTelemetry::new(),
            engine: Mutex::new(engine),
            reload_lock: Mutex::new(()),
        })
    }

    fn state_of(maps: Vec<(&str, &str)>, default_map: usize) -> Arc<State> {
        let built = maps
            .into_iter()
            .map(|(name, text)| {
                let source = MapSource::Routes(temp_routes(name, text));
                state_from_source(name, source)
            })
            .collect();
        wrap_states(built, default_map)
    }

    fn wrap_states(built: Vec<Arc<MapState>>, default_map: usize) -> Arc<State> {
        Arc::new(State {
            maps: built,
            default_map,
            server_metrics: Arc::new(ServerMetrics::default()),
            // Captured, not stderr: unit tests stay silent and can
            // assert on (or against) what the daemon would log.
            logger: Logger::capture(pathalias_telemetry::Level::Debug).0,
            next_conn_id: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            #[cfg(unix)]
            workers: Mutex::new(Vec::new()),
            #[cfg(not(unix))]
            wake_tcp: Mutex::new(None),
        })
    }

    fn state_for(text: &str) -> Arc<State> {
        state_of(vec![(DEFAULT_MAP_NAME, text)], 0)
    }

    fn one(state: &Arc<State>, req: Request) -> Response {
        let mut responses = state.respond(req);
        assert_eq!(responses.len(), 1);
        responses.pop().unwrap()
    }

    #[test]
    fn respond_covers_every_verb() {
        let state = state_for("seismo\tseismo!%s\n.edu\tseismo!%s\n");
        let q = |host: &str, user: Option<&str>| {
            one(
                &state,
                Request::Query {
                    map: None,
                    host: host.into(),
                    user: user.map(str::to_string),
                },
            )
        };
        assert_eq!(
            q("seismo", Some("rick")),
            Response::Route("seismo!rick".into())
        );
        assert_eq!(
            q("caip.rutgers.edu", Some("pleasant")),
            Response::Route("seismo!caip.rutgers.edu!pleasant".into())
        );
        assert_eq!(q("seismo", None), Response::Route("seismo!%s".into()));
        assert_eq!(q("nowhere", Some("u")), Response::NoRoute("nowhere".into()));
        assert!(matches!(
            one(&state, Request::Stats { map: None }),
            Response::Stats { map: None, .. }
        ));
        assert_eq!(
            one(&state, Request::Health { map: None }),
            Response::Health {
                map: None,
                generation: 0,
                entries: 2
            }
        );
        assert_eq!(
            one(
                &state,
                Request::Proto {
                    version: ProtoVersion::V2
                }
            ),
            Response::Proto {
                version: ProtoVersion::V2
            }
        );
        assert_eq!(
            one(&state, Request::Maps),
            Response::Maps {
                names: vec![DEFAULT_MAP_NAME.to_string()],
                default: DEFAULT_MAP_NAME.to_string()
            }
        );
        assert_eq!(one(&state, Request::Quit), Response::Bye);
        let reloaded = one(&state, Request::Reload { map: None });
        assert_eq!(
            reloaded,
            Response::Reloaded {
                map: None,
                generation: 1,
                entries: 2
            }
        );
    }

    /// A daemon state over the full map pipeline — a source kind whose
    /// snapshot carries a frozen graph, so `PATH` has an engine.
    fn path_state() -> Arc<State> {
        let path = temp_routes(
            "path-map",
            "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
             phs\tunc(400)\nresearch\tduke(200)\n",
        );
        let options = pathalias_core::Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path], options);
        wrap_states(vec![state_from_source(DEFAULT_MAP_NAME, source)], 0)
    }

    #[test]
    fn path_answers_point_to_point_and_via() {
        let state = path_state();
        let p = |src: &str, dst: &str| {
            one(
                &state,
                Request::Path {
                    map: None,
                    src: src.into(),
                    dst: dst.into(),
                },
            )
        };
        // Home-rooted PATH agrees with the mapper's tree: 100 + 200
        // through duke, rendered exactly as QUERY would.
        assert_eq!(
            p("unc", "research"),
            Response::Path {
                map: None,
                cost: 300,
                hops: 2,
                route: "duke!research!%s".into()
            }
        );
        // Off-home source: phs has only the 400 link back to unc.
        assert!(matches!(
            p("phs", "research"),
            Response::Path {
                cost: 700,
                hops: 3,
                ..
            }
        ));
        // `*` lists one-hop predecessors with their link costs.
        assert_eq!(
            p("*", "unc"),
            Response::Via {
                map: None,
                dst: "unc".into(),
                entries: vec![("duke".into(), 100), ("phs".into(), 400)]
            }
        );
    }

    #[test]
    fn path_maps_errors_like_query() {
        let state = path_state();
        let p = |src: &str, dst: &str| {
            one(
                &state,
                Request::Path {
                    map: None,
                    src: src.into(),
                    dst: dst.into(),
                },
            )
        };
        // Unknown destination is the expected negative answer (404),
        // matching QUERY on a host the map has never heard of.
        assert_eq!(p("unc", "nowhere"), Response::NoRoute("nowhere".into()));
        assert_eq!(p("*", "nowhere"), Response::NoRoute("nowhere".into()));
        // Unknown *source* is the caller's mistake (400).
        assert_eq!(
            p("nowhere", "duke"),
            Response::BadRequest("unknown source `nowhere`".into())
        );
    }

    #[test]
    fn path_refuses_table_only_backends() {
        let state = state_for("seismo\tseismo!%s\n");
        assert_eq!(
            one(
                &state,
                Request::Path {
                    map: None,
                    src: "a".into(),
                    dst: "seismo".into(),
                },
            ),
            Response::Failure("PATH unsupported on backend `routes`: no frozen graph".into())
        );
    }

    #[test]
    fn path_records_latency_and_slowlog() {
        let state = path_state();
        let _ = one(
            &state,
            Request::Path {
                map: None,
                src: "unc".into(),
                dst: "research".into(),
            },
        );
        let map = &state.maps[0];
        assert_eq!(map.telemetry.path.snapshot().count, 1);
        let slow = map.telemetry.slowlog.snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].verb, "PATH");
        assert_eq!(slow[0].host, "unc>research");
        assert_eq!(slow[0].outcome, "ok");
    }

    #[test]
    fn mquery_answers_in_order() {
        let state = state_for("a\ta!%s\nb\tb!%s\n");
        let responses = state.respond(Request::MultiQuery {
            map: None,
            queries: vec![
                ("b".into(), Some("u".into())),
                ("missing".into(), None),
                ("a".into(), Some("v".into())),
            ],
        });
        assert_eq!(
            responses,
            vec![
                Response::Route("b!u".into()),
                Response::NoRoute("missing".into()),
                Response::Route("a!v".into()),
            ]
        );
    }

    #[test]
    fn qualified_requests_route_to_their_map() {
        let state = state_of(
            vec![("west", "h\twest-gw!h!%s\n"), ("east", "h\teast-gw!h!%s\n")],
            0,
        );
        let q = |map: Option<&str>| {
            one(
                &state,
                Request::Query {
                    map: map.map(str::to_string),
                    host: "h".into(),
                    user: Some("u".into()),
                },
            )
        };
        // Unqualified goes to the default (first) map.
        assert_eq!(q(None), Response::Route("west-gw!h!u".into()));
        assert_eq!(q(Some("west")), Response::Route("west-gw!h!u".into()));
        assert_eq!(q(Some("east")), Response::Route("east-gw!h!u".into()));
        assert_eq!(
            q(Some("nope")),
            Response::BadRequest("unknown map `nope`".into())
        );
        assert_eq!(
            one(&state, Request::Maps),
            Response::Maps {
                names: vec!["west".into(), "east".into()],
                default: "west".into()
            }
        );
        // Per-map counters: two queries hit west (one unqualified),
        // one hit east.
        assert_eq!(
            state.maps[0].metrics.queries.load(Ordering::Relaxed),
            2,
            "west"
        );
        assert_eq!(
            state.maps[1].metrics.queries.load(Ordering::Relaxed),
            1,
            "east"
        );
    }

    #[test]
    fn mquery_on_an_unknown_map_fails_every_slot() {
        // The batch contract is one line per token: an unknown map
        // must produce N error lines, or a batched client waiting for
        // N responses hangs on a half-answered connection.
        let state = state_for("a\ta!%s\n");
        let responses = state.respond(Request::MultiQuery {
            map: Some("nope".into()),
            queries: vec![("a".into(), None), ("b".into(), None), ("c".into(), None)],
        });
        assert_eq!(responses.len(), 3, "one response per query token");
        for resp in responses {
            assert_eq!(resp, Response::BadRequest("unknown map `nope`".into()));
        }
    }

    #[test]
    fn qualified_reload_touches_only_its_map() {
        let state = state_of(vec![("a", "x\ta!x!%s\n"), ("b", "x\tb!x!%s\n")], 0);
        let reloaded = one(
            &state,
            Request::Reload {
                map: Some("b".into()),
            },
        );
        assert_eq!(
            reloaded,
            Response::Reloaded {
                map: Some("b".into()),
                generation: 1,
                entries: 1
            }
        );
        // Map a is untouched at generation 0.
        assert_eq!(state.maps[0].cached.snapshot().generation(), 0);
        assert_eq!(state.maps[1].cached.snapshot().generation(), 1);
        assert_eq!(
            one(
                &state,
                Request::Health {
                    map: Some("a".into())
                }
            ),
            Response::Health {
                map: Some("a".into()),
                generation: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn qualified_stats_lead_with_the_map_name() {
        let state = state_of(vec![("a", "x\ta!x!%s\n"), ("b", "x\tb!x!%s\n")], 1);
        let qualified = one(
            &state,
            Request::Stats {
                map: Some("a".into()),
            },
        );
        assert!(
            matches!(&qualified, Response::Stats { map: Some(m), .. } if m == "a"),
            "{qualified:?}"
        );
        let rendered = qualified.to_string();
        assert!(rendered.starts_with("200 map=a queries="), "{rendered}");
        // Unqualified stats (default map b here) carry no map= prefix:
        // byte-compatible with the single-map daemon.
        let rendered = one(&state, Request::Stats { map: None }).to_string();
        assert!(rendered.starts_with("200 queries="), "{rendered}");
    }

    #[test]
    fn stats_includes_per_shard_counters() {
        let state = state_for("a\ta!%s\n");
        let _ = one(
            &state,
            Request::Query {
                map: None,
                host: "a".into(),
                user: None,
            },
        );
        let Response::Stats { body, .. } = one(&state, Request::Stats { map: None }) else {
            panic!("expected stats");
        };
        assert!(body.contains("cache_shard0_hits="), "{body}");
        assert!(body.contains("cache_shard1_misses="), "{body}");
        assert!(body.contains("resolve_errors=0"), "{body}");
    }

    #[test]
    fn shutdown_request_flags_drain() {
        let state = state_for("a\ta!%s\n");
        assert!(!state.shutting_down.load(Ordering::SeqCst));
        assert_eq!(one(&state, Request::Shutdown), Response::ShuttingDown);
        assert!(state.shutting_down.load(Ordering::SeqCst));
    }

    #[test]
    fn reload_failure_keeps_old_table() {
        let state = state_for("a\ta!%s\n");
        // Sabotage the source file.
        if let MapSource::Routes(path) = &state.maps[0].source {
            std::fs::write(path, "garbage-without-a-route\n").unwrap();
        }
        let resp = one(&state, Request::Reload { map: None });
        assert_eq!(resp.code(), 500);
        // Old table still serves.
        assert_eq!(
            one(
                &state,
                Request::Query {
                    map: None,
                    host: "a".into(),
                    user: Some("u".into())
                }
            ),
            Response::Route("a!u".into())
        );
        let snapshot = state.maps[0].cached.snapshot();
        assert_eq!(snapshot.generation(), 0);
    }

    #[test]
    fn start_rejects_bad_map_sets() {
        let path = temp_routes("cfg", "a\ta!%s\n");
        let source = MapSource::Routes(path.clone());
        let empty = ServerConfig::ephemeral_set(Vec::new());
        assert!(matches!(Server::start(empty), Err(StartError::Config(_))));

        let dup = ServerConfig::ephemeral_set(vec![
            ("m".into(), source.clone()),
            ("m".into(), source.clone()),
        ]);
        assert!(matches!(Server::start(dup), Err(StartError::Config(_))));

        let bad_name = ServerConfig::ephemeral_set(vec![("a b".into(), source.clone())]);
        assert!(matches!(
            Server::start(bad_name),
            Err(StartError::Config(_))
        ));

        let mut unknown_default = ServerConfig::ephemeral_set(vec![("m".into(), source.clone())]);
        unknown_default.default_map = Some("other".into());
        assert!(matches!(
            Server::start(unknown_default),
            Err(StartError::Config(_))
        ));

        // A load failure names the broken map.
        let missing = ServerConfig::ephemeral_set(vec![
            ("ok".into(), source),
            (
                "broken".into(),
                MapSource::Routes(std::env::temp_dir().join("pathalias-definitely-missing")),
            ),
        ]);
        match Server::start(missing) {
            Err(StartError::Load { map, .. }) => assert_eq!(map, "broken"),
            Err(other) => panic!("expected a load error, got {other}"),
            Ok(_) => panic!("expected a load error, got a running daemon"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn map_name_validity() {
        assert!(valid_map_name("regional"));
        assert!(valid_map_name("Uucp-1986.west"));
        assert!(!valid_map_name(""));
        assert!(!valid_map_name("two words"));
        assert!(!valid_map_name("a,b"));
        assert!(!valid_map_name("@a"));
    }

    #[test]
    fn bounded_line_reader() {
        let mut partial = Vec::new();
        let mut ok = BufReader::new(Cursor::new(b"QUERY a\n".to_vec()));
        let mut line = String::new();
        assert!(matches!(
            read_bounded_line(&mut ok, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, "QUERY a");

        let mut eof = BufReader::new(Cursor::new(Vec::new()));
        assert!(matches!(
            read_bounded_line(&mut eof, &mut partial, &mut line).unwrap(),
            LineRead::Eof
        ));

        // No trailing newline: still delivered at EOF.
        let mut tail = BufReader::new(Cursor::new(b"HEALTH".to_vec()));
        assert!(matches!(
            read_bounded_line(&mut tail, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, "HEALTH");

        let mut long = BufReader::new(Cursor::new(vec![b'x'; MAX_LINE + 10]));
        let err = read_bounded_line(&mut long, &mut partial, &mut line).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        partial.clear();

        // A blank line is a line, not EOF.
        let mut blank = BufReader::new(Cursor::new(b"\nHEALTH\n".to_vec()));
        assert!(matches!(
            read_bounded_line(&mut blank, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, "");
        assert!(matches!(
            read_bounded_line(&mut blank, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, "HEALTH");
    }

    #[test]
    fn partial_bytes_survive_idle_polls() {
        // A reader that delivers half a request, then times out, then
        // delivers the rest — the line must come out whole.
        struct Stutter {
            chunks: Vec<Result<Vec<u8>, io::ErrorKind>>,
        }
        impl Read for Stutter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.chunks.pop() {
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(kind)) => Err(io::Error::new(kind, "timeout")),
                    None => Ok(0),
                }
            }
        }
        let mut reader = BufReader::new(Stutter {
            chunks: vec![
                Ok(b" rick\n".to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Ok(b"QUERY seismo".to_vec()),
            ],
        });
        let mut partial = Vec::new();
        let mut line = String::new();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut partial, &mut line).unwrap(),
            LineRead::Idle
        ));
        assert!(!partial.is_empty(), "partial request retained");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, "QUERY seismo rick");
    }

    /// Joins a multi-line response (header + payload lines) back into
    /// the text document, checking the header's line count on the way.
    fn payload_text(responses: &[Response]) -> String {
        let Response::MetricsHeader { lines } = responses[0] else {
            panic!("expected a metrics header, got {:?}", responses[0]);
        };
        assert_eq!(lines, responses.len() - 1, "header line count");
        responses[1..]
            .iter()
            .map(|r| {
                let Response::Payload(line) = r else {
                    panic!("expected a payload line, got {r:?}");
                };
                format!("{line}\n")
            })
            .collect()
    }

    /// `(le, cumulative)` pairs of one labelled histogram series.
    fn bucket_series(text: &str, series_prefix: &str) -> Vec<(String, u64)> {
        text.lines()
            .filter(|l| l.starts_with(series_prefix))
            .map(|l| {
                let le_start = l.find("le=\"").unwrap() + 4;
                let le_end = l[le_start..].find('"').unwrap() + le_start;
                let value = l.rsplit(' ').next().unwrap().parse().unwrap();
                (l[le_start..le_end].to_owned(), value)
            })
            .collect()
    }

    #[test]
    fn metrics_exposition_is_valid_prometheus() {
        let state = state_of(vec![("east", "a\ta!%s\n"), ("west", "b\tb!%s\n")], 0);
        for _ in 0..3 {
            let _ = one(
                &state,
                Request::Query {
                    map: Some("east".into()),
                    host: "a".into(),
                    user: None,
                },
            );
        }
        let _ = state.respond(Request::MultiQuery {
            map: Some("west".into()),
            queries: vec![("b".into(), None), ("missing".into(), None)],
        });

        let responses = state.respond(Request::Metrics { map: None });
        let text = payload_text(&responses);

        // HELP/TYPE headers precede their samples.
        assert!(text.contains("# HELP pathalias_queries_total "), "{text}");
        assert!(
            text.contains("# TYPE pathalias_queries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE pathalias_request_latency_seconds histogram"),
            "{text}"
        );
        // Per-map counter series for every served namespace.
        assert!(
            text.contains("pathalias_queries_total{map=\"east\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("pathalias_queries_total{map=\"west\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pathalias_generation{map=\"east\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("pathalias_cache_shard_hits_total{map=\"east\",shard=\"0\"}"),
            "{text}"
        );

        // The cumulative bucket series is monotone and ends in +Inf,
        // which equals _count.
        let east_query = bucket_series(
            &text,
            "pathalias_request_latency_seconds_bucket{map=\"east\",verb=\"query\"",
        );
        assert!(!east_query.is_empty());
        assert_eq!(east_query.last().unwrap(), &("+Inf".to_string(), 3));
        let mut prev = 0;
        for (_, v) in &east_query {
            assert!(*v >= prev, "non-monotone buckets:\n{text}");
            prev = *v;
        }
        assert!(
            text.contains("pathalias_request_latency_seconds_count{map=\"east\",verb=\"query\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("pathalias_request_latency_seconds_sum{map=\"east\",verb=\"query\"} "),
            "{text}"
        );
        // MQUERY records per batch and per item.
        assert!(
            text.contains(
                "pathalias_request_latency_seconds_count{map=\"west\",verb=\"mquery_batch\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "pathalias_request_latency_seconds_count{map=\"west\",verb=\"mquery_item\"} 2"
            ),
            "{text}"
        );
    }

    #[test]
    fn queries_counter_matches_histogram_counts() {
        // The cross-signal invariant the CI scrape asserts: the
        // per-map queries counter equals the query + mquery_item
        // histogram counts.
        let state = state_for("a\ta!%s\n");
        for _ in 0..4 {
            let _ = one(
                &state,
                Request::Query {
                    map: None,
                    host: "a".into(),
                    user: None,
                },
            );
        }
        let _ = state.respond(Request::MultiQuery {
            map: None,
            queries: vec![("a".into(), None), ("a".into(), Some("u".into()))],
        });
        let m = &state.maps[0];
        assert_eq!(
            m.metrics.queries.load(Ordering::Relaxed),
            m.telemetry.query.count() + m.telemetry.mquery_item.count(),
        );
    }

    #[test]
    fn qualified_metrics_restrict_to_one_map() {
        let state = state_of(vec![("east", "a\ta!%s\n"), ("west", "b\tb!%s\n")], 0);
        let responses = state.respond(Request::Metrics {
            map: Some("west".into()),
        });
        let text = payload_text(&responses);
        assert!(text.contains("map=\"west\""), "{text}");
        assert!(!text.contains("map=\"east\""), "{text}");
        // Daemon-wide series still render on a qualified scrape.
        assert!(text.contains("pathalias_uptime_seconds"), "{text}");

        let responses = state.respond(Request::Metrics {
            map: Some("nope".into()),
        });
        assert_eq!(
            responses,
            vec![Response::BadRequest("unknown map `nope`".into())]
        );
    }

    #[test]
    fn slowlog_reports_worst_requests() {
        let state = state_of(vec![("east", "a\ta!%s\n"), ("west", "b\tb!%s\n")], 0);
        let _ = one(
            &state,
            Request::Query {
                map: Some("east".into()),
                host: "a".into(),
                user: Some("u".into()),
            },
        );
        let _ = one(
            &state,
            Request::Query {
                map: Some("west".into()),
                host: "missing".into(),
                user: None,
            },
        );
        let responses = state.respond(Request::SlowLog { map: None });
        let Response::SlowLogHeader { entries } = responses[0] else {
            panic!("expected a slowlog header, got {:?}", responses[0]);
        };
        assert_eq!(entries, 2, "both maps merged");
        assert_eq!(entries, responses.len() - 1);
        let lines: Vec<String> = responses[1..].iter().map(|r| r.to_string()).collect();
        assert!(
            lines.iter().any(|l| l.contains("map=east")
                && l.contains("verb=QUERY")
                && l.contains("host=a")
                && l.contains("outcome=ok")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("map=west") && l.contains("outcome=no_route")),
            "{lines:?}"
        );

        // Qualified: only that map's entries.
        let responses = state.respond(Request::SlowLog {
            map: Some("east".into()),
        });
        assert_eq!(
            responses[0],
            Response::SlowLogHeader { entries: 1 },
            "{responses:?}"
        );
        assert_eq!(
            state.respond(Request::SlowLog {
                map: Some("nope".into())
            }),
            vec![Response::BadRequest("unknown map `nope`".into())]
        );
    }

    #[test]
    fn reload_records_duration_and_phases() {
        let state = state_for("a\ta!%s\n");
        assert!(state.maps[0].telemetry.reload_phases().is_none());
        let _ = one(&state, Request::Reload { map: None });
        let m = &state.maps[0];
        assert_eq!(m.telemetry.reload.count(), 1);
        assert!(m.telemetry.reload_phases().is_some());
        // A failed reload still records its duration.
        if let MapSource::Routes(path) = &m.source {
            std::fs::write(path, "garbage-without-a-route\n").unwrap();
        }
        let resp = one(&state, Request::Reload { map: None });
        assert_eq!(resp.code(), 500);
        assert_eq!(m.telemetry.reload.count(), 2);
        let slow = m.telemetry.slowlog.snapshot();
        assert!(
            slow.iter()
                .any(|e| e.verb == "RELOAD" && e.outcome == "error"),
            "{slow:?}"
        );
    }

    #[test]
    fn multibyte_utf8_survives_buffer_refills() {
        // A 1-byte BufReader forces every UTF-8 character to straddle
        // a refill boundary; the line must still decode intact.
        let text = "QUERY zürich.üñî.example häns\n";
        let mut tiny = BufReader::with_capacity(1, Cursor::new(text.as_bytes().to_vec()));
        let mut partial = Vec::new();
        let mut line = String::new();
        assert!(matches!(
            read_bounded_line(&mut tiny, &mut partial, &mut line).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, text.trim_end());
        assert!(
            !line.contains('\u{FFFD}'),
            "no replacement characters: {line}"
        );
    }
}
