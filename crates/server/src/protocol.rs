//! The line-oriented query protocol.
//!
//! One request per line, one response line per request, always in
//! order — "a simple linear file, in the UNIX tradition" turned into a
//! simple linear wire format. Requests:
//!
//! ```text
//! QUERY <host> [user]    route mail for <host> (user defaults to %s)
//! STATS                  counters as key=value pairs
//! RELOAD                 rebuild the table from the source, swap it in
//! HEALTH                 liveness probe
//! QUIT                   close this connection
//! ```
//!
//! Responses are `<code> <text>`: `200` success, `404` no route, `400`
//! bad request, `500` server-side failure. Verbs are case-insensitive;
//! host names pass through verbatim (the table's case rules were
//! decided at map time by `-i`).

use std::fmt;

/// The maximum request line the daemon will read, including the
/// newline. Longer lines get `400` and the connection is dropped —
/// nothing in the input language needs more, and it bounds what a
/// hostile peer can make us buffer.
pub const MAX_LINE: usize = 8 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <host> [user]`.
    Query {
        /// Destination host or domain name.
        host: String,
        /// Mail user; `None` leaves the `%s` marker in place.
        user: Option<String>,
    },
    /// `STATS`.
    Stats,
    /// `RELOAD`.
    Reload,
    /// `HEALTH`.
    Health,
    /// `QUIT`.
    Quit,
}

/// Parses one request line (without its newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| "empty request".to_string())?;
    let req = match verb.to_ascii_uppercase().as_str() {
        "QUERY" => {
            let host = words
                .next()
                .ok_or_else(|| "QUERY needs a host".to_string())?
                .to_string();
            let user = words.next().map(str::to_string);
            Request::Query { host, user }
        }
        "STATS" => Request::Stats,
        "RELOAD" => Request::Reload,
        "HEALTH" => Request::Health,
        "QUIT" => Request::Quit,
        other => return Err(format!("unknown verb `{other}`")),
    };
    if let Some(extra) = words.next() {
        return Err(format!("trailing argument `{extra}`"));
    }
    Ok(req)
}

/// A response line (without its newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `200` — a route for a successful `QUERY`.
    Route(String),
    /// `404` — the table has no route to the host.
    NoRoute(String),
    /// `200` — `STATS` payload.
    Stats(String),
    /// `200` — `RELOAD` swapped in a new table.
    Reloaded {
        /// Generation now serving.
        generation: u64,
        /// Entries in the new table.
        entries: usize,
    },
    /// `200` — `HEALTH` payload.
    Health {
        /// Generation now serving.
        generation: u64,
        /// Entries in the serving table.
        entries: usize,
    },
    /// `200` — answer to `QUIT`.
    Bye,
    /// `400` — the request line did not parse.
    BadRequest(String),
    /// `500` — a server-side failure (reload error, ...).
    Failure(String),
}

impl Response {
    /// The numeric status code.
    pub fn code(&self) -> u16 {
        match self {
            Response::Route(_)
            | Response::Stats(_)
            | Response::Reloaded { .. }
            | Response::Health { .. }
            | Response::Bye => 200,
            Response::NoRoute(_) => 404,
            Response::BadRequest(_) => 400,
            Response::Failure(_) => 500,
        }
    }
}

/// Keeps protocol framing intact whatever ends up in a payload: one
/// response is always exactly one line.
fn one_line(s: &str) -> String {
    if s.contains('\n') || s.contains('\r') {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_string()
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Route(route) => write!(f, "200 {}", one_line(route)),
            Response::NoRoute(host) => write!(f, "404 no route to {}", one_line(host)),
            Response::Stats(body) => write!(f, "200 {}", one_line(body)),
            Response::Reloaded {
                generation,
                entries,
            } => {
                write!(f, "200 reloaded generation={generation} entries={entries}")
            }
            Response::Health {
                generation,
                entries,
            } => {
                write!(f, "200 ok generation={generation} entries={entries}")
            }
            Response::Bye => write!(f, "200 bye"),
            Response::BadRequest(why) => write!(f, "400 {}", one_line(why)),
            Response::Failure(why) => write!(f, "500 {}", one_line(why)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_forms() {
        assert_eq!(
            parse_request("QUERY seismo").unwrap(),
            Request::Query {
                host: "seismo".into(),
                user: None
            }
        );
        assert_eq!(
            parse_request("query caip.rutgers.edu pleasant").unwrap(),
            Request::Query {
                host: "caip.rutgers.edu".into(),
                user: Some("pleasant".into())
            }
        );
        // Leading/trailing whitespace is tolerated.
        assert_eq!(
            parse_request("  QUERY  seismo  honey  ").unwrap(),
            Request::Query {
                host: "seismo".into(),
                user: Some("honey".into())
            }
        );
    }

    #[test]
    fn bare_verbs() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("reload").unwrap(), Request::Reload);
        assert_eq!(parse_request("Health").unwrap(), Request::Health);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_request("").is_err());
        assert!(parse_request("   ").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("QUERY a b c").is_err());
        assert!(parse_request("STATS now").is_err());
        assert!(parse_request("EHLO example.org").is_err());
    }

    #[test]
    fn response_lines() {
        assert_eq!(
            Response::Route("duke!research!%s".into()).to_string(),
            "200 duke!research!%s"
        );
        assert_eq!(
            Response::NoRoute("nowhere".into()).to_string(),
            "404 no route to nowhere"
        );
        assert_eq!(
            Response::Reloaded {
                generation: 3,
                entries: 17
            }
            .to_string(),
            "200 reloaded generation=3 entries=17"
        );
        assert_eq!(
            Response::Health {
                generation: 0,
                entries: 2
            }
            .to_string(),
            "200 ok generation=0 entries=2"
        );
        assert_eq!(Response::Bye.to_string(), "200 bye");
        assert_eq!(Response::BadRequest("why".into()).code(), 400);
        assert_eq!(Response::Failure("why".into()).code(), 500);
    }

    #[test]
    fn payload_newlines_cannot_break_framing() {
        let r = Response::Failure("two\nlines\r\nhere".into()).to_string();
        assert!(!r.contains('\n'));
        assert!(!r.contains('\r'));
    }
}
