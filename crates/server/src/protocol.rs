//! The line-oriented query protocol, versions 1 and 2.
//!
//! One request per line, responses always in order — "a simple linear
//! file, in the UNIX tradition" turned into a simple linear wire
//! format. Version 1 (every connection starts here):
//!
//! ```text
//! QUERY <host> [user]    route mail for <host> (user defaults to %s)
//! STATS                  counters as key=value pairs
//! RELOAD                 rebuild the table from the source, swap it in
//! HEALTH                 liveness probe
//! QUIT                   close this connection
//! ```
//!
//! Version 2 is negotiated in-band: the client sends `PROTO 2`, a v2
//! server answers `200 proto=2`, a v1 server answers `400 unknown verb
//! …` and the client falls back — old clients and old servers keep
//! working byte-for-byte. After negotiation these verbs unlock:
//!
//! ```text
//! PROTO <n>              negotiate protocol version (1 or 2)
//! MQUERY <h[:u]>...      N hosts on one line -> N ordered response lines
//! PATH <src> <dst>       point-to-point route from <src> to <dst>
//! PATH * <dst>           the one-hop neighbors with a link to <dst>
//! MAPS                   list the served map namespaces
//! METRICS                latency histograms + counters, Prometheus text
//! SLOWLOG                the worst-N slowest requests, one per line
//! SHUTDOWN               stop accepting, drain connections, exit
//! ```
//!
//! `PATH` answers from the frozen graph, not the printed tree: a
//! bidirectional Dijkstra between the named endpoints, with the
//! guarantee that `PATH <home> <x>` is byte-identical to `QUERY <x>`'s
//! route. The literal source `*` flips the verb into a reverse
//! one-hop listing — every node with a direct link to `<dst>`, read
//! straight off the reverse index. Backends that only hold a printed
//! table (routes, padb, padb-mmap) refuse the verb with `500`.
//!
//! `METRICS` and `SLOWLOG` are the only multi-line responses in the
//! protocol: a `200 metrics lines=<n>` (resp. `200 slowlog
//! entries=<n>`) header line announces exactly how many payload lines
//! follow, so clients never need a terminator scan. `STATS` remains
//! the v1 one-line counter dump, byte-for-byte.
//!
//! `MQUERY` is the batched hot path: one request line carries many
//! hosts (each token `host` or `host:user`), and the server writes one
//! response line per token, in token order, flushed once — a full
//! round trip per *batch* instead of per query.
//!
//! # Map namespaces (v2)
//!
//! A daemon may serve several named maps at once (`--map-set`). On a
//! v2 connection, `QUERY`, `MQUERY`, `PATH`, `STATS`, `RELOAD`,
//! `HEALTH`, `METRICS` and `SLOWLOG` accept an optional `@name` token
//! directly after the verb, routing the request to that namespace:
//!
//! ```text
//! QUERY @regional seismo rick
//! MQUERY @regional seismo duke:fred
//! STATS @regional
//! RELOAD @regional
//! ```
//!
//! Unqualified requests go to the daemon's *default* map, so a v1
//! session (which cannot express `@name` at all — a `@...` token is an
//! ordinary argument there) and an unqualified v2 session behave
//! byte-identically whether the daemon serves one map or twenty.
//! `MAPS` lists the namespaces: `200 maps=<a>,<b>,... default=<a>`.
//!
//! Responses are `<code> <text>`: `200` success, `404` no route, `400`
//! bad request, `500` server-side failure. Verbs are case-insensitive;
//! host names pass through verbatim (the table's case rules were
//! decided at map time by `-i`). Map names are case-sensitive.

use std::fmt;

/// The maximum request line the daemon will read, including the
/// newline. Longer lines get `400` and the connection is dropped —
/// nothing in the input language needs more, and it bounds what a
/// hostile peer can make us buffer. (It also bounds an `MQUERY`
/// batch: ~8 KB of host names per round trip.)
pub const MAX_LINE: usize = 8 * 1024;

/// A protocol version, as negotiated per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ProtoVersion {
    /// The PR-1 wire format. Every connection starts here.
    #[default]
    V1,
    /// Adds `MQUERY`, `MAPS`, `SHUTDOWN`, and `@map` qualifiers.
    V2,
}

impl ProtoVersion {
    /// The numeric form used on the wire.
    pub fn number(self) -> u8 {
        match self {
            ProtoVersion::V1 => 1,
            ProtoVersion::V2 => 2,
        }
    }

    /// Parses the numeric wire form.
    pub fn from_number(n: u8) -> Option<ProtoVersion> {
        match n {
            1 => Some(ProtoVersion::V1),
            2 => Some(ProtoVersion::V2),
            _ => None,
        }
    }
}

/// A parsed request line. `map: None` means the connection's default
/// namespace (always the case on a v1 connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUERY [@map] <host> [user]`.
    Query {
        /// Target namespace (`@name`, v2 only).
        map: Option<String>,
        /// Destination host or domain name.
        host: String,
        /// Mail user; `None` leaves the `%s` marker in place.
        user: Option<String>,
    },
    /// `MQUERY [@map] <host[:user]>...` (v2): batched queries, answered
    /// with one response line per entry, in order, all pinned to one
    /// snapshot of one namespace.
    MultiQuery {
        /// Target namespace (`@name`).
        map: Option<String>,
        /// The (host, user) pairs, in wire order.
        queries: Vec<(String, Option<String>)>,
    },
    /// `PROTO <n>`: negotiate the protocol version.
    Proto {
        /// The requested version.
        version: ProtoVersion,
    },
    /// `STATS [@map]`.
    Stats {
        /// Target namespace (`@name`, v2 only).
        map: Option<String>,
    },
    /// `RELOAD [@map]`: rebuild one namespace from its source.
    Reload {
        /// Target namespace (`@name`, v2 only).
        map: Option<String>,
    },
    /// `HEALTH [@map]`.
    Health {
        /// Target namespace (`@name`, v2 only).
        map: Option<String>,
    },
    /// `PATH [@map] <src> <dst>` (v2): the point-to-point route from
    /// `src` to `dst`. A literal `*` source asks instead for the
    /// one-hop reverse listing — every node with a direct link to
    /// `dst`.
    Path {
        /// Target namespace (`@name`).
        map: Option<String>,
        /// The source host, or the literal `*` for a reverse listing.
        src: String,
        /// The destination host.
        dst: String,
    },
    /// `MAPS` (v2): list the served namespaces.
    Maps,
    /// `METRICS [@map]` (v2): Prometheus text exposition of the
    /// latency histograms, counters, and reload phase timings.
    Metrics {
        /// Restrict to one namespace (`@name`); `None` exposes all.
        map: Option<String>,
    },
    /// `SLOWLOG [@map]` (v2): the worst-N slowest requests.
    SlowLog {
        /// Restrict to one namespace (`@name`); `None` merges all.
        map: Option<String>,
    },
    /// `SHUTDOWN` (v2): drain and stop the daemon.
    Shutdown,
    /// `QUIT`.
    Quit,
}

/// The verbs that accept an `@map` qualifier at v2.
fn takes_map_qualifier(upper_verb: &str) -> bool {
    matches!(
        upper_verb,
        "QUERY" | "MQUERY" | "PATH" | "STATS" | "RELOAD" | "HEALTH" | "METRICS" | "SLOWLOG"
    )
}

/// Parses one request line (without its newline) under the
/// connection's negotiated protocol version.
///
/// Version gating happens here so a v1 connection is byte-for-byte the
/// PR-1 protocol: `MQUERY` on a v1 connection is `unknown verb
/// \`MQUERY\``, exactly as the old daemon answered, and a `@...` token
/// is an ordinary argument (`QUERY @x u` queries the host `@x`).
/// `PROTO` itself is recognized at every version — it is how a
/// connection leaves v1.
pub fn parse_request(line: &str, proto: ProtoVersion) -> Result<Request, String> {
    let mut words = line.split_whitespace().peekable();
    let verb = words.next().ok_or_else(|| "empty request".to_string())?;
    let upper = verb.to_ascii_uppercase();

    // The optional v2 `@map` qualifier sits directly after the verb.
    // At v1 a `@...` token is not special, so old sessions replay
    // byte-identically.
    let mut map = None;
    if proto >= ProtoVersion::V2 && takes_map_qualifier(&upper) {
        if let Some(tok) = words.peek() {
            if let Some(name) = tok.strip_prefix('@') {
                if name.is_empty() {
                    return Err("empty map name after `@`".to_string());
                }
                map = Some(name.to_string());
                words.next();
            }
        }
    }

    let req = match upper.as_str() {
        "QUERY" => {
            let host = words
                .next()
                .ok_or_else(|| "QUERY needs a host".to_string())?
                .to_string();
            let user = words.next().map(str::to_string);
            Request::Query { map, host, user }
        }
        "MQUERY" if proto >= ProtoVersion::V2 => {
            // v1 QUERY cannot express an empty host or user; v2 must
            // not either, or `:u` would slip past validation and
            // resolve `""` through a default route.
            let queries: Vec<(String, Option<String>)> = words
                .by_ref()
                .map(|tok| match tok.split_once(':') {
                    Some((host, user)) if !host.is_empty() && !user.is_empty() => {
                        Ok((host.to_string(), Some(user.to_string())))
                    }
                    Some(_) => Err(format!("empty host or user in token `{tok}`")),
                    None => Ok((tok.to_string(), None)),
                })
                .collect::<Result<_, String>>()?;
            if queries.is_empty() {
                return Err("MQUERY needs at least one host".to_string());
            }
            return Ok(Request::MultiQuery { map, queries });
        }
        "PROTO" => {
            let n = words
                .next()
                .ok_or_else(|| "PROTO needs a version".to_string())?;
            let version = n
                .parse::<u8>()
                .ok()
                .and_then(ProtoVersion::from_number)
                .ok_or_else(|| format!("unsupported protocol version `{n}`"))?;
            Request::Proto { version }
        }
        "PATH" if proto >= ProtoVersion::V2 => {
            let src = words
                .next()
                .ok_or_else(|| "PATH needs a source and a destination".to_string())?
                .to_string();
            let dst = words
                .next()
                .ok_or_else(|| "PATH needs a destination".to_string())?
                .to_string();
            Request::Path { map, src, dst }
        }
        "STATS" => Request::Stats { map },
        "RELOAD" => Request::Reload { map },
        "HEALTH" => Request::Health { map },
        "MAPS" if proto >= ProtoVersion::V2 => Request::Maps,
        "METRICS" if proto >= ProtoVersion::V2 => Request::Metrics { map },
        "SLOWLOG" if proto >= ProtoVersion::V2 => Request::SlowLog { map },
        "SHUTDOWN" if proto >= ProtoVersion::V2 => Request::Shutdown,
        "QUIT" => Request::Quit,
        // The uppercased form, exactly as v1 always reported it.
        _ => return Err(format!("unknown verb `{upper}`")),
    };
    if let Some(extra) = words.next() {
        return Err(format!("trailing argument `{extra}`"));
    }
    Ok(req)
}

/// A response line (without its newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `200` — a route for a successful `QUERY`.
    Route(String),
    /// `404` — the table has no route to the host.
    NoRoute(String),
    /// `200` — `STATS` payload.
    Stats {
        /// The namespace, echoed back for qualified requests (`None`
        /// keeps the unqualified line byte-identical to v1).
        map: Option<String>,
        /// The `key=value ...` counter payload.
        body: String,
    },
    /// `200` — `RELOAD` swapped in a new table.
    Reloaded {
        /// The namespace, echoed back for qualified requests (`None`
        /// keeps the unqualified line byte-identical to v1).
        map: Option<String>,
        /// Generation now serving.
        generation: u64,
        /// Entries in the new table.
        entries: usize,
    },
    /// `200` — `HEALTH` payload.
    Health {
        /// The namespace, echoed back for qualified requests.
        map: Option<String>,
        /// Generation now serving.
        generation: u64,
        /// Entries in the serving table.
        entries: usize,
    },
    /// `200` — a point-to-point route for a successful `PATH`.
    Path {
        /// The namespace, echoed back for qualified requests.
        map: Option<String>,
        /// Total cost of the path under the serving cost model.
        cost: u64,
        /// Visible hop count (networks and domains hidden).
        hops: u32,
        /// The printed route, `%s` marker included.
        route: String,
    },
    /// `200` — a `PATH * <dst>` reverse listing: the one-hop
    /// neighbors with a direct link to the destination, as
    /// `name(cost)` entries sorted by node.
    Via {
        /// The namespace, echoed back for qualified requests.
        map: Option<String>,
        /// The destination the listing is about.
        dst: String,
        /// `(neighbor, cheapest folded edge cost)` pairs.
        entries: Vec<(String, u64)>,
    },
    /// `200` — `MAPS` payload: the served namespaces, in declaration
    /// order, and the default one.
    Maps {
        /// Every namespace name, in declaration order.
        names: Vec<String>,
        /// The namespace unqualified requests go to.
        default: String,
    },
    /// `200` — `METRICS` header announcing `lines` payload lines.
    MetricsHeader {
        /// Number of [`Response::Payload`] lines that follow.
        lines: usize,
    },
    /// `200` — `SLOWLOG` header announcing `entries` payload lines.
    SlowLogHeader {
        /// Number of [`Response::Payload`] lines that follow.
        entries: usize,
    },
    /// `200` — one verbatim payload line of a multi-line response
    /// (`METRICS` exposition text, one `SLOWLOG` entry). Carries no
    /// status-code prefix on the wire; the preceding header frames it.
    Payload(String),
    /// `200` — `PROTO` accepted; the connection now speaks `version`.
    Proto {
        /// The negotiated version.
        version: ProtoVersion,
    },
    /// `200` — `SHUTDOWN` accepted; the daemon is draining.
    ShuttingDown,
    /// `200` — answer to `QUIT`.
    Bye,
    /// `400` — the request line did not parse (or named an unknown
    /// map).
    BadRequest(String),
    /// `500` — a server-side failure (reload error, backend I/O, ...).
    Failure(String),
}

impl Response {
    /// The numeric status code.
    pub fn code(&self) -> u16 {
        match self {
            Response::Route(_)
            | Response::Path { .. }
            | Response::Via { .. }
            | Response::Stats { .. }
            | Response::Reloaded { .. }
            | Response::Health { .. }
            | Response::Maps { .. }
            | Response::MetricsHeader { .. }
            | Response::SlowLogHeader { .. }
            | Response::Payload(_)
            | Response::Proto { .. }
            | Response::ShuttingDown
            | Response::Bye => 200,
            Response::NoRoute(_) => 404,
            Response::BadRequest(_) => 400,
            Response::Failure(_) => 500,
        }
    }
}

/// Keeps protocol framing intact whatever ends up in a payload: one
/// response is always exactly one line.
fn one_line(s: &str) -> String {
    if s.contains('\n') || s.contains('\r') {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_string()
    }
}

/// The `map=<name> ` prefix qualified responses carry (empty for
/// unqualified ones, keeping them byte-identical to v1).
fn map_prefix(map: &Option<String>) -> String {
    match map {
        Some(name) => format!("map={} ", one_line(name)),
        None => String::new(),
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Route(route) => write!(f, "200 {}", one_line(route)),
            Response::Path {
                map,
                cost,
                hops,
                route,
            } => {
                write!(
                    f,
                    "200 {}cost={cost} hops={hops} route={}",
                    map_prefix(map),
                    one_line(route)
                )
            }
            Response::Via { map, dst, entries } => {
                write!(
                    f,
                    "200 {}via dst={} count={}",
                    map_prefix(map),
                    one_line(dst),
                    entries.len()
                )?;
                if !entries.is_empty() {
                    let list = entries
                        .iter()
                        .map(|(name, cost)| format!("{}({cost})", one_line(name)))
                        .collect::<Vec<_>>()
                        .join(",");
                    write!(f, " {list}")?;
                }
                Ok(())
            }
            Response::NoRoute(host) => write!(f, "404 no route to {}", one_line(host)),
            Response::Stats { map, body } => {
                write!(f, "200 {}{}", map_prefix(map), one_line(body))
            }
            Response::Reloaded {
                map,
                generation,
                entries,
            } => {
                write!(
                    f,
                    "200 reloaded {}generation={generation} entries={entries}",
                    map_prefix(map)
                )
            }
            Response::Health {
                map,
                generation,
                entries,
            } => {
                write!(
                    f,
                    "200 ok {}generation={generation} entries={entries}",
                    map_prefix(map)
                )
            }
            Response::Maps { names, default } => {
                write!(
                    f,
                    "200 maps={} default={}",
                    one_line(&names.join(",")),
                    one_line(default)
                )
            }
            Response::MetricsHeader { lines } => write!(f, "200 metrics lines={lines}"),
            Response::SlowLogHeader { entries } => {
                write!(f, "200 slowlog entries={entries}")
            }
            Response::Payload(line) => write!(f, "{}", one_line(line)),
            Response::Proto { version } => write!(f, "200 proto={}", version.number()),
            Response::ShuttingDown => write!(f, "200 shutting down"),
            Response::Bye => write!(f, "200 bye"),
            Response::BadRequest(why) => write!(f, "400 {}", one_line(why)),
            Response::Failure(why) => write!(f, "500 {}", one_line(why)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1(line: &str) -> Result<Request, String> {
        parse_request(line, ProtoVersion::V1)
    }

    fn v2(line: &str) -> Result<Request, String> {
        parse_request(line, ProtoVersion::V2)
    }

    #[test]
    fn query_forms() {
        assert_eq!(
            v1("QUERY seismo").unwrap(),
            Request::Query {
                map: None,
                host: "seismo".into(),
                user: None
            }
        );
        assert_eq!(
            v1("query caip.rutgers.edu pleasant").unwrap(),
            Request::Query {
                map: None,
                host: "caip.rutgers.edu".into(),
                user: Some("pleasant".into())
            }
        );
        // Leading/trailing whitespace is tolerated.
        assert_eq!(
            v1("  QUERY  seismo  honey  ").unwrap(),
            Request::Query {
                map: None,
                host: "seismo".into(),
                user: Some("honey".into())
            }
        );
    }

    #[test]
    fn bare_verbs() {
        assert_eq!(v1("STATS").unwrap(), Request::Stats { map: None });
        assert_eq!(v1("reload").unwrap(), Request::Reload { map: None });
        assert_eq!(v1("Health").unwrap(), Request::Health { map: None });
        assert_eq!(v1("quit").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed() {
        assert!(v1("").is_err());
        assert!(v1("   ").is_err());
        assert!(v1("QUERY").is_err());
        assert!(v1("QUERY a b c").is_err());
        assert!(v1("STATS now").is_err());
        assert!(v1("EHLO example.org").is_err());
    }

    #[test]
    fn proto_negotiation_is_available_at_v1() {
        assert_eq!(
            v1("PROTO 2").unwrap(),
            Request::Proto {
                version: ProtoVersion::V2
            }
        );
        assert_eq!(
            v1("proto 1").unwrap(),
            Request::Proto {
                version: ProtoVersion::V1
            }
        );
        assert!(v1("PROTO").is_err());
        assert!(v1("PROTO 3").is_err());
        assert!(v1("PROTO two").is_err());
        assert!(v1("PROTO 2 2").is_err());
    }

    #[test]
    fn v2_verbs_are_unknown_at_v1() {
        // Byte-compat with the PR-1 daemon: same 400 text.
        assert_eq!(
            v1("MQUERY a b").unwrap_err(),
            "unknown verb `MQUERY`".to_string()
        );
        assert_eq!(
            v1("SHUTDOWN").unwrap_err(),
            "unknown verb `SHUTDOWN`".to_string()
        );
        assert_eq!(v1("MAPS").unwrap_err(), "unknown verb `MAPS`".to_string());
        assert_eq!(
            v1("METRICS").unwrap_err(),
            "unknown verb `METRICS`".to_string()
        );
        assert_eq!(
            v1("slowlog").unwrap_err(),
            "unknown verb `SLOWLOG`".to_string()
        );
    }

    #[test]
    fn metrics_and_slowlog_at_v2() {
        assert_eq!(v2("METRICS").unwrap(), Request::Metrics { map: None });
        assert_eq!(v2("metrics").unwrap(), Request::Metrics { map: None });
        assert_eq!(
            v2("METRICS @east").unwrap(),
            Request::Metrics {
                map: Some("east".into())
            }
        );
        assert_eq!(v2("SLOWLOG").unwrap(), Request::SlowLog { map: None });
        assert_eq!(
            v2("slowlog @east").unwrap(),
            Request::SlowLog {
                map: Some("east".into())
            }
        );
        assert!(v2("METRICS extra").is_err());
        assert!(v2("METRICS @").is_err());
        assert!(v2("SLOWLOG @a @b").is_err());
    }

    #[test]
    fn map_qualifier_is_not_special_at_v1() {
        // At v1 a `@...` token is an ordinary argument — the exact
        // bytes a PR-2 daemon would have parsed.
        assert_eq!(
            v1("QUERY @regional seismo").unwrap(),
            Request::Query {
                map: None,
                host: "@regional".into(),
                user: Some("seismo".into())
            }
        );
        assert_eq!(
            v1("STATS @regional").unwrap_err(),
            "trailing argument `@regional`".to_string()
        );
        assert_eq!(
            v1("RELOAD @regional").unwrap_err(),
            "trailing argument `@regional`".to_string()
        );
    }

    #[test]
    fn map_qualifier_at_v2() {
        assert_eq!(
            v2("QUERY @regional seismo rick").unwrap(),
            Request::Query {
                map: Some("regional".into()),
                host: "seismo".into(),
                user: Some("rick".into())
            }
        );
        assert_eq!(
            v2("MQUERY @regional seismo duke:fred").unwrap(),
            Request::MultiQuery {
                map: Some("regional".into()),
                queries: vec![
                    ("seismo".into(), None),
                    ("duke".into(), Some("fred".into())),
                ]
            }
        );
        assert_eq!(
            v2("stats @Regional").unwrap(),
            Request::Stats {
                map: Some("Regional".into())
            }
        );
        assert_eq!(
            v2("RELOAD @a").unwrap(),
            Request::Reload {
                map: Some("a".into())
            }
        );
        assert_eq!(
            v2("HEALTH @a").unwrap(),
            Request::Health {
                map: Some("a".into())
            }
        );
        // A qualifier alone is not a host; an empty name is rejected.
        assert!(v2("QUERY @regional").is_err());
        assert!(v2("QUERY @ seismo").is_err());
        assert!(v2("STATS @").is_err());
        // Only the token right after the verb is a qualifier: later
        // `@...` tokens are ordinary arguments (here, the user).
        assert_eq!(
            v2("QUERY seismo @regional").unwrap(),
            Request::Query {
                map: None,
                host: "seismo".into(),
                user: Some("@regional".into())
            }
        );
        assert!(v2("STATS @a @b").is_err());
        // MAPS and SHUTDOWN take no qualifier.
        assert!(v2("MAPS @a").is_err());
        assert!(v2("SHUTDOWN @a").is_err());
    }

    #[test]
    fn path_verb_at_v2() {
        assert_eq!(
            v2("PATH unc seismo").unwrap(),
            Request::Path {
                map: None,
                src: "unc".into(),
                dst: "seismo".into()
            }
        );
        assert_eq!(
            v2("path @regional duke mit-ai").unwrap(),
            Request::Path {
                map: Some("regional".into()),
                src: "duke".into(),
                dst: "mit-ai".into()
            }
        );
        // The literal `*` source is the reverse one-hop spelling; it
        // is not special at parse time.
        assert_eq!(
            v2("PATH * seismo").unwrap(),
            Request::Path {
                map: None,
                src: "*".into(),
                dst: "seismo".into()
            }
        );
        // Arity is exact.
        assert!(v2("PATH").is_err());
        assert!(v2("PATH unc").is_err());
        assert!(v2("PATH @regional unc").is_err());
        assert!(v2("PATH unc seismo extra").is_err());
        assert!(v2("PATH @ unc seismo").is_err());
        // Only the token right after the verb is a qualifier.
        assert_eq!(
            v2("PATH unc @regional").unwrap(),
            Request::Path {
                map: None,
                src: "unc".into(),
                dst: "@regional".into()
            }
        );
    }

    #[test]
    fn path_is_unknown_at_v1() {
        assert_eq!(
            v1("PATH unc seismo").unwrap_err(),
            "unknown verb `PATH`".to_string()
        );
        assert_eq!(
            v1("path * seismo").unwrap_err(),
            "unknown verb `PATH`".to_string()
        );
    }

    #[test]
    fn path_response_lines() {
        assert_eq!(
            Response::Path {
                map: None,
                cost: 395,
                hops: 2,
                route: "duke!mit-ai!%s".into()
            }
            .to_string(),
            "200 cost=395 hops=2 route=duke!mit-ai!%s"
        );
        assert_eq!(
            Response::Path {
                map: Some("east".into()),
                cost: 0,
                hops: 0,
                route: "%s".into()
            }
            .to_string(),
            "200 map=east cost=0 hops=0 route=%s"
        );
        assert_eq!(
            Response::Via {
                map: None,
                dst: "seismo".into(),
                entries: vec![("duke".into(), 200), ("unc".into(), 95)]
            }
            .to_string(),
            "200 via dst=seismo count=2 duke(200),unc(95)"
        );
        assert_eq!(
            Response::Via {
                map: Some("east".into()),
                dst: "leaf".into(),
                entries: vec![]
            }
            .to_string(),
            "200 map=east via dst=leaf count=0"
        );
    }

    #[test]
    fn maps_verb_at_v2() {
        assert_eq!(v2("MAPS").unwrap(), Request::Maps);
        assert_eq!(v2("maps").unwrap(), Request::Maps);
        assert!(v2("MAPS extra").is_err());
    }

    #[test]
    fn mquery_parses_hosts_and_users() {
        assert_eq!(
            v2("MQUERY seismo duke:fred .edu").unwrap(),
            Request::MultiQuery {
                map: None,
                queries: vec![
                    ("seismo".into(), None),
                    ("duke".into(), Some("fred".into())),
                    (".edu".into(), None),
                ]
            }
        );
        assert!(v2("MQUERY").is_err());
        assert!(v2("MQUERY @regional").is_err());
        // Empty host or user tokens are rejected, matching what v1
        // QUERY can express.
        assert!(v2("MQUERY :alice").is_err());
        assert!(v2("MQUERY host:").is_err());
        assert!(v2("MQUERY ok :alice ok2").is_err());
        assert_eq!(v2("SHUTDOWN").unwrap(), Request::Shutdown);
        assert!(v2("SHUTDOWN now").is_err());
    }

    #[test]
    fn response_lines() {
        assert_eq!(
            Response::Route("duke!research!%s".into()).to_string(),
            "200 duke!research!%s"
        );
        assert_eq!(
            Response::NoRoute("nowhere".into()).to_string(),
            "404 no route to nowhere"
        );
        assert_eq!(
            Response::Reloaded {
                map: None,
                generation: 3,
                entries: 17
            }
            .to_string(),
            "200 reloaded generation=3 entries=17"
        );
        assert_eq!(
            Response::Reloaded {
                map: Some("regional".into()),
                generation: 3,
                entries: 17
            }
            .to_string(),
            "200 reloaded map=regional generation=3 entries=17"
        );
        assert_eq!(
            Response::Health {
                map: None,
                generation: 0,
                entries: 2
            }
            .to_string(),
            "200 ok generation=0 entries=2"
        );
        assert_eq!(
            Response::Health {
                map: Some("a".into()),
                generation: 0,
                entries: 2
            }
            .to_string(),
            "200 ok map=a generation=0 entries=2"
        );
        assert_eq!(
            Response::Maps {
                names: vec!["a".into(), "b".into(), "c".into()],
                default: "a".into()
            }
            .to_string(),
            "200 maps=a,b,c default=a"
        );
        assert_eq!(
            Response::Proto {
                version: ProtoVersion::V2
            }
            .to_string(),
            "200 proto=2"
        );
        assert_eq!(
            Response::MetricsHeader { lines: 42 }.to_string(),
            "200 metrics lines=42"
        );
        assert_eq!(
            Response::SlowLogHeader { entries: 0 }.to_string(),
            "200 slowlog entries=0"
        );
        assert_eq!(
            Response::Payload("pathalias_queries_total{map=\"a\"} 7".into()).to_string(),
            "pathalias_queries_total{map=\"a\"} 7"
        );
        assert_eq!(Response::Payload(String::new()).code(), 200);
        assert_eq!(Response::ShuttingDown.to_string(), "200 shutting down");
        assert_eq!(Response::Bye.to_string(), "200 bye");
        assert_eq!(Response::BadRequest("why".into()).code(), 400);
        assert_eq!(Response::Failure("why".into()).code(), 500);
    }

    #[test]
    fn payload_newlines_cannot_break_framing() {
        let r = Response::Failure("two\nlines\r\nhere".into()).to_string();
        assert!(!r.contains('\n'));
        assert!(!r.contains('\r'));
        let m = Response::Maps {
            names: vec!["a\nb".into()],
            default: "a\rb".into(),
        }
        .to_string();
        assert!(!m.contains('\n') && !m.contains('\r'));
    }
}
