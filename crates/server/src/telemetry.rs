//! Per-map latency telemetry: histograms, the slow-query log, and
//! reload phase timings.
//!
//! [`MapTelemetry`] is the per-namespace bundle the daemon threads
//! through request dispatch: one log2 histogram per verb shape
//! (`QUERY`, `MQUERY` per batch and per item, `PATH`, `RELOAD`), a
//! worst-N
//! slow-query log, and the latest reload's pipeline
//! [`PhaseTimings`]. Everything here is exposed over the protocol-v2
//! `METRICS` (Prometheus text exposition) and `SLOWLOG` verbs —
//! `STATS` keeps its PR-1 byte format and knows nothing of this
//! module.

use pathalias_core::PhaseTimings;
use pathalias_telemetry::{unix_ms, Histogram, SlowEntry, SlowLog};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// How many slow requests each map retains (worst-N by latency).
pub const SLOWLOG_CAPACITY: usize = 32;

/// A [`Duration`] as saturating nanoseconds — the unit histograms and
/// the slow log record in.
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One namespace's latency telemetry, shared by every connection
/// thread serving that map (all recording is lock-free except slow
/// enough requests entering the slow log).
#[derive(Debug)]
pub struct MapTelemetry {
    /// `QUERY` latency, per request.
    pub query: Histogram,
    /// `MQUERY` latency, per batch (whole request line).
    pub mquery_batch: Histogram,
    /// `MQUERY` latency, per item within a batch.
    pub mquery_item: Histogram,
    /// `PATH` latency, per request (point-to-point and `PATH *`).
    pub path: Histogram,
    /// `RELOAD` duration (wire-triggered and `--watch`-triggered).
    pub reload: Histogram,
    /// The worst-[`SLOWLOG_CAPACITY`] requests against this map.
    pub slowlog: SlowLog,
    /// Pipeline phase timings of the latest reload (`None` until the
    /// first one). Stages skipped by the stage cache report zero.
    reload_phases: Mutex<Option<PhaseTimings>>,
}

impl Default for MapTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl MapTelemetry {
    /// Fresh, empty telemetry for one map.
    pub fn new() -> MapTelemetry {
        MapTelemetry {
            query: Histogram::new(),
            mquery_batch: Histogram::new(),
            mquery_item: Histogram::new(),
            path: Histogram::new(),
            reload: Histogram::new(),
            slowlog: SlowLog::new(SLOWLOG_CAPACITY),
            reload_phases: Mutex::new(None),
        }
    }

    /// Records the latest reload's per-phase timings.
    pub fn set_reload_phases(&self, timings: PhaseTimings) {
        if let Ok(mut slot) = self.reload_phases.lock() {
            *slot = Some(timings);
        }
    }

    /// The latest reload's per-phase timings, if any reload ran.
    pub fn reload_phases(&self) -> Option<PhaseTimings> {
        self.reload_phases.lock().ok().and_then(|slot| *slot)
    }

    /// Offers a finished request to the slow log. The lock-free floor
    /// check runs first, so steady-state traffic pays one atomic load
    /// and no allocation.
    pub fn observe_slow(
        &self,
        verb: &'static str,
        map: &str,
        host: &str,
        latency_ns: u64,
        outcome: &'static str,
    ) {
        if !self.slowlog.would_admit(latency_ns) {
            return;
        }
        self.slowlog.record(SlowEntry {
            unix_ms: unix_ms(),
            map: map.to_string(),
            verb,
            host: host.to_string(),
            latency_ns,
            outcome,
        });
    }
}

/// Renders one slow-log entry as the `SLOWLOG` payload line:
/// whitespace-splittable `key=value` pairs, host `-` when the verb has
/// none.
pub fn render_slow_entry(entry: &SlowEntry) -> String {
    let mut line = String::with_capacity(80);
    let host: &str = if entry.host.is_empty() {
        "-"
    } else {
        &entry.host
    };
    let _ = write!(
        line,
        "ts={} map={} verb={} host={} latency_ns={} outcome={}",
        entry.unix_ms, entry.map, entry.verb, host, entry.latency_ns, entry.outcome
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_slow_keeps_the_worst_requests() {
        let t = MapTelemetry::new();
        for i in 0..(SLOWLOG_CAPACITY as u64 + 10) {
            t.observe_slow("QUERY", "default", "host", 1_000 + i, "ok");
        }
        let snap = t.slowlog.snapshot();
        assert_eq!(snap.len(), SLOWLOG_CAPACITY);
        assert_eq!(snap[0].latency_ns, 1_000 + SLOWLOG_CAPACITY as u64 + 9);
    }

    #[test]
    fn slow_entry_renders_one_splittable_line() {
        let entry = SlowEntry {
            unix_ms: 1_700_000_000_000,
            map: "east".into(),
            verb: "RELOAD",
            host: String::new(),
            latency_ns: 5_000_000,
            outcome: "ok",
        };
        let line = render_slow_entry(&entry);
        assert_eq!(
            line,
            "ts=1700000000000 map=east verb=RELOAD host=- latency_ns=5000000 outcome=ok"
        );
        assert_eq!(line.split_whitespace().count(), 6);
    }

    #[test]
    fn reload_phases_round_trip() {
        let t = MapTelemetry::new();
        assert!(t.reload_phases().is_none());
        t.set_reload_phases(PhaseTimings {
            parse: Duration::from_millis(3),
            ..PhaseTimings::default()
        });
        assert_eq!(t.reload_phases().unwrap().parse, Duration::from_millis(3));
    }
}
