//! Table sources and hot reload.
//!
//! The daemon can be pointed at any of the four shapes route data
//! takes in this project: a PADB1 disk database, a linear route file
//! (pathalias output), a PAGF1 frozen-graph snapshot (`pathalias
//! freeze` output, re-entering the staged pipeline at the frozen
//! stage), or raw map files that get run through the staged
//! parse → build → freeze → map → print pipeline. `RELOAD`
//! re-runs the same source and swaps the result in atomically; while
//! the rebuild runs, every query keeps being served from the old
//! snapshot, and a failed rebuild leaves the old table serving
//! untouched.
//!
//! Map-file sources go through the staged API and keep the expensive
//! stages cached: the parsed/built/frozen snapshot is fingerprinted
//! against the input files (path, mtime, size), so a `RELOAD` whose
//! map files have not changed — because only mapping options changed,
//! or because an operator hits reload twice — skips straight to the
//! map stage instead of re-parsing the world.

use pathalias_core::{
    parallel, Frozen, FrozenGraph, MapOptions, Options, Parsed, PhaseTimings, SnapshotError,
};
use pathalias_mailer::{
    disk::DiskDb, disk::DiskError, disk::MappedDb, BoxedResolver, DbError, RouteDb, SharedRouteDb,
};
use pathalias_router::PointToPoint;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

/// A change-detection fingerprint for a set of source files.
pub(crate) type Fingerprint = Vec<(PathBuf, Option<SystemTime>, u64)>;

/// Computes the (path, mtime, size) fingerprint of `paths`.
pub(crate) fn fingerprint<'a>(
    paths: impl IntoIterator<Item = &'a PathBuf>,
) -> std::io::Result<Fingerprint> {
    paths
        .into_iter()
        .map(|p| {
            let meta = std::fs::metadata(p)?;
            Ok((p.clone(), meta.modified().ok(), meta.len()))
        })
        .collect()
}

/// The cached expensive stages of a map-file source, shared across
/// clones of the [`MapSource`] (the daemon clones its source into
/// connection state).
#[derive(Clone, Default)]
pub struct StageCache(Arc<Mutex<Option<CachedStages>>>);

struct CachedStages {
    fingerprint: Fingerprint,
    ignore_case: bool,
    frozen: Frozen,
}

impl StageCache {
    /// The cached frozen snapshot, if any (used by tests to observe
    /// stage reuse).
    pub fn snapshot(&self) -> Option<Arc<FrozenGraph>> {
        self.0
            .lock()
            .expect("stage cache poisoned")
            .as_ref()
            .map(|c| c.frozen.graph().clone())
    }
}

impl fmt::Debug for StageCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let filled = self.0.lock().map(|c| c.is_some()).unwrap_or(false);
        write!(f, "StageCache({})", if filled { "warm" } else { "empty" })
    }
}

/// Where the route table comes from.
#[derive(Debug, Clone)]
pub enum MapSource {
    /// A PADB1 file written by [`pathalias_mailer::disk::write_db`],
    /// loaded fully into memory.
    Padb(PathBuf),
    /// A PADB1 file served *in place* through
    /// [`MappedDb`]: only the index
    /// is loaded; names and routes stay on disk behind the kernel page
    /// cache, so tables larger than memory serve fine. `RELOAD`
    /// re-opens (and re-validates) the file.
    PadbMmap(PathBuf),
    /// A linear route file: pathalias output, `name\troute` lines.
    Routes(PathBuf),
    /// A PAGF1 frozen-graph snapshot written by `pathalias freeze`:
    /// the staged pipeline re-enters at the frozen stage, so a cold
    /// start skips parse/build/freeze entirely and a `RELOAD` whose
    /// snapshot file is unchanged skips even the load.
    FrozenSnapshot {
        /// The `.pagf` file.
        path: PathBuf,
        /// Mapping/printing options (`-l`, ...; the build-stage
        /// options are baked into the snapshot).
        options: Options,
        /// Cached frozen stage, keyed by the file's fingerprint.
        cache: StageCache,
    },
    /// Map files run through the staged pipeline on every (re)load,
    /// with the parse/build/freeze stages cached across reloads.
    Map {
        /// Input map files, parsed in order.
        files: Vec<PathBuf>,
        /// Pipeline options (`-l`, `-i`, ...).
        options: Options,
        /// Validate the rebuilt graph by mapping from this many extra
        /// sources (0 disables validation).
        validate_sources: usize,
        /// Worker threads for the validation fan-out.
        validate_threads: usize,
        /// Cached stages, keyed by the files' fingerprint.
        cache: StageCache,
    },
}

/// Why a (re)load failed. The old table keeps serving afterwards.
#[derive(Debug)]
pub enum LoadError {
    /// Reading a source file failed.
    Io(std::io::Error),
    /// The PADB1 file was corrupt.
    Disk(DiskError),
    /// The PAGF1 snapshot was corrupt.
    Snapshot(SnapshotError),
    /// The linear route file did not parse.
    Db(DbError),
    /// The map pipeline failed (parse or map error).
    Pipeline(pathalias_core::Error),
    /// Multi-source validation found an unmappable source.
    Validation(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o: {e}"),
            LoadError::Disk(e) => write!(f, "{e}"),
            LoadError::Snapshot(e) => write!(f, "{e}"),
            LoadError::Db(e) => write!(f, "route file: {e}"),
            LoadError::Pipeline(e) => write!(f, "pipeline: {e}"),
            LoadError::Validation(why) => write!(f, "validation: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DiskError> for LoadError {
    fn from(e: DiskError) -> Self {
        LoadError::Disk(e)
    }
}

impl From<SnapshotError> for LoadError {
    fn from(e: SnapshotError) -> Self {
        LoadError::Snapshot(e)
    }
}

impl MapSource {
    /// A map-file source with validation defaults: a handful of extra
    /// mapping sources checked on the machine's cores.
    pub fn map_files(files: Vec<PathBuf>, options: Options) -> MapSource {
        MapSource::Map {
            files,
            options,
            validate_sources: 4,
            validate_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            cache: StageCache::default(),
        }
    }

    /// A frozen-snapshot source with the default stage cache.
    pub fn frozen_snapshot(path: PathBuf, options: Options) -> MapSource {
        MapSource::FrozenSnapshot {
            path,
            options,
            cache: StageCache::default(),
        }
    }

    /// A short label for the source shape — what the CLI startup
    /// report and map-set listings show next to each namespace.
    pub fn kind(&self) -> &'static str {
        match self {
            MapSource::Padb(_) => "padb",
            MapSource::PadbMmap(_) => "padb-mmap",
            MapSource::Routes(_) => "routes",
            MapSource::FrozenSnapshot { .. } => "pagf",
            MapSource::Map { .. } => "map",
        }
    }

    /// The files whose modification should trigger a reload (what
    /// `serve --watch` polls).
    pub fn watch_paths(&self) -> Vec<PathBuf> {
        match self {
            MapSource::Padb(p) | MapSource::PadbMmap(p) | MapSource::Routes(p) => vec![p.clone()],
            MapSource::FrozenSnapshot { path, .. } => vec![path.clone()],
            MapSource::Map { files, .. } => files.clone(),
        }
    }

    /// Builds the serving backend from the source, as a boxed
    /// [`Resolver`](pathalias_mailer::Resolver). Pure with respect to
    /// serving state: the caller decides when (and whether) to swap.
    ///
    /// Every source except [`MapSource::PadbMmap`] materializes an
    /// in-memory table; `PadbMmap` opens the file for in-place serving
    /// without loading the blob at all.
    pub fn load_resolver(&self) -> Result<BoxedResolver, LoadError> {
        self.load_resolver_timed().map(|(resolver, _)| resolver)
    }

    /// [`MapSource::load_resolver`] plus the pipeline's per-phase
    /// timings for the load, so a reload can export where its time
    /// went. Stages skipped by the fingerprint cache (an unchanged
    /// `.pagf`, a `RELOAD` whose map files did not move) report zero —
    /// the zeros *are* the cache working.
    pub fn load_resolver_timed(&self) -> Result<(BoxedResolver, PhaseTimings), LoadError> {
        match self {
            MapSource::PadbMmap(path) => {
                let t0 = Instant::now();
                let resolver: BoxedResolver = Box::new(MappedDb::open(path)?);
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((resolver, timings))
            }
            other => {
                let (db, timings) = other.load_timed()?;
                Ok((Box::new(SharedRouteDb::new(db)), timings))
            }
        }
    }

    /// [`MapSource::load_resolver_timed`] plus the point-to-point
    /// engine, for sources that hold a frozen graph. Pipeline sources
    /// (`map`, `pagf`) build a [`PointToPoint`] over the mapped tree's
    /// *augmented* graph — the same snapshot (back links included) the
    /// printed table came from, so `PATH <home> <x>` and `QUERY <x>`
    /// answer byte-identically. Table-only sources (`routes`, `padb`,
    /// `padb-mmap`) have no graph and return `None`: the daemon
    /// refuses `PATH` on them.
    ///
    /// When a `.pagf` snapshot stored its reverse-index section and
    /// mapping invented no back links, the stored transpose is reused
    /// instead of rebuilt.
    pub fn load_serving_timed(
        &self,
    ) -> Result<(BoxedResolver, Option<Arc<PointToPoint>>, PhaseTimings), LoadError> {
        match self {
            MapSource::Padb(_) | MapSource::PadbMmap(_) | MapSource::Routes(_) => {
                let (resolver, timings) = self.load_resolver_timed()?;
                Ok((resolver, None, timings))
            }
            MapSource::FrozenSnapshot {
                path,
                options,
                cache,
            } => {
                let (frozen, mut timings) = snapshot_stage(path, cache)?;
                let (db, engine) = map_print_engine(&frozen, options, &mut timings)?;
                Ok((
                    Box::new(SharedRouteDb::new(db)),
                    Some(Arc::new(engine)),
                    timings,
                ))
            }
            MapSource::Map {
                files,
                options,
                validate_sources,
                validate_threads,
                cache,
            } => {
                let (frozen, mut timings) = frozen_stage(files, options, cache)?;
                let (db, engine) = map_print_engine(&frozen, options, &mut timings)?;
                if *validate_sources > 0 {
                    validate(frozen.graph(), *validate_sources, *validate_threads)?;
                }
                Ok((
                    Box::new(SharedRouteDb::new(db)),
                    Some(Arc::new(engine)),
                    timings,
                ))
            }
        }
    }

    /// Builds a fresh [`RouteDb`] from the source. For
    /// [`MapSource::PadbMmap`] this reads the whole table into memory
    /// (use [`MapSource::load_resolver`] to serve in place).
    pub fn load(&self) -> Result<RouteDb, LoadError> {
        self.load_timed().map(|(db, _)| db)
    }

    /// [`MapSource::load`] plus per-phase timings. Non-pipeline
    /// sources (PADB1, linear route files) report their whole ingest
    /// as the `parse` phase; pipeline sources report each stage they
    /// actually ran.
    pub fn load_timed(&self) -> Result<(RouteDb, PhaseTimings), LoadError> {
        match self {
            MapSource::Padb(path) | MapSource::PadbMmap(path) => {
                let t0 = Instant::now();
                let mut disk = DiskDb::open(path)?;
                let db = RouteDb::from_entries(disk.read_all()?);
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((db, timings))
            }
            MapSource::Routes(path) => {
                let t0 = Instant::now();
                let text = std::fs::read_to_string(path)?;
                let db = RouteDb::from_output(&text).map_err(LoadError::Db)?;
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((db, timings))
            }
            MapSource::FrozenSnapshot {
                path,
                options,
                cache,
            } => {
                // The snapshot was validated (checksum + structure)
                // when it was frozen and is re-validated on load, so
                // no multi-source mapping fan-out here — cold-start
                // latency is the whole point of this source.
                let (frozen, mut timings) = snapshot_stage(path, cache)?;
                let t0 = Instant::now();
                let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
                timings.map = t0.elapsed();
                let t0 = Instant::now();
                let printed = mapped.print(options);
                timings.print = t0.elapsed();
                Ok((RouteDb::from_table(&printed.routes), timings))
            }
            MapSource::Map {
                files,
                options,
                validate_sources,
                validate_threads,
                cache,
            } => {
                let (frozen, mut timings) = frozen_stage(files, options, cache)?;
                let t0 = Instant::now();
                let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
                timings.map = t0.elapsed();
                let t0 = Instant::now();
                let printed = mapped.print(options);
                timings.print = t0.elapsed();
                if *validate_sources > 0 {
                    validate(frozen.graph(), *validate_sources, *validate_threads)?;
                }
                Ok((RouteDb::from_table(&printed.routes), timings))
            }
        }
    }
}

/// The map and print stages plus the point-to-point engine over the
/// mapped tree's augmented graph. The engine and the table come from
/// the *same* mapping run, so they can never disagree about what the
/// world looks like.
fn map_print_engine(
    frozen: &Frozen,
    options: &Options,
    timings: &mut PhaseTimings,
) -> Result<(RouteDb, PointToPoint), LoadError> {
    let t0 = Instant::now();
    let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
    timings.map = t0.elapsed();
    let t0 = Instant::now();
    let printed = mapped.print(options);
    timings.print = t0.elapsed();
    let aug = mapped.tree.frozen().clone();
    // Back-link invention replaces the snapshot graph; only when the
    // tree still points at the very same graph are the stored sections
    // (transpose, hierarchy) valid. A stage that carried a hierarchy is
    // an operator opt-in (`freeze --ch`), so when back links changed
    // the graph the hierarchy is rebuilt over the augmented snapshot
    // rather than silently lost.
    let engine = if Arc::ptr_eq(&aug, frozen.graph()) {
        match frozen.reverse_index() {
            Some(rev) => PointToPoint::with_sections(
                aug,
                rev.clone(),
                frozen.hierarchy().cloned(),
                options.cost_model,
            ),
            None => PointToPoint::new(aug, options.cost_model),
        }
    } else if frozen.hierarchy().is_some() {
        PointToPoint::with_fresh_hierarchy(aug, options.cost_model)
    } else {
        PointToPoint::new(aug, options.cost_model)
    };
    Ok((RouteDb::from_table(&printed.routes), engine))
}

/// The parse/build/freeze stages for a map-file source, reusing the
/// cached snapshot when the files' fingerprint is unchanged (the
/// "reload with only mapping options changed" fast path). The
/// returned timings cover the stages that actually ran — all zero on
/// a cache hit.
fn frozen_stage(
    files: &[PathBuf],
    options: &Options,
    cache: &StageCache,
) -> Result<(Frozen, PhaseTimings), LoadError> {
    let fp = fingerprint(files)?;
    let mut slot = cache.0.lock().expect("stage cache poisoned");
    if let Some(cached) = slot.as_ref() {
        // `ignore_case` is the one option the build stage depends on.
        if cached.fingerprint == fp && cached.ignore_case == options.ignore_case {
            return Ok((cached.frozen.clone(), PhaseTimings::default()));
        }
    }
    let mut timings = PhaseTimings::default();
    let t0 = Instant::now();
    let mut parsed = Parsed::new();
    parsed.push_files(files)?;
    timings.parse = t0.elapsed();
    let built = parsed.build(options).map_err(LoadError::Pipeline)?;
    timings.build = built.build_time;
    let frozen = built.freeze();
    timings.freeze = frozen.freeze_time;
    *slot = Some(CachedStages {
        fingerprint: fp,
        ignore_case: options.ignore_case,
        frozen: frozen.clone(),
    });
    Ok((frozen, timings))
}

/// The frozen stage for a snapshot source: re-read the `.pagf` file
/// only when its fingerprint changed, so a `RELOAD` with an unchanged
/// snapshot re-enters at the map stage just like the map-file path.
/// A fresh read reports its load time as the `freeze` phase; a cache
/// hit reports zero.
fn snapshot_stage(path: &PathBuf, cache: &StageCache) -> Result<(Frozen, PhaseTimings), LoadError> {
    let fp = fingerprint(std::iter::once(path))?;
    let mut slot = cache.0.lock().expect("stage cache poisoned");
    if let Some(cached) = slot.as_ref() {
        // `ignore_case` is baked into the snapshot file, so the
        // fingerprint alone decides reuse.
        if cached.fingerprint == fp {
            return Ok((cached.frozen.clone(), PhaseTimings::default()));
        }
    }
    let frozen = Frozen::from_snapshot(path)?;
    let timings = PhaseTimings {
        freeze: frozen.freeze_time,
        ..PhaseTimings::default()
    };
    *slot = Some(CachedStages {
        fingerprint: fp,
        ignore_case: frozen.graph().ignore_case(),
        frozen: frozen.clone(),
    });
    Ok((frozen, timings))
}

/// The rebuilt graph must be mappable from more vantage points than
/// just the local host: fan the read-only mapper out over a sample of
/// sources — all sharing the one frozen snapshot — and refuse the swap
/// if any of them fails outright.
fn validate(frozen: &Arc<FrozenGraph>, sources: usize, threads: usize) -> Result<(), LoadError> {
    // Only plain, live hosts make sense as mapping sources: `delete`d
    // nodes are defined to fail, and nets/domains are not places mail
    // originates.
    let sample: Vec<_> = frozen
        .node_ids()
        .filter(|&id| frozen.is_mappable(id) && !frozen.is_net(id))
        .take(sources)
        .collect();
    if sample.is_empty() {
        return Err(LoadError::Validation("rebuilt map has no hosts".into()));
    }
    let results = parallel::map_many_frozen(frozen, &sample, &MapOptions::default(), threads);
    for (id, result) in sample.iter().zip(&results) {
        if let Err(e) = result {
            return Err(LoadError::Validation(format!(
                "mapping from sample source {} failed: {e}",
                frozen.name(*id),
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_mailer::disk::write_db;

    fn temp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pathalias-reload-{tag}-{}", std::process::id()));
        p
    }

    const MAP: &str = "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
                       phs\tunc(400)\nresearch\tduke(200)\n";

    #[test]
    fn loads_all_three_source_shapes() {
        // Map pipeline.
        let map_path = temp("map.src");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![map_path.clone()], options);
        let db = source.load().unwrap();
        assert_eq!(db.route_to("research", "u").unwrap(), "duke!research!u");

        // Linear route file (the rendered output of the same map).
        let routes_path = temp("map.routes");
        let rendered: String = {
            let mut out = String::new();
            for e in db.iter() {
                out.push_str(&format!("{}\t{}\n", e.name, e.route));
            }
            out
        };
        std::fs::write(&routes_path, &rendered).unwrap();
        let db2 = MapSource::Routes(routes_path.clone()).load().unwrap();
        assert_eq!(db2.route_to("research", "u").unwrap(), "duke!research!u");

        // PADB1.
        let padb_path = temp("map.padb");
        write_db(&db, &padb_path).unwrap();
        let db3 = MapSource::Padb(padb_path.clone()).load().unwrap();
        assert_eq!(db3.route_to("research", "u").unwrap(), "duke!research!u");

        for p in [map_path, routes_path, padb_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn unchanged_files_reuse_the_frozen_stage() {
        let path = temp("stage-reuse.map");
        std::fs::write(&path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        assert!(cache.snapshot().is_none(), "cache starts cold");

        let db1 = source.load().unwrap();
        let snap1 = cache.snapshot().expect("cache warm after first load");
        let db2 = source.load().unwrap();
        let snap2 = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap1, &snap2),
            "second load skipped parse/build/freeze"
        );
        assert_eq!(db1.len(), db2.len());

        // Touching the file (newer mtime) invalidates the stages.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, format!("{MAP}extra\tunc(50)\n")).unwrap();
        let db3 = source.load().unwrap();
        let snap3 = cache.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&snap1, &snap3), "changed file re-parses");
        assert!(db3.get("extra").is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn cached_stage_remaps_with_new_options() {
        let path = temp("stage-remap.map");
        std::fs::write(&path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let db_unc = source.load().unwrap();
        assert_eq!(db_unc.route_to("research", "u").unwrap(), "duke!research!u");

        // Same files, different local host: the frozen stage is
        // reused, only map/print re-run.
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        let snap_before = cache.snapshot().unwrap();
        let mut source2 = source.clone();
        let MapSource::Map { options, .. } = &mut source2 else {
            unreachable!()
        };
        options.local = Some("phs".into());
        let db_phs = source2.load().unwrap();
        assert_eq!(db_phs.route_to("phs", "u").unwrap(), "u");
        let snap_after = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap_before, &snap_after),
            "option change alone must not re-freeze"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mmap_resolver_serves_without_full_load() {
        use pathalias_mailer::Resolver;
        let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
        let padb_path = temp("mmap.padb");
        write_db(&db, &padb_path).unwrap();
        let resolver = MapSource::PadbMmap(padb_path.clone())
            .load_resolver()
            .unwrap();
        assert_eq!(resolver.entries(), 2);
        assert_eq!(
            resolver
                .resolve("caip.rutgers.edu", "pleasant")
                .unwrap()
                .route,
            "seismo!caip.rutgers.edu!pleasant"
        );
        // Every source shape loads through load_resolver too.
        let in_memory = MapSource::Padb(padb_path.clone()).load_resolver().unwrap();
        assert_eq!(in_memory.entries(), 2);
        assert_eq!(
            in_memory.resolve("seismo", "rick").unwrap().route,
            "seismo!rick"
        );
        std::fs::remove_file(padb_path).unwrap();
    }

    #[test]
    fn snapshot_source_matches_map_pipeline_byte_for_byte() {
        let map_path = temp("snap-src.map");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };

        // Freeze the world to a .pagf, as `pathalias freeze` would.
        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        let frozen = parsed.build(&options).unwrap().freeze();
        let pagf_path = temp("snap-src.pagf");
        frozen.write_snapshot(&pagf_path).unwrap();

        let from_map = MapSource::map_files(vec![map_path.clone()], options.clone())
            .load()
            .unwrap();
        let from_snapshot = MapSource::frozen_snapshot(pagf_path.clone(), options)
            .load()
            .unwrap();
        assert_eq!(from_map.len(), from_snapshot.len());
        for e in from_map.iter() {
            assert_eq!(
                from_snapshot.get(&e.name).map(|s| s.route.clone()),
                Some(e.route.clone()),
                "route to {} differs",
                e.name
            );
        }

        std::fs::remove_file(map_path).unwrap();
        std::fs::remove_file(pagf_path).unwrap();
    }

    #[test]
    fn unchanged_snapshot_reuses_the_frozen_stage() {
        let map_path = temp("snap-reuse.map");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        let frozen = parsed.build(&options).unwrap().freeze();
        let pagf_path = temp("snap-reuse.pagf");
        frozen.write_snapshot(&pagf_path).unwrap();

        let source = MapSource::frozen_snapshot(pagf_path.clone(), options);
        let MapSource::FrozenSnapshot { cache, .. } = &source else {
            unreachable!()
        };
        assert!(cache.snapshot().is_none(), "cache starts cold");
        source.load().unwrap();
        let snap1 = cache.snapshot().expect("cache warm after first load");
        source.load().unwrap();
        let snap2 = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap1, &snap2),
            "unchanged .pagf skips the re-read"
        );

        // Rewriting the snapshot (newer mtime) invalidates the cache.
        std::thread::sleep(std::time::Duration::from_millis(20));
        frozen.write_snapshot(&pagf_path).unwrap();
        source.load().unwrap();
        let snap3 = cache.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&snap1, &snap3), "changed file re-loads");

        std::fs::remove_file(map_path).unwrap();
        std::fs::remove_file(pagf_path).unwrap();
    }

    #[test]
    fn corrupt_snapshot_reports_not_panics() {
        let bad = temp("bad.pagf");
        std::fs::write(&bad, "PAGF1\nnot really").unwrap();
        assert!(matches!(
            MapSource::frozen_snapshot(bad.clone(), Options::default()).load(),
            Err(LoadError::Snapshot(_))
        ));
        let missing = MapSource::frozen_snapshot(temp("missing.pagf"), Options::default());
        assert!(matches!(missing.load(), Err(LoadError::Io(_))));
        std::fs::remove_file(bad).unwrap();
    }

    #[test]
    fn load_failure_reports_not_panics() {
        let missing = MapSource::Routes(temp("definitely-missing"));
        assert!(matches!(missing.load(), Err(LoadError::Io(_))));

        let bad = temp("bad.routes");
        std::fs::write(&bad, "one-field-only\n").unwrap();
        assert!(matches!(
            MapSource::Routes(bad.clone()).load(),
            Err(LoadError::Db(_))
        ));
        std::fs::remove_file(bad).unwrap();
    }

    #[test]
    fn validation_skips_deleted_and_network_nodes() {
        // `delete`d hosts and network pseudo-nodes sit in the node
        // pool but must not be picked as validation sources — this map
        // is perfectly valid and has to load.
        let path = temp("deleted.map");
        std::fs::write(
            &path,
            "oldhost\thub(100)\nhub\toldhost(100), leaf(50)\nleaf\thub(50)\n\
             NETX = {hub, leaf}(200)\ndelete {oldhost}\n",
        )
        .unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let db = MapSource::map_files(vec![path.clone()], options)
            .load()
            .expect("maps with delete statements are valid");
        assert_eq!(db.route_to("leaf", "u").unwrap(), "leaf!u");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_map_fails_validation() {
        let path = temp("empty.map");
        std::fs::write(&path, "# nothing but a comment\n").unwrap();
        let source = MapSource::map_files(vec![path.clone()], Options::default());
        assert!(source.load().is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn watch_paths_cover_every_shape() {
        let p = PathBuf::from("/tmp/x");
        assert_eq!(MapSource::Padb(p.clone()).watch_paths(), vec![p.clone()]);
        assert_eq!(
            MapSource::PadbMmap(p.clone()).watch_paths(),
            vec![p.clone()]
        );
        assert_eq!(MapSource::Routes(p.clone()).watch_paths(), vec![p.clone()]);
        assert_eq!(
            MapSource::frozen_snapshot(p.clone(), Options::default()).watch_paths(),
            vec![p.clone()]
        );
        let m = MapSource::map_files(vec![p.clone(), p.clone()], Options::default());
        assert_eq!(m.watch_paths().len(), 2);
    }
}
