//! Table sources and hot reload.
//!
//! The daemon can be pointed at any of the four shapes route data
//! takes in this project: a PADB1 disk database, a linear route file
//! (pathalias output), a PAGF1 frozen-graph snapshot (`pathalias
//! freeze` output, re-entering the staged pipeline at the frozen
//! stage), or raw map files that get run through the staged
//! parse → build → freeze → map → print pipeline. `RELOAD`
//! re-runs the same source and swaps the result in atomically; while
//! the rebuild runs, every query keeps being served from the old
//! snapshot, and a failed rebuild leaves the old table serving
//! untouched.
//!
//! Map-file sources go through the staged API and keep the expensive
//! stages cached: the parsed/built/frozen snapshot is fingerprinted
//! against the input files (path, mtime, size), so a `RELOAD` whose
//! map files have not changed — because only mapping options changed,
//! or because an operator hits reload twice — skips straight to the
//! map stage instead of re-parsing the world.

use pathalias_core::{
    parallel, plan_delta, render, repair_frozen, update_routes, DeltaPlan, EdgeShift, Frozen,
    FrozenGraph, MapOptions, Mapped, NodeId, Options, Parsed, PhaseTimings, PrintOptions, Printed,
    RowPatch, SnapshotError,
};
use pathalias_mailer::{
    disk::DiskDb, disk::DiskError, disk::MappedDb, BoxedResolver, DbError, RouteDb, SharedRouteDb,
};
use pathalias_router::PointToPoint;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

/// A loaded serving bundle: the resolver, the optional point-to-point
/// engine, and how long each pipeline phase took.
type ServingParts = (BoxedResolver, Option<Arc<PointToPoint>>, PhaseTimings);

/// When an edit dirties more than this fraction of the world, the
/// incremental remap would approach a full run anyway — fall back.
const DELTA_MAX_DIRTY_FRACTION: f64 = 0.25;

/// A change-detection stamp for one source file.
///
/// Size and mtime alone miss the classic trap: a rewrite that keeps
/// the length and lands within the filesystem's mtime granularity (or
/// a tool that deliberately restores the mtime) is invisible. On unix
/// the stamp adds the inode number and the ctime — the kernel bumps
/// ctime on every write regardless of what userspace sets mtime to,
/// and it costs one `stat`, no file read (which matters for mmap-served
/// tables bigger than memory). Elsewhere the stamp hashes the file
/// contents instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FileStamp {
    path: PathBuf,
    size: u64,
    mtime: Option<SystemTime>,
    #[cfg(unix)]
    ino: u64,
    #[cfg(unix)]
    ctime: (i64, i64),
    #[cfg(not(unix))]
    content: u64,
}

/// A change-detection fingerprint for a set of source files.
pub(crate) type Fingerprint = Vec<FileStamp>;

/// Computes the fingerprint of `paths`.
pub(crate) fn fingerprint<'a>(
    paths: impl IntoIterator<Item = &'a PathBuf>,
) -> std::io::Result<Fingerprint> {
    paths.into_iter().map(stamp).collect()
}

#[cfg(unix)]
fn stamp(p: &PathBuf) -> std::io::Result<FileStamp> {
    use std::os::unix::fs::MetadataExt;
    let meta = std::fs::metadata(p)?;
    Ok(FileStamp {
        path: p.clone(),
        size: meta.len(),
        mtime: meta.modified().ok(),
        ino: meta.ino(),
        ctime: (meta.ctime(), meta.ctime_nsec()),
    })
}

#[cfg(not(unix))]
fn stamp(p: &PathBuf) -> std::io::Result<FileStamp> {
    let meta = std::fs::metadata(p)?;
    Ok(FileStamp {
        path: p.clone(),
        size: meta.len(),
        mtime: meta.modified().ok(),
        content: pathalias_hash::fold_bytes(&std::fs::read(p)?),
    })
}

/// The cached expensive stages of a map-file source, shared across
/// clones of the [`MapSource`] (the daemon clones its source into
/// connection state).
#[derive(Clone, Default)]
pub struct StageCache {
    slot: Arc<Mutex<Option<CachedStages>>>,
    delta_reloads: Arc<AtomicU64>,
}

struct CachedStages {
    fingerprint: Fingerprint,
    ignore_case: bool,
    frozen: Frozen,
    /// The input texts `frozen` was built from (map-file sources only)
    /// — what the next reload diffs against.
    parsed: Option<Parsed>,
    /// The serving artifacts of the last successful load, kept so an
    /// incremental reload can repair them instead of recomputing.
    serving: Option<ServingState>,
}

/// Everything the incremental reload path repairs in place.
struct ServingState {
    options: Options,
    mapped: Mapped,
    /// `Arc`, so a repair that proves the printed table unchanged can
    /// carry it into the next generation without cloning a
    /// million-entry route table.
    printed: Arc<Printed>,
    /// The resolver handle served from `printed.routes` (an `Arc`
    /// wrapper — cloning is a refcount bump, so a reload whose inputs
    /// did not change at all serves the cached table directly).
    db: SharedRouteDb,
    /// The point-to-point engine over `mapped.tree`'s graph.
    engine: Arc<PointToPoint>,
}

impl StageCache {
    /// The cached frozen snapshot, if any (used by tests to observe
    /// stage reuse).
    pub fn snapshot(&self) -> Option<Arc<FrozenGraph>> {
        self.slot
            .lock()
            .expect("stage cache poisoned")
            .as_ref()
            .map(|c| c.frozen.graph().clone())
    }

    /// How many reloads were absorbed by the incremental (delta) path
    /// instead of the full pipeline (used by tests to prove the fast
    /// path actually ran).
    pub fn delta_reloads(&self) -> u64 {
        self.delta_reloads.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for StageCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let filled = self.slot.lock().map(|c| c.is_some()).unwrap_or(false);
        write!(f, "StageCache({})", if filled { "warm" } else { "empty" })
    }
}

/// Where the route table comes from.
#[derive(Debug, Clone)]
pub enum MapSource {
    /// A PADB1 file written by [`pathalias_mailer::disk::write_db`],
    /// loaded fully into memory.
    Padb(PathBuf),
    /// A PADB1 file served *in place* through
    /// [`MappedDb`]: only the index
    /// is loaded; names and routes stay on disk behind the kernel page
    /// cache, so tables larger than memory serve fine. `RELOAD`
    /// re-opens (and re-validates) the file.
    PadbMmap(PathBuf),
    /// A linear route file: pathalias output, `name\troute` lines.
    Routes(PathBuf),
    /// A PAGF1 frozen-graph snapshot written by `pathalias freeze`:
    /// the staged pipeline re-enters at the frozen stage, so a cold
    /// start skips parse/build/freeze entirely and a `RELOAD` whose
    /// snapshot file is unchanged skips even the load.
    FrozenSnapshot {
        /// The `.pagf` file.
        path: PathBuf,
        /// Mapping/printing options (`-l`, ...; the build-stage
        /// options are baked into the snapshot).
        options: Options,
        /// Cached frozen stage, keyed by the file's fingerprint.
        cache: StageCache,
    },
    /// Map files run through the staged pipeline on every (re)load,
    /// with the parse/build/freeze stages cached across reloads.
    Map {
        /// Input map files, parsed in order.
        files: Vec<PathBuf>,
        /// Pipeline options (`-l`, `-i`, ...).
        options: Options,
        /// Validate the rebuilt graph by mapping from this many extra
        /// sources (0 disables validation).
        validate_sources: usize,
        /// Worker threads for the validation fan-out.
        validate_threads: usize,
        /// Cached stages, keyed by the files' fingerprint.
        cache: StageCache,
    },
}

/// Why a (re)load failed. The old table keeps serving afterwards.
#[derive(Debug)]
pub enum LoadError {
    /// Reading a source file failed.
    Io(std::io::Error),
    /// The PADB1 file was corrupt.
    Disk(DiskError),
    /// The PAGF1 snapshot was corrupt.
    Snapshot(SnapshotError),
    /// The linear route file did not parse.
    Db(DbError),
    /// The map pipeline failed (parse or map error).
    Pipeline(pathalias_core::Error),
    /// Multi-source validation found an unmappable source.
    Validation(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o: {e}"),
            LoadError::Disk(e) => write!(f, "{e}"),
            LoadError::Snapshot(e) => write!(f, "{e}"),
            LoadError::Db(e) => write!(f, "route file: {e}"),
            LoadError::Pipeline(e) => write!(f, "pipeline: {e}"),
            LoadError::Validation(why) => write!(f, "validation: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DiskError> for LoadError {
    fn from(e: DiskError) -> Self {
        LoadError::Disk(e)
    }
}

impl From<SnapshotError> for LoadError {
    fn from(e: SnapshotError) -> Self {
        LoadError::Snapshot(e)
    }
}

impl MapSource {
    /// A map-file source with validation defaults: a handful of extra
    /// mapping sources checked on the machine's cores.
    pub fn map_files(files: Vec<PathBuf>, options: Options) -> MapSource {
        MapSource::Map {
            files,
            options,
            validate_sources: 4,
            validate_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            cache: StageCache::default(),
        }
    }

    /// A frozen-snapshot source with the default stage cache.
    pub fn frozen_snapshot(path: PathBuf, options: Options) -> MapSource {
        MapSource::FrozenSnapshot {
            path,
            options,
            cache: StageCache::default(),
        }
    }

    /// A short label for the source shape — what the CLI startup
    /// report and map-set listings show next to each namespace.
    pub fn kind(&self) -> &'static str {
        match self {
            MapSource::Padb(_) => "padb",
            MapSource::PadbMmap(_) => "padb-mmap",
            MapSource::Routes(_) => "routes",
            MapSource::FrozenSnapshot { .. } => "pagf",
            MapSource::Map { .. } => "map",
        }
    }

    /// The files whose modification should trigger a reload (what
    /// `serve --watch` polls).
    pub fn watch_paths(&self) -> Vec<PathBuf> {
        match self {
            MapSource::Padb(p) | MapSource::PadbMmap(p) | MapSource::Routes(p) => vec![p.clone()],
            MapSource::FrozenSnapshot { path, .. } => vec![path.clone()],
            MapSource::Map { files, .. } => files.clone(),
        }
    }

    /// Builds the serving backend from the source, as a boxed
    /// [`Resolver`](pathalias_mailer::Resolver). Pure with respect to
    /// serving state: the caller decides when (and whether) to swap.
    ///
    /// Every source except [`MapSource::PadbMmap`] materializes an
    /// in-memory table; `PadbMmap` opens the file for in-place serving
    /// without loading the blob at all.
    pub fn load_resolver(&self) -> Result<BoxedResolver, LoadError> {
        self.load_resolver_timed().map(|(resolver, _)| resolver)
    }

    /// [`MapSource::load_resolver`] plus the pipeline's per-phase
    /// timings for the load, so a reload can export where its time
    /// went. Stages skipped by the fingerprint cache (an unchanged
    /// `.pagf`, a `RELOAD` whose map files did not move) report zero —
    /// the zeros *are* the cache working.
    pub fn load_resolver_timed(&self) -> Result<(BoxedResolver, PhaseTimings), LoadError> {
        match self {
            MapSource::PadbMmap(path) => {
                let t0 = Instant::now();
                let resolver: BoxedResolver = Box::new(MappedDb::open(path)?);
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((resolver, timings))
            }
            other => {
                let (db, timings) = other.load_timed()?;
                Ok((Box::new(SharedRouteDb::new(db)), timings))
            }
        }
    }

    /// [`MapSource::load_resolver_timed`] plus the point-to-point
    /// engine, for sources that hold a frozen graph. Pipeline sources
    /// (`map`, `pagf`) build a [`PointToPoint`] over the mapped tree's
    /// *augmented* graph — the same snapshot (back links included) the
    /// printed table came from, so `PATH <home> <x>` and `QUERY <x>`
    /// answer byte-identically. Table-only sources (`routes`, `padb`,
    /// `padb-mmap`) have no graph and return `None`: the daemon
    /// refuses `PATH` on them.
    ///
    /// When a `.pagf` snapshot stored its reverse-index section and
    /// mapping invented no back links, the stored transpose is reused
    /// instead of rebuilt.
    pub fn load_serving_timed(&self) -> Result<ServingParts, LoadError> {
        match self {
            MapSource::Padb(_) | MapSource::PadbMmap(_) | MapSource::Routes(_) => {
                let (resolver, timings) = self.load_resolver_timed()?;
                Ok((resolver, None, timings))
            }
            MapSource::FrozenSnapshot {
                path,
                options,
                cache,
            } => {
                let (frozen, mut timings) = snapshot_stage(path, cache)?;
                let (db, engine, _, _) = map_print_engine(&frozen, options, &mut timings)?;
                Ok((
                    Box::new(SharedRouteDb::new(db)),
                    Some(Arc::new(engine)),
                    timings,
                ))
            }
            MapSource::Map {
                files,
                options,
                validate_sources,
                validate_threads,
                cache,
            } => {
                // The incremental path: diff the re-read inputs against
                // the cached ones and repair the serving artifacts in
                // place when the edit is provably safe.
                if let Some(out) = try_delta_reload(files, options, cache)? {
                    return Ok(out);
                }
                let (frozen, mut timings) = frozen_stage(files, options, cache)?;
                let (db, engine, mapped, printed) =
                    map_print_engine(&frozen, options, &mut timings)?;
                if *validate_sources > 0 {
                    validate(frozen.graph(), *validate_sources, *validate_threads)?;
                }
                let db = SharedRouteDb::new(db);
                let engine = Arc::new(engine);
                // Remember the serving artifacts so the next reload can
                // repair them incrementally.
                if let Some(cached) = cache.slot.lock().expect("stage cache poisoned").as_mut() {
                    cached.serving = Some(ServingState {
                        options: options.clone(),
                        mapped,
                        printed: Arc::new(printed),
                        db: db.clone(),
                        engine: engine.clone(),
                    });
                }
                Ok((Box::new(db), Some(engine), timings))
            }
        }
    }

    /// Builds a fresh [`RouteDb`] from the source. For
    /// [`MapSource::PadbMmap`] this reads the whole table into memory
    /// (use [`MapSource::load_resolver`] to serve in place).
    pub fn load(&self) -> Result<RouteDb, LoadError> {
        self.load_timed().map(|(db, _)| db)
    }

    /// [`MapSource::load`] plus per-phase timings. Non-pipeline
    /// sources (PADB1, linear route files) report their whole ingest
    /// as the `parse` phase; pipeline sources report each stage they
    /// actually ran.
    pub fn load_timed(&self) -> Result<(RouteDb, PhaseTimings), LoadError> {
        match self {
            MapSource::Padb(path) | MapSource::PadbMmap(path) => {
                let t0 = Instant::now();
                let mut disk = DiskDb::open(path)?;
                let db = RouteDb::from_entries(disk.read_all()?);
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((db, timings))
            }
            MapSource::Routes(path) => {
                let t0 = Instant::now();
                let text = std::fs::read_to_string(path)?;
                let db = RouteDb::from_output(&text).map_err(LoadError::Db)?;
                let timings = PhaseTimings {
                    parse: t0.elapsed(),
                    ..PhaseTimings::default()
                };
                Ok((db, timings))
            }
            MapSource::FrozenSnapshot {
                path,
                options,
                cache,
            } => {
                // The snapshot was validated (checksum + structure)
                // when it was frozen and is re-validated on load, so
                // no multi-source mapping fan-out here — cold-start
                // latency is the whole point of this source.
                let (frozen, mut timings) = snapshot_stage(path, cache)?;
                let t0 = Instant::now();
                let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
                timings.map = t0.elapsed();
                let t0 = Instant::now();
                let printed = mapped.print(options);
                timings.print = t0.elapsed();
                Ok((RouteDb::from_table(&printed.routes), timings))
            }
            MapSource::Map {
                files,
                options,
                validate_sources,
                validate_threads,
                cache,
            } => {
                let (frozen, mut timings) = frozen_stage(files, options, cache)?;
                let t0 = Instant::now();
                let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
                timings.map = t0.elapsed();
                let t0 = Instant::now();
                let printed = mapped.print(options);
                timings.print = t0.elapsed();
                if *validate_sources > 0 {
                    validate(frozen.graph(), *validate_sources, *validate_threads)?;
                }
                Ok((RouteDb::from_table(&printed.routes), timings))
            }
        }
    }
}

/// The map and print stages plus the point-to-point engine over the
/// mapped tree's augmented graph. The engine and the table come from
/// the *same* mapping run, so they can never disagree about what the
/// world looks like.
fn map_print_engine(
    frozen: &Frozen,
    options: &Options,
    timings: &mut PhaseTimings,
) -> Result<(RouteDb, PointToPoint, Mapped, Printed), LoadError> {
    let t0 = Instant::now();
    let mapped = frozen.map(options).map_err(LoadError::Pipeline)?;
    timings.map = t0.elapsed();
    let t0 = Instant::now();
    let printed = mapped.print(options);
    timings.print = t0.elapsed();
    let aug = mapped.tree.frozen().clone();
    // Back-link invention replaces the snapshot graph; only when the
    // tree still points at the very same graph are the stored sections
    // (transpose, hierarchy) valid. A stage that carried a hierarchy is
    // an operator opt-in (`freeze --ch`), so when back links changed
    // the graph the hierarchy is rebuilt over the augmented snapshot
    // rather than silently lost.
    let engine = if Arc::ptr_eq(&aug, frozen.graph()) {
        match frozen.reverse_index() {
            Some(rev) => PointToPoint::with_sections(
                aug,
                rev.clone(),
                frozen.hierarchy().cloned(),
                options.cost_model,
            ),
            None => PointToPoint::new(aug, options.cost_model),
        }
    } else if frozen.hierarchy().is_some() {
        PointToPoint::with_fresh_hierarchy(aug, options.cost_model)
    } else {
        PointToPoint::new(aug, options.cost_model)
    };
    Ok((
        RouteDb::from_table(&printed.routes),
        engine,
        mapped,
        printed,
    ))
}

/// The O(delta) reload path: diff the re-read map files against the
/// cached inputs, patch the frozen CSR rows the edit touched
/// ([`pathalias_core::delta`] proves which edits are safe), repair the
/// shortest-path tree from the patched rows outward
/// ([`repair_frozen`]), and recompute only the route-table entries
/// whose labels moved ([`update_routes`]). Every gate failure returns
/// `Ok(None)` and the caller falls back to the full pipeline — the
/// full run stays the oracle, the delta path only ever reproduces it
/// faster.
///
/// Two conservative drops on this path, both because "stale index
/// answers queries wrongly" beats "reload is slower":
///
/// * the point-to-point engine is rebuilt over the repaired tree's
///   graph without a contraction hierarchy — a CH is cost-dependent
///   and serving yesterday's hierarchy across a cost change would
///   return wrong `PATH` answers;
/// * the multi-source validation fan-out is skipped — it costs more
///   than the repair itself, and the repair's own post-conditions
///   (labelled set identical to the previous run's) already prove the
///   patched world maps.
fn try_delta_reload(
    files: &[PathBuf],
    options: &Options,
    cache: &StageCache,
) -> Result<Option<ServingParts>, LoadError> {
    // Only the plain serve configuration repairs: traces print
    // per-relaxation output a repair would truncate, and the
    // second-best dual has no incremental form.
    if !options.trace.is_empty() || options.second_best {
        return Ok(None);
    }
    let fp = fingerprint(files)?;
    let mut slot = cache.slot.lock().expect("stage cache poisoned");
    let Some(cached) = slot.as_mut() else {
        return Ok(None);
    };
    if cached.ignore_case != options.ignore_case {
        return Ok(None);
    }
    let (Some(parsed), Some(serving)) = (&cached.parsed, &cached.serving) else {
        return Ok(None);
    };
    if serving.options != *options {
        return Ok(None);
    }
    if cached.fingerprint == fp {
        // Nothing moved at all: serve the cached artifacts as-is.
        let out = (
            Box::new(serving.db.clone()) as BoxedResolver,
            serving.engine.clone(),
        );
        drop(slot);
        cache.delta_reloads.fetch_add(1, Ordering::Relaxed);
        return Ok(Some((out.0, Some(out.1), PhaseTimings::default())));
    }

    let mut timings = PhaseTimings::default();
    let t0 = Instant::now();
    let new_parsed = reread_changed(files, parsed, &cached.fingerprint, &fp)?;
    let plan = plan_delta(parsed.inputs(), new_parsed.inputs(), cached.frozen.graph());
    timings.parse = t0.elapsed();
    let patches = match plan {
        DeltaPlan::Unchanged => {
            // Comment/whitespace-only edit: adopt the new bytes, keep
            // serving the unchanged world.
            let out = (
                Box::new(serving.db.clone()) as BoxedResolver,
                serving.engine.clone(),
            );
            cached.fingerprint = fp;
            cached.parsed = Some(new_parsed);
            drop(slot);
            cache.delta_reloads.fetch_add(1, Ordering::Relaxed);
            return Ok(Some((out.0, Some(out.1), timings)));
        }
        DeltaPlan::Fallback(_why) => return Ok(None),
        DeltaPlan::Patch { patches } => patches,
    };

    // Patch the base snapshot. No build phase on this path: the
    // patches splice straight into the CSR.
    let t0 = Instant::now();
    let (new_frozen, base_shift) = cached.frozen.with_rows_replaced(&patches);
    timings.freeze = t0.elapsed();
    let dirty: Vec<NodeId> = patches.iter().map(|p| p.node).collect();
    let map_opts = MapOptions {
        model: options.cost_model,
        trace: Vec::new(),
        exclude_domains: false,
        no_backlinks: options.no_backlinks,
    };

    // Repair the tree over whichever graph it actually runs on. When
    // the previous mapping invented no back links the tree points at
    // the base snapshot itself; otherwise it runs over an augmented
    // snapshot (base plus invented BACK rows) that has to be patched
    // with the same care.
    let old_tree = &serving.mapped.tree;
    let t0 = Instant::now();
    let (repaired, shift) = if Arc::ptr_eq(old_tree.frozen(), cached.frozen.graph()) {
        let repaired = repair_frozen(
            old_tree,
            new_frozen.graph(),
            &dirty,
            &base_shift,
            &map_opts,
            DELTA_MAX_DIRTY_FRACTION,
        )
        .unwrap_or(None);
        (repaired, base_shift)
    } else {
        match patch_augmented(old_tree.frozen(), cached.frozen.graph(), &patches) {
            Some((aug, aug_shift)) => {
                let repaired = repair_frozen(
                    old_tree,
                    &aug,
                    &dirty,
                    &aug_shift,
                    &map_opts,
                    DELTA_MAX_DIRTY_FRACTION,
                )
                .unwrap_or(None);
                (repaired, aug_shift)
            }
            None => return Ok(None),
        }
    };
    timings.map = t0.elapsed();
    let Some(new_tree) = repaired else {
        return Ok(None);
    };

    // Recompute routes only for nodes whose label moved. A label is
    // unmoved when every route-relevant field matches and its
    // predecessor is the same physical edge (old edge ids read through
    // the shift; an edge inside a replaced row never matches).
    let t0 = Instant::now();
    let mut changed: Vec<NodeId> = Vec::new();
    for id in new_tree.frozen().node_ids() {
        let same = match (old_tree.label(id), new_tree.label(id)) {
            (None, None) => true,
            (Some(o), Some(n)) => {
                o.cost == n.cost
                    && o.hops == n.hops
                    && o.has_left == n.has_left
                    && o.has_right == n.has_right
                    && o.tainted == n.tainted
                    && o.via_backlink == n.via_backlink
                    && o.ambiguous == n.ambiguous
                    && match (o.pred, n.pred) {
                        (None, None) => true,
                        (Some((op, oe)), Some((np, ne))) => op == np && shift.map(oe) == Some(ne),
                        _ => false,
                    }
            }
            _ => false,
        };
        if !same {
            changed.push(id);
        }
    }
    if changed.is_empty() {
        // The edit moved no label — a cost change on a link the tree
        // does not use, the common retuning case. Routes, rendered
        // output and the resolver are bit-for-bit yesterday's; only
        // the point-to-point engine is rebuilt, because `PATH`
        // answers read edge costs the tree never looked at.
        timings.print = t0.elapsed();
        let db = serving.db.clone();
        let printed = serving.printed.clone();
        let engine = Arc::new(PointToPoint::new(
            new_tree.frozen().clone(),
            options.cost_model,
        ));
        let mapped = Mapped {
            tree: new_tree,
            dual: None,
            map_time: timings.map,
        };
        cached.fingerprint = fp;
        cached.frozen = new_frozen;
        cached.parsed = Some(new_parsed);
        cached.serving = Some(ServingState {
            options: options.clone(),
            mapped,
            printed,
            db: db.clone(),
            engine: engine.clone(),
        });
        drop(slot);
        cache.delta_reloads.fetch_add(1, Ordering::Relaxed);
        return Ok(Some((Box::new(db), Some(engine), timings)));
    }
    let Some(routes) = update_routes(&new_tree, &serving.printed.routes, &changed) else {
        return Ok(None);
    };
    let rendered = render(
        &routes,
        &PrintOptions {
            with_costs: options.with_costs,
            sort: options.sort,
            include_hidden: options.include_hidden,
        },
    );
    // The repair proved the labelled set unchanged, so the hosts that
    // stayed unreachable are exactly the previous run's.
    let unreachable = serving.printed.unreachable.clone();
    timings.print = t0.elapsed();

    let mapped = Mapped {
        tree: new_tree,
        dual: None,
        map_time: timings.map,
    };
    let printed = Arc::new(Printed {
        routes,
        rendered,
        unreachable,
        print_time: timings.print,
    });
    let db = SharedRouteDb::new(RouteDb::from_table(&printed.routes));
    let engine = Arc::new(PointToPoint::new(
        mapped.tree.frozen().clone(),
        options.cost_model,
    ));
    cached.fingerprint = fp;
    cached.frozen = new_frozen;
    cached.parsed = Some(new_parsed);
    cached.serving = Some(ServingState {
        options: options.clone(),
        mapped,
        printed,
        db: db.clone(),
        engine: engine.clone(),
    });
    drop(slot);
    cache.delta_reloads.fetch_add(1, Ordering::Relaxed);
    Ok(Some((Box::new(db), Some(engine), timings)))
}

/// Re-reads only the files whose stamp moved, cloning the cached text
/// for the rest. At a million hosts re-reading two hundred region
/// files to pick up a one-line edit in one of them costs more than the
/// repair itself; the stamps already tell us which files moved.
fn reread_changed(
    files: &[PathBuf],
    parsed: &Parsed,
    old_fp: &Fingerprint,
    new_fp: &Fingerprint,
) -> std::io::Result<Parsed> {
    let mut fresh = Parsed::new();
    if old_fp.len() != new_fp.len() || parsed.inputs().len() != files.len() {
        // The file list itself changed shape: read everything.
        fresh.push_files(files)?;
        return Ok(fresh);
    }
    for (i, path) in files.iter().enumerate() {
        if old_fp[i] == new_fp[i] {
            let (name, text) = &parsed.inputs()[i];
            fresh.push_str(name, text);
        } else {
            fresh.push_file(path)?;
        }
    }
    Ok(fresh)
}

/// Applies `patches` (planned against the *base* snapshot) to the
/// augmented graph `aug` the previous mapping run produced — base rows
/// plus an invented BACK tail appended per row. Returns the patched
/// augmented graph and its edge shift, or `None` when the edit is not
/// provably safe there:
///
/// * a patch that changes a row's shape (targets, operators or flags,
///   not just costs) could add or remove reachability the invented
///   links were computed from;
/// * an invented link *targeting* a dirty node had its cost derived
///   from that node's row — stale after the edit.
fn patch_augmented(
    aug: &Arc<FrozenGraph>,
    base: &Arc<FrozenGraph>,
    patches: &[RowPatch],
) -> Option<(Arc<FrozenGraph>, EdgeShift)> {
    let is_dirty = |node: NodeId| patches.binary_search_by(|p| p.node.cmp(&node)).is_ok();
    let mut aug_patches = Vec::with_capacity(patches.len());
    for p in patches {
        let (_, base_row) = base.edge_slice(p.node);
        // Cost-only: the new row must keep the old shape.
        if base_row.len() != p.edges.len() {
            return None;
        }
        for (old, new) in base_row.iter().zip(&p.edges) {
            if old.to() != new.0 || old.op() != new.2 || old.flags() != new.3 {
                return None;
            }
        }
        // Rebuild the augmented row: the patched base row, then the
        // invented tail exactly as it stands.
        let mut edges = p.edges.clone();
        for e in aug.out_edges(p.node).skip(base_row.len()) {
            edges.push((
                aug.edge_target(e),
                aug.edge_raw_cost(e),
                aug.edge_op(e),
                aug.edge_flags(e),
            ));
        }
        aug_patches.push(RowPatch {
            node: p.node,
            edges,
        });
    }
    // Any invented link pointing *at* a dirty node is stale.
    for id in aug.node_ids() {
        let base_len = base.degree(id);
        for e in aug.out_edges(id).skip(base_len) {
            if is_dirty(aug.edge_target(e)) {
                return None;
            }
        }
    }
    let (patched, shift) = aug.with_rows_replaced(&aug_patches);
    Some((Arc::new(patched), shift))
}

/// The parse/build/freeze stages for a map-file source, reusing the
/// cached snapshot when the files' fingerprint is unchanged (the
/// "reload with only mapping options changed" fast path). The
/// returned timings cover the stages that actually ran — all zero on
/// a cache hit.
fn frozen_stage(
    files: &[PathBuf],
    options: &Options,
    cache: &StageCache,
) -> Result<(Frozen, PhaseTimings), LoadError> {
    let fp = fingerprint(files)?;
    let mut slot = cache.slot.lock().expect("stage cache poisoned");
    if let Some(cached) = slot.as_ref() {
        // `ignore_case` is the one option the build stage depends on.
        if cached.fingerprint == fp && cached.ignore_case == options.ignore_case {
            return Ok((cached.frozen.clone(), PhaseTimings::default()));
        }
    }
    let mut timings = PhaseTimings::default();
    let t0 = Instant::now();
    let mut parsed = Parsed::new();
    parsed.push_files(files)?;
    timings.parse = t0.elapsed();
    let built = parsed.build(options).map_err(LoadError::Pipeline)?;
    timings.build = built.build_time;
    let frozen = built.freeze();
    timings.freeze = frozen.freeze_time;
    *slot = Some(CachedStages {
        fingerprint: fp,
        ignore_case: options.ignore_case,
        frozen: frozen.clone(),
        parsed: Some(parsed),
        serving: None,
    });
    Ok((frozen, timings))
}

/// The frozen stage for a snapshot source: re-read the `.pagf` file
/// only when its fingerprint changed, so a `RELOAD` with an unchanged
/// snapshot re-enters at the map stage just like the map-file path.
/// A fresh read reports its load time as the `freeze` phase; a cache
/// hit reports zero.
fn snapshot_stage(path: &PathBuf, cache: &StageCache) -> Result<(Frozen, PhaseTimings), LoadError> {
    let fp = fingerprint(std::iter::once(path))?;
    let mut slot = cache.slot.lock().expect("stage cache poisoned");
    if let Some(cached) = slot.as_ref() {
        // `ignore_case` is baked into the snapshot file, so the
        // fingerprint alone decides reuse.
        if cached.fingerprint == fp {
            return Ok((cached.frozen.clone(), PhaseTimings::default()));
        }
    }
    let frozen = Frozen::from_snapshot(path)?;
    let timings = PhaseTimings {
        freeze: frozen.freeze_time,
        ..PhaseTimings::default()
    };
    *slot = Some(CachedStages {
        fingerprint: fp,
        ignore_case: frozen.graph().ignore_case(),
        frozen: frozen.clone(),
        parsed: None,
        serving: None,
    });
    Ok((frozen, timings))
}

/// The rebuilt graph must be mappable from more vantage points than
/// just the local host: fan the read-only mapper out over a sample of
/// sources — all sharing the one frozen snapshot — and refuse the swap
/// if any of them fails outright.
fn validate(frozen: &Arc<FrozenGraph>, sources: usize, threads: usize) -> Result<(), LoadError> {
    // Only plain, live hosts make sense as mapping sources: `delete`d
    // nodes are defined to fail, and nets/domains are not places mail
    // originates.
    let sample: Vec<_> = frozen
        .node_ids()
        .filter(|&id| frozen.is_mappable(id) && !frozen.is_net(id))
        .take(sources)
        .collect();
    if sample.is_empty() {
        return Err(LoadError::Validation("rebuilt map has no hosts".into()));
    }
    let results = parallel::map_many_frozen(frozen, &sample, &MapOptions::default(), threads);
    for (id, result) in sample.iter().zip(&results) {
        if let Err(e) = result {
            return Err(LoadError::Validation(format!(
                "mapping from sample source {} failed: {e}",
                frozen.name(*id),
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_mailer::disk::write_db;

    fn temp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pathalias-reload-{tag}-{}", std::process::id()));
        p
    }

    const MAP: &str = "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
                       phs\tunc(400)\nresearch\tduke(200)\n";

    #[test]
    fn loads_all_three_source_shapes() {
        // Map pipeline.
        let map_path = temp("map.src");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![map_path.clone()], options);
        let db = source.load().unwrap();
        assert_eq!(db.route_to("research", "u").unwrap(), "duke!research!u");

        // Linear route file (the rendered output of the same map).
        let routes_path = temp("map.routes");
        let rendered: String = {
            let mut out = String::new();
            for e in db.iter() {
                out.push_str(&format!("{}\t{}\n", e.name, e.route));
            }
            out
        };
        std::fs::write(&routes_path, &rendered).unwrap();
        let db2 = MapSource::Routes(routes_path.clone()).load().unwrap();
        assert_eq!(db2.route_to("research", "u").unwrap(), "duke!research!u");

        // PADB1.
        let padb_path = temp("map.padb");
        write_db(&db, &padb_path).unwrap();
        let db3 = MapSource::Padb(padb_path.clone()).load().unwrap();
        assert_eq!(db3.route_to("research", "u").unwrap(), "duke!research!u");

        for p in [map_path, routes_path, padb_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn unchanged_files_reuse_the_frozen_stage() {
        let path = temp("stage-reuse.map");
        std::fs::write(&path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        assert!(cache.snapshot().is_none(), "cache starts cold");

        let db1 = source.load().unwrap();
        let snap1 = cache.snapshot().expect("cache warm after first load");
        let db2 = source.load().unwrap();
        let snap2 = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap1, &snap2),
            "second load skipped parse/build/freeze"
        );
        assert_eq!(db1.len(), db2.len());

        // Touching the file (newer mtime) invalidates the stages.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, format!("{MAP}extra\tunc(50)\n")).unwrap();
        let db3 = source.load().unwrap();
        let snap3 = cache.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&snap1, &snap3), "changed file re-parses");
        assert!(db3.get("extra").is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn cached_stage_remaps_with_new_options() {
        let path = temp("stage-remap.map");
        std::fs::write(&path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let db_unc = source.load().unwrap();
        assert_eq!(db_unc.route_to("research", "u").unwrap(), "duke!research!u");

        // Same files, different local host: the frozen stage is
        // reused, only map/print re-run.
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        let snap_before = cache.snapshot().unwrap();
        let mut source2 = source.clone();
        let MapSource::Map { options, .. } = &mut source2 else {
            unreachable!()
        };
        options.local = Some("phs".into());
        let db_phs = source2.load().unwrap();
        assert_eq!(db_phs.route_to("phs", "u").unwrap(), "u");
        let snap_after = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap_before, &snap_after),
            "option change alone must not re-freeze"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mmap_resolver_serves_without_full_load() {
        use pathalias_mailer::Resolver;
        let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
        let padb_path = temp("mmap.padb");
        write_db(&db, &padb_path).unwrap();
        let resolver = MapSource::PadbMmap(padb_path.clone())
            .load_resolver()
            .unwrap();
        assert_eq!(resolver.entries(), 2);
        assert_eq!(
            resolver
                .resolve("caip.rutgers.edu", "pleasant")
                .unwrap()
                .route,
            "seismo!caip.rutgers.edu!pleasant"
        );
        // Every source shape loads through load_resolver too.
        let in_memory = MapSource::Padb(padb_path.clone()).load_resolver().unwrap();
        assert_eq!(in_memory.entries(), 2);
        assert_eq!(
            in_memory.resolve("seismo", "rick").unwrap().route,
            "seismo!rick"
        );
        std::fs::remove_file(padb_path).unwrap();
    }

    #[test]
    fn snapshot_source_matches_map_pipeline_byte_for_byte() {
        let map_path = temp("snap-src.map");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };

        // Freeze the world to a .pagf, as `pathalias freeze` would.
        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        let frozen = parsed.build(&options).unwrap().freeze();
        let pagf_path = temp("snap-src.pagf");
        frozen.write_snapshot(&pagf_path).unwrap();

        let from_map = MapSource::map_files(vec![map_path.clone()], options.clone())
            .load()
            .unwrap();
        let from_snapshot = MapSource::frozen_snapshot(pagf_path.clone(), options)
            .load()
            .unwrap();
        assert_eq!(from_map.len(), from_snapshot.len());
        for e in from_map.iter() {
            assert_eq!(
                from_snapshot.get(&e.name).map(|s| s.route.clone()),
                Some(e.route.clone()),
                "route to {} differs",
                e.name
            );
        }

        std::fs::remove_file(map_path).unwrap();
        std::fs::remove_file(pagf_path).unwrap();
    }

    #[test]
    fn unchanged_snapshot_reuses_the_frozen_stage() {
        let map_path = temp("snap-reuse.map");
        std::fs::write(&map_path, MAP).unwrap();
        let options = Options {
            local: Some("unc".into()),
            ..Default::default()
        };
        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        let frozen = parsed.build(&options).unwrap().freeze();
        let pagf_path = temp("snap-reuse.pagf");
        frozen.write_snapshot(&pagf_path).unwrap();

        let source = MapSource::frozen_snapshot(pagf_path.clone(), options);
        let MapSource::FrozenSnapshot { cache, .. } = &source else {
            unreachable!()
        };
        assert!(cache.snapshot().is_none(), "cache starts cold");
        source.load().unwrap();
        let snap1 = cache.snapshot().expect("cache warm after first load");
        source.load().unwrap();
        let snap2 = cache.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&snap1, &snap2),
            "unchanged .pagf skips the re-read"
        );

        // Rewriting the snapshot (newer mtime) invalidates the cache.
        std::thread::sleep(std::time::Duration::from_millis(20));
        frozen.write_snapshot(&pagf_path).unwrap();
        source.load().unwrap();
        let snap3 = cache.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&snap1, &snap3), "changed file re-loads");

        std::fs::remove_file(map_path).unwrap();
        std::fs::remove_file(pagf_path).unwrap();
    }

    #[test]
    fn corrupt_snapshot_reports_not_panics() {
        let bad = temp("bad.pagf");
        std::fs::write(&bad, "PAGF1\nnot really").unwrap();
        assert!(matches!(
            MapSource::frozen_snapshot(bad.clone(), Options::default()).load(),
            Err(LoadError::Snapshot(_))
        ));
        let missing = MapSource::frozen_snapshot(temp("missing.pagf"), Options::default());
        assert!(matches!(missing.load(), Err(LoadError::Io(_))));
        std::fs::remove_file(bad).unwrap();
    }

    #[test]
    fn load_failure_reports_not_panics() {
        let missing = MapSource::Routes(temp("definitely-missing"));
        assert!(matches!(missing.load(), Err(LoadError::Io(_))));

        let bad = temp("bad.routes");
        std::fs::write(&bad, "one-field-only\n").unwrap();
        assert!(matches!(
            MapSource::Routes(bad.clone()).load(),
            Err(LoadError::Db(_))
        ));
        std::fs::remove_file(bad).unwrap();
    }

    #[test]
    fn validation_skips_deleted_and_network_nodes() {
        // `delete`d hosts and network pseudo-nodes sit in the node
        // pool but must not be picked as validation sources — this map
        // is perfectly valid and has to load.
        let path = temp("deleted.map");
        std::fs::write(
            &path,
            "oldhost\thub(100)\nhub\toldhost(100), leaf(50)\nleaf\thub(50)\n\
             NETX = {hub, leaf}(200)\ndelete {oldhost}\n",
        )
        .unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let db = MapSource::map_files(vec![path.clone()], options)
            .load()
            .expect("maps with delete statements are valid");
        assert_eq!(db.route_to("leaf", "u").unwrap(), "leaf!u");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_map_fails_validation() {
        let path = temp("empty.map");
        std::fs::write(&path, "# nothing but a comment\n").unwrap();
        let source = MapSource::map_files(vec![path.clone()], Options::default());
        assert!(source.load().is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[cfg(unix)]
    fn fingerprint_detects_same_size_rewrite_with_pinned_mtime() {
        // The classic trap: rewrite the file to the same length, then
        // restore the mtime. Size+mtime stamps see nothing; the ctime
        // (which userspace cannot pin) gives it away.
        let path = temp("fp-pinned.map");
        std::fs::write(&path, "aaaa\tbbbb(10)\n").unwrap();
        let fp1 = fingerprint(std::iter::once(&path)).unwrap();
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));

        std::fs::write(&path, "aaaa\tbbbb(99)\n").unwrap(); // same length
        let f = std::fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(mtime).unwrap();
        drop(f);

        let meta = std::fs::metadata(&path).unwrap();
        assert_eq!(
            meta.len(),
            "aaaa\tbbbb(10)\n".len() as u64,
            "rewrite kept the length"
        );
        assert_eq!(meta.modified().unwrap(), mtime, "mtime was pinned back");
        let fp2 = fingerprint(std::iter::once(&path)).unwrap();
        assert_ne!(fp1, fp2, "pinned-mtime same-size rewrite must be detected");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn fingerprint_error_is_reported_not_defaulted() {
        // A missing file must surface as Err — the old stamp treated
        // an unreadable mtime as `None`, and `None == None` made two
        // failures look like "unchanged".
        let missing = temp("fp-missing.map");
        assert!(fingerprint(std::iter::once(&missing)).is_err());
    }

    /// The rendered route text the cache is currently serving (delta
    /// tests compare it byte-for-byte against a cold pipeline).
    fn cached_rendered(cache: &StageCache) -> String {
        let slot = cache.slot.lock().unwrap();
        slot.as_ref()
            .and_then(|c| c.serving.as_ref())
            .map(|s| s.printed.rendered.clone())
            .expect("serving state cached")
    }

    const DELTA_MAP: &str = "hub\ta(10), b(20)\na\tx(30)\nb\tx(5)\nx\ty(5)\n";

    /// A world wide enough that one edit's dirty cone stays under the
    /// 25% fallback budget: sixteen spokes off the hub, two of which
    /// compete for `x`.
    const WIDE_MAP: &str = "hub\tn1(10), n2(10), n3(10), n4(10), \
                            n5(10), n6(10), n7(10), n8(10), \
                            n9(10), n10(10), n11(10), n12(10), \
                            n13(10), n14(10), n15(10), n16(10)\n\
                            n1\tx(30)\nn2\tx(20)\nx\ty(5)\n";

    #[test]
    fn delta_reload_is_byte_identical_and_counted() {
        let path = temp("delta.map");
        std::fs::write(&path, WIDE_MAP).unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options.clone());
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 0, "first load is the full pipeline");

        // Raise one cost: `x` must reroute from n2 to n1 — a
        // single-row patch whose cone (x, y) repairs in place.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let edited = WIDE_MAP.replace("n2\tx(20)", "n2\tx(35)");
        std::fs::write(&path, &edited).unwrap();
        let (resolver, engine, _) = source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 1, "the edit took the delta path");
        assert_eq!(resolver.resolve("x", "u").unwrap().route, "n1!x!u");

        // Byte-identical to a cold run over the edited bytes.
        let cold = MapSource::map_files(vec![path.clone()], options);
        let (cold_resolver, cold_engine, _) = cold.load_serving_timed().unwrap();
        let MapSource::Map {
            cache: cold_cache, ..
        } = &cold
        else {
            unreachable!()
        };
        assert_eq!(
            cached_rendered(cache),
            cached_rendered(cold_cache),
            "delta-repaired routes must match the cold pipeline byte for byte"
        );
        for host in ["n1", "n2", "n5", "x", "y"] {
            assert_eq!(
                resolver.resolve(host, "u").unwrap().route,
                cold_resolver.resolve(host, "u").unwrap().route,
                "route to {host} differs"
            );
        }
        let (engine, cold_engine) = (engine.unwrap(), cold_engine.unwrap());
        for (s, d) in [("n1", "x"), ("n2", "y"), ("hub", "y")] {
            assert_eq!(
                engine.route(s, d).unwrap().route,
                cold_engine.route(s, d).unwrap().route,
                "PATH {s} {d} differs"
            );
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn non_tree_edge_edit_reuses_the_printed_table() {
        // Raising the cost of the link the tree already rejected
        // (n1->x at 30 loses to n2->x at 20) moves no label: the
        // repair proves it, the printed table is carried over without
        // being recomputed, and only the PATH engine sees new costs.
        let path = temp("delta-notree.map");
        std::fs::write(&path, WIDE_MAP).unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options.clone());
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        source.load_serving_timed().unwrap();
        let before = cached_rendered(cache);

        std::thread::sleep(std::time::Duration::from_millis(20));
        let edited = WIDE_MAP.replace("n1\tx(30)", "n1\tx(44)");
        std::fs::write(&path, &edited).unwrap();
        let (resolver, engine, _) = source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 1, "the edit took the delta path");
        assert_eq!(
            cached_rendered(cache),
            before,
            "no label moved, so the printed table is yesterday's"
        );
        assert_eq!(resolver.resolve("x", "u").unwrap().route, "n2!x!u");

        // The engine must see the new cost, not the cached graph's.
        let cold = MapSource::map_files(vec![path.clone()], options);
        let (_, cold_engine, _) = cold.load_serving_timed().unwrap();
        let (engine, cold_engine) = (engine.unwrap(), cold_engine.unwrap());
        for (s, d) in [("n1", "x"), ("n1", "y"), ("hub", "y")] {
            let (a, b) = (
                engine.route(s, d).unwrap(),
                cold_engine.route(s, d).unwrap(),
            );
            assert_eq!((a.route, a.cost), (b.route, b.cost), "PATH {s} {d} differs");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn structural_edit_falls_back_to_the_full_pipeline() {
        let path = temp("delta-fallback.map");
        std::fs::write(&path, DELTA_MAP).unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        source.load_serving_timed().unwrap();

        // A brand-new host shifts node ids: not provably safe, so the
        // plan falls back and the full pipeline serves it correctly.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, format!("{DELTA_MAP}z\thub(1)\n")).unwrap();
        let (resolver, _, _) = source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 0, "structural edit must not delta");
        assert_eq!(resolver.resolve("x", "u").unwrap().route, "b!x!u");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn unchanged_reload_serves_the_cached_artifacts() {
        let path = temp("delta-unchanged.map");
        std::fs::write(&path, DELTA_MAP).unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        let (r1, _, _) = source.load_serving_timed().unwrap();
        // Nothing changed: the reload is absorbed entirely by the cache.
        let (r2, engine, timings) = source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 1);
        assert_eq!(timings.map, std::time::Duration::ZERO, "no remap ran");
        assert!(engine.is_some(), "PATH keeps working across a no-op reload");
        assert_eq!(
            r1.resolve("y", "u").unwrap().route,
            r2.resolve("y", "u").unwrap().route
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn comment_only_edit_is_absorbed_without_remap() {
        let path = temp("delta-comment.map");
        std::fs::write(&path, DELTA_MAP).unwrap();
        let options = Options {
            local: Some("hub".into()),
            ..Default::default()
        };
        let source = MapSource::map_files(vec![path.clone()], options);
        let MapSource::Map { cache, .. } = &source else {
            unreachable!()
        };
        source.load_serving_timed().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, format!("# a comment\n{DELTA_MAP}")).unwrap();
        let (resolver, _, timings) = source.load_serving_timed().unwrap();
        assert_eq!(cache.delta_reloads(), 1, "comment edit absorbed as a delta");
        assert_eq!(timings.map, std::time::Duration::ZERO, "no remap ran");
        assert_eq!(resolver.resolve("x", "u").unwrap().route, "b!x!u");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn watch_paths_cover_every_shape() {
        let p = PathBuf::from("/tmp/x");
        assert_eq!(MapSource::Padb(p.clone()).watch_paths(), vec![p.clone()]);
        assert_eq!(
            MapSource::PadbMmap(p.clone()).watch_paths(),
            vec![p.clone()]
        );
        assert_eq!(MapSource::Routes(p.clone()).watch_paths(), vec![p.clone()]);
        assert_eq!(
            MapSource::frozen_snapshot(p.clone(), Options::default()).watch_paths(),
            vec![p.clone()]
        );
        let m = MapSource::map_files(vec![p.clone(), p.clone()], Options::default());
        assert_eq!(m.watch_paths().len(), 2);
    }
}
