//! A tiny synchronous client for the query protocol.
//!
//! Used by `pathalias serve --query`, the integration tests, and the
//! `route_server` example. One connection, requests answered in order.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Either transport, behind one type.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn split(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }
}

/// A connected protocol client.
///
/// Writes are buffered and flushed once per request: a request is one
/// TCP segment, which keeps Nagle's algorithm and delayed ACKs from
/// inserting a round-trip-scale stall into every query.
pub struct Client {
    reader: BufReader<Conn>,
    writer: BufWriter<Conn>,
}

/// A `QUERY` outcome: the route, or a confirmed "no route".
pub type QueryResult = io::Result<Option<String>>;

impl Client {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::from_conn(Conn::Tcp(stream))
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Client::from_conn(Conn::Unix(UnixStream::connect(path)?))
    }

    fn from_conn(conn: Conn) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(conn.split()?),
            writer: BufWriter::new(conn),
        })
    }

    /// Sends one raw request line, returns the raw response line
    /// (`<code> <text>`, no newline).
    pub fn send(&mut self, request: &str) -> io::Result<String> {
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// `QUERY host [user]` → `Ok(Some(route))`, `Ok(None)` for 404, or
    /// an error for anything else.
    pub fn query(&mut self, host: &str, user: Option<&str>) -> QueryResult {
        let request = match user {
            Some(u) => format!("QUERY {host} {u}"),
            None => format!("QUERY {host}"),
        };
        let line = self.send(&request)?;
        match line.split_once(' ') {
            Some(("200", route)) => Ok(Some(route.to_string())),
            Some(("404", _)) => Ok(None),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response `{line}`"),
            )),
        }
    }

    /// `STATS` → the key=value payload.
    pub fn stats(&mut self) -> io::Result<String> {
        self.expect_200("STATS")
    }

    /// `RELOAD` → the `reloaded generation=N entries=N` payload.
    pub fn reload(&mut self) -> io::Result<String> {
        self.expect_200("RELOAD")
    }

    /// `HEALTH` → the `ok generation=N entries=N` payload.
    pub fn health(&mut self) -> io::Result<String> {
        self.expect_200("HEALTH")
    }

    /// `QUIT`: tells the server to close this connection.
    pub fn quit(mut self) -> io::Result<()> {
        self.send("QUIT")?;
        Ok(())
    }

    fn expect_200(&mut self, verb: &str) -> io::Result<String> {
        let line = self.send(verb)?;
        match line.split_once(' ') {
            Some(("200", payload)) => Ok(payload.to_string()),
            _ => Err(io::Error::other(format!("{verb} failed: `{line}`"))),
        }
    }
}
