//! A synchronous client for the query protocol, v1 and v2.
//!
//! Used by `pathalias serve --query`, the integration tests, and the
//! `route_server` example. One connection, requests answered in order.
//!
//! Three altitudes of API:
//!
//! * one-shot helpers — [`Client::query`], [`Client::stats`], ... one
//!   request, one flush, one response;
//! * batched — [`Client::query_batch`] sends N queries in **one round
//!   trip**: a v2 `MQUERY` line when the server negotiates `PROTO 2`,
//!   or N pipelined v1 `QUERY` lines (single flush) against an old
//!   server — callers get the same answers either way;
//! * split — [`Client::send_request`] / [`Client::flush`] /
//!   [`Client::recv_response`] expose the raw halves so a caller can
//!   keep M requests in flight on one connection.
//!
//! Server-reported failures surface as [`ClientError::Server`] with
//! the status code and the server's own text, not a generic I/O error.
//!
//! Every query/stats/reload/health verb also comes in a `*_on` form
//! taking an optional **map namespace** (`Client::query_on(Some("regional"), …)`),
//! which frames the v2 `@name` qualifier; [`Client::maps`] lists the
//! namespaces a daemon serves. Qualified requests need protocol v2 —
//! against a v1-only daemon they fail with
//! [`ClientError::InvalidQuery`] *before* anything is sent (a v1
//! server would silently treat `@name` as a host name).

use crate::daemon::valid_map_name;
use crate::protocol::ProtoVersion;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Either transport, behind one type.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn split(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection dropped, reset, ...).
    Io(io::Error),
    /// The server answered with an error status (`400`/`500`); the
    /// message is the server's own text.
    Server {
        /// The numeric status code.
        code: u16,
        /// The text after the code, verbatim.
        message: String,
    },
    /// The response did not parse as `<code> <text>` — a protocol bug
    /// or a non-pathalias peer.
    Protocol(String),
    /// The caller's input cannot be framed on the wire (empty host,
    /// whitespace, a `:` in a batched host). Nothing was sent; the
    /// connection is still usable.
    InvalidQuery(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server { code, message } => write!(f, "server said {code}: {message}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ClientError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
///
/// Writes are buffered and flushed once per call: a one-shot request
/// is one TCP segment, and a batch is as few segments as it fits in,
/// which keeps Nagle's algorithm and delayed ACKs from inserting a
/// round-trip-scale stall into every query.
pub struct Client {
    reader: BufReader<Conn>,
    writer: BufWriter<Conn>,
    /// The protocol version negotiated on this connection; `None`
    /// until the first [`Client::negotiate`] (or the first batch,
    /// which negotiates lazily).
    proto: Option<ProtoVersion>,
}

/// A `QUERY` outcome: the route, `None` for a confirmed "no route",
/// or a typed error.
pub type QueryResult = Result<Option<String>, ClientError>;

/// A point-to-point `PATH` answer: the total cost, the hop count, and
/// the route as a mailer template (`%s` marks the user slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathInfo {
    /// Total path cost under the serving map's cost model.
    pub cost: u64,
    /// Number of links on the path.
    pub hops: u32,
    /// The bang-path route template, e.g. `duke!mit-ai!%s`.
    pub route: String,
}

/// What [`Client::maps`] reports: the namespaces a daemon serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapsInfo {
    /// Every namespace, in the daemon's declaration order.
    pub names: Vec<String>,
    /// The namespace unqualified requests go to.
    pub default: String,
}

impl Client {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::from_conn(Conn::Tcp(stream))
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Client::from_conn(Conn::Unix(UnixStream::connect(path)?))
    }

    fn from_conn(conn: Conn) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(conn.split()?),
            writer: BufWriter::new(conn),
            proto: None,
        })
    }

    // ---- the split halves ------------------------------------------

    /// Buffers one raw request line without flushing — the "send" half.
    /// Pair with [`Client::flush`] and [`Client::recv_response`] to
    /// keep several requests in flight on this connection; the server
    /// answers strictly in order.
    pub fn send_request(&mut self, request: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{request}")?;
        Ok(())
    }

    /// Flushes all buffered request lines to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one raw response line (`<code> <text>`, no newline) — the
    /// "recv" half. Blocks until the server answers.
    pub fn recv_response(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Parses a response line as a query answer: `200 route`,
    /// `404 …` → `None`, `400`/`500` → [`ClientError::Server`].
    fn parse_query_response(line: &str) -> QueryResult {
        match line.split_once(' ') {
            Some(("200", route)) => Ok(Some(route.to_string())),
            Some(("404", _)) => Ok(None),
            Some((code @ ("400" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "unexpected response `{line}`"
            ))),
        }
    }

    /// Sends one raw request line and returns the raw response line —
    /// one full round trip, composed from the split halves.
    pub fn send(&mut self, request: &str) -> Result<String, ClientError> {
        self.send_request(request)?;
        self.flush()?;
        self.recv_response()
    }

    // ---- negotiation -----------------------------------------------

    /// Negotiates protocol v2, falling back to v1 when the server does
    /// not know `PROTO` (any PR-1 daemon). Returns the version this
    /// connection now speaks; cached, so repeat calls are free.
    pub fn negotiate(&mut self) -> Result<ProtoVersion, ClientError> {
        if let Some(proto) = self.proto {
            return Ok(proto);
        }
        let line = self.send("PROTO 2")?;
        let proto = match line.split_once(' ') {
            Some(("200", payload)) if payload.trim() == "proto=2" => ProtoVersion::V2,
            // A v1 server answers `400 unknown verb …` — fall back.
            Some(("400", _)) => ProtoVersion::V1,
            _ => {
                return Err(ClientError::Protocol(format!(
                    "unexpected PROTO response `{line}`"
                )))
            }
        };
        self.proto = Some(proto);
        Ok(proto)
    }

    // ---- map namespaces --------------------------------------------

    /// Validates a map name and makes sure the connection can frame a
    /// `@name` qualifier (protocol v2). Returns the validated name.
    /// Nothing is written on error, so the connection stays usable — a
    /// v1 server must never receive `@name` (it would read it as a
    /// host).
    fn check_map(&mut self, map: Option<&str>) -> Result<Option<String>, ClientError> {
        let Some(name) = map else { return Ok(None) };
        if !valid_map_name(name) {
            return Err(ClientError::InvalidQuery(format!(
                "map name `{name}` cannot be framed on the wire"
            )));
        }
        if self.negotiate()? != ProtoVersion::V2 {
            return Err(ClientError::InvalidQuery(format!(
                "map `{name}` needs protocol v2, but the server only speaks v1"
            )));
        }
        Ok(Some(name.to_string()))
    }

    /// `MAPS` (v2) → the namespaces the daemon serves. Fails with
    /// [`ClientError::InvalidQuery`] against a v1-only daemon.
    pub fn maps(&mut self) -> Result<MapsInfo, ClientError> {
        if self.negotiate()? != ProtoVersion::V2 {
            return Err(ClientError::InvalidQuery(
                "MAPS needs protocol v2, but the server only speaks v1".to_string(),
            ));
        }
        let payload = self.expect_200("MAPS")?;
        // "maps=a,b,c default=a"
        let mut names = None;
        let mut default = None;
        for field in payload.split_whitespace() {
            if let Some(list) = field.strip_prefix("maps=") {
                names = Some(list.split(',').map(str::to_string).collect::<Vec<_>>());
            } else if let Some(d) = field.strip_prefix("default=") {
                default = Some(d.to_string());
            }
        }
        match (names, default) {
            (Some(names), Some(default)) => Ok(MapsInfo { names, default }),
            _ => Err(ClientError::Protocol(format!(
                "unexpected MAPS payload `{payload}`"
            ))),
        }
    }

    // ---- typed verbs -----------------------------------------------

    /// `QUERY host [user]` → `Ok(Some(route))`, `Ok(None)` for 404, or
    /// a typed error (`400`/`500` carry the server's text).
    pub fn query(&mut self, host: &str, user: Option<&str>) -> QueryResult {
        self.query_on(None, host, user)
    }

    /// [`Client::query`] against a named map namespace (`QUERY @map
    /// host [user]`, protocol v2). `None` queries the daemon's default
    /// map, exactly like [`Client::query`].
    ///
    /// Hosts may not begin with `@`: on a v2 connection the server
    /// would read such a token as a map qualifier, silently answering
    /// a different question. Real host names never start with `@`.
    pub fn query_on(&mut self, map: Option<&str>, host: &str, user: Option<&str>) -> QueryResult {
        if host.starts_with('@') {
            return Err(ClientError::InvalidQuery(format!(
                "host `{host}` cannot be framed (a leading `@` marks a map qualifier)"
            )));
        }
        let qualifier = match self.check_map(map)? {
            Some(name) => format!("@{name} "),
            None => String::new(),
        };
        let request = match user {
            Some(u) => format!("QUERY {qualifier}{host} {u}"),
            None => format!("QUERY {qualifier}{host}"),
        };
        let line = self.send(&request)?;
        Self::parse_query_response(&line)
    }

    /// Answers N queries in one round trip, preserving order.
    ///
    /// Against a v2 server this is one `MQUERY` line; against a v1
    /// server it pipelines N `QUERY` lines with a single flush.
    /// Negotiation happens lazily on the first batch. Hosts must be
    /// non-empty and free of whitespace and `:` (the v2 host:user
    /// separator — real host names never contain either); users must
    /// be non-empty and whitespace-free. Violations fail with
    /// [`ClientError::InvalidQuery`] *before* anything is written, so
    /// the connection stays usable.
    ///
    /// Each slot answers like [`Client::query`]: `Some(route)`,
    /// `None` for no-route. A server-reported error (`400`/`500`) in
    /// any slot fails the whole batch — but only after every response
    /// line has been consumed, so the connection is never left
    /// desynchronized.
    pub fn query_batch(
        &mut self,
        queries: &[(&str, Option<&str>)],
    ) -> Result<Vec<Option<String>>, ClientError> {
        self.query_batch_on(None, queries)
    }

    /// [`Client::query_batch`] against a named map namespace (`MQUERY
    /// @map …`). A named map needs protocol v2: against a v1-only
    /// server the batch fails with [`ClientError::InvalidQuery`]
    /// before anything is written (there is no v1 framing for a map
    /// qualifier). `None` batches against the default map with the v1
    /// pipelined fallback intact.
    pub fn query_batch_on(
        &mut self,
        map: Option<&str>,
        queries: &[(&str, Option<&str>)],
    ) -> Result<Vec<Option<String>>, ClientError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        for (host, user) in queries {
            // `:` is the v2 host:user separator; a leading `@` would
            // be read as a map qualifier by a v2 server. Neither can
            // appear in a real host name.
            if host.is_empty()
                || host.contains(char::is_whitespace)
                || host.contains(':')
                || host.starts_with('@')
            {
                return Err(ClientError::InvalidQuery(format!(
                    "host `{host}` cannot be framed in a batch"
                )));
            }
            if let Some(u) = user {
                if u.is_empty() || u.contains(char::is_whitespace) {
                    return Err(ClientError::InvalidQuery(format!(
                        "user `{u}` cannot be framed in a batch"
                    )));
                }
            }
        }
        let map = self.check_map(map)?;
        match self.negotiate()? {
            ProtoVersion::V2 => {
                let mut line = String::from("MQUERY");
                if let Some(name) = &map {
                    line.push_str(" @");
                    line.push_str(name);
                }
                for (host, user) in queries {
                    line.push(' ');
                    line.push_str(host);
                    if let Some(u) = user {
                        line.push(':');
                        line.push_str(u);
                    }
                }
                self.send_request(&line)?;
            }
            ProtoVersion::V1 => {
                for (host, user) in queries {
                    match user {
                        Some(u) => self.send_request(&format!("QUERY {host} {u}"))?,
                        None => self.send_request(&format!("QUERY {host}"))?,
                    }
                }
            }
        }
        self.flush()?;
        // Drain every response line first: an error in slot k must not
        // leave slots k+1..N buffered, or the next call on this client
        // would read a stale answer.
        let mut lines = Vec::with_capacity(queries.len());
        for _ in queries {
            lines.push(self.recv_response()?);
        }
        lines
            .iter()
            .map(|line| Self::parse_query_response(line))
            .collect()
    }

    /// `PATH src dst` (v2) → the point-to-point route from `src` to
    /// `dst`, `Ok(None)` when no route exists or `dst` is unknown.
    pub fn path(&mut self, src: &str, dst: &str) -> Result<Option<PathInfo>, ClientError> {
        self.path_on(None, src, dst)
    }

    /// [`Client::path`] against a named map namespace (`PATH @map src
    /// dst`). `PATH` needs protocol v2: against a v1-only daemon this
    /// fails with [`ClientError::InvalidQuery`] before anything is
    /// written (the verb does not exist there). An unknown or deleted
    /// *source* is the caller's mistake and surfaces as
    /// [`ClientError::Server`] with code 400.
    pub fn path_on(
        &mut self,
        map: Option<&str>,
        src: &str,
        dst: &str,
    ) -> Result<Option<PathInfo>, ClientError> {
        if src == "*" {
            return Err(ClientError::InvalidQuery(
                "source `*` asks for the via listing — use Client::via".to_string(),
            ));
        }
        Self::check_path_token(src)?;
        Self::check_path_token(dst)?;
        let qualifier = self.check_path_request(map)?;
        let line = self.send(&format!("PATH {qualifier}{src} {dst}"))?;
        match line.split_once(' ') {
            Some(("200", payload)) => Self::parse_path_payload(payload).map(Some),
            Some(("404", _)) => Ok(None),
            Some((code @ ("400" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "PATH got unexpected response `{line}`"
            ))),
        }
    }

    /// `PATH * dst` (v2) → the one-hop predecessors of `dst` with
    /// their link costs, cheapest-independent (sorted by node), or
    /// `Ok(None)` when `dst` is unknown.
    pub fn via(&mut self, dst: &str) -> Result<Option<Vec<(String, u64)>>, ClientError> {
        self.via_on(None, dst)
    }

    /// [`Client::via`] against a named map namespace
    /// (`PATH @map * dst`).
    pub fn via_on(
        &mut self,
        map: Option<&str>,
        dst: &str,
    ) -> Result<Option<Vec<(String, u64)>>, ClientError> {
        Self::check_path_token(dst)?;
        let qualifier = self.check_path_request(map)?;
        let line = self.send(&format!("PATH {qualifier}* {dst}"))?;
        match line.split_once(' ') {
            Some(("200", payload)) => Self::parse_via_payload(payload).map(Some),
            Some(("404", _)) => Ok(None),
            Some((code @ ("400" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "PATH got unexpected response `{line}`"
            ))),
        }
    }

    /// Shared `PATH` preflight: the destination must be framable, the
    /// connection must speak v2 (the verb does not exist at v1), and a
    /// map qualifier must validate. Nothing is written on error.
    fn check_path_request(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        if self.negotiate()? != ProtoVersion::V2 {
            return Err(ClientError::InvalidQuery(
                "PATH needs protocol v2, but the server only speaks v1".to_string(),
            ));
        }
        Ok(match self.check_map(map)? {
            Some(name) => format!("@{name} "),
            None => String::new(),
        })
    }

    /// A `PATH` endpoint must be one clean token: non-empty, no
    /// whitespace, and no leading `@` (a v2 server would read that as
    /// a map qualifier).
    fn check_path_token(token: &str) -> Result<(), ClientError> {
        if token.is_empty() || token.contains(char::is_whitespace) || token.starts_with('@') {
            return Err(ClientError::InvalidQuery(format!(
                "name `{token}` cannot be framed in a PATH request"
            )));
        }
        Ok(())
    }

    /// Parses `[map=NAME ]cost=<c> hops=<h> route=<route>`.
    fn parse_path_payload(payload: &str) -> Result<PathInfo, ClientError> {
        let bad = || ClientError::Protocol(format!("unexpected PATH payload `{payload}`"));
        let mut rest = payload;
        if rest.starts_with("map=") {
            rest = rest.split_once(' ').ok_or_else(bad)?.1;
        }
        let rest = rest.strip_prefix("cost=").ok_or_else(bad)?;
        let (cost, rest) = rest.split_once(' ').ok_or_else(bad)?;
        let rest = rest.strip_prefix("hops=").ok_or_else(bad)?;
        let (hops, rest) = rest.split_once(' ').ok_or_else(bad)?;
        let route = rest.strip_prefix("route=").ok_or_else(bad)?;
        Ok(PathInfo {
            cost: cost.parse().map_err(|_| bad())?,
            hops: hops.parse().map_err(|_| bad())?,
            route: route.to_string(),
        })
    }

    /// Parses `[map=NAME ]via dst=<dst> count=<n>[ name(cost),...]`.
    fn parse_via_payload(payload: &str) -> Result<Vec<(String, u64)>, ClientError> {
        let bad = || ClientError::Protocol(format!("unexpected PATH payload `{payload}`"));
        let mut rest = payload;
        if rest.starts_with("map=") {
            rest = rest.split_once(' ').ok_or_else(bad)?.1;
        }
        let rest = rest.strip_prefix("via dst=").ok_or_else(bad)?;
        let (_, rest) = rest.split_once(" count=").ok_or_else(bad)?;
        let (count, list) = match rest.split_once(' ') {
            Some((n, list)) => (n, Some(list)),
            None => (rest, None),
        };
        let count: usize = count.parse().map_err(|_| bad())?;
        let mut entries = Vec::with_capacity(count);
        if let Some(list) = list {
            for item in list.split(',') {
                let (name, cost) = item
                    .strip_suffix(')')
                    .and_then(|i| i.split_once('('))
                    .ok_or_else(bad)?;
                entries.push((name.to_string(), cost.parse().map_err(|_| bad())?));
            }
        }
        if entries.len() != count {
            return Err(bad());
        }
        Ok(entries)
    }

    /// Frames `VERB` or `VERB @map` after validating the map name.
    fn qualified(&mut self, verb: &str, map: Option<&str>) -> Result<String, ClientError> {
        Ok(match self.check_map(map)? {
            Some(name) => format!("{verb} @{name}"),
            None => verb.to_string(),
        })
    }

    /// `STATS` → the key=value payload.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.stats_on(None)
    }

    /// `STATS [@map]` → one map's counters (plus the daemon-wide
    /// connection counters). `None` reports the default map.
    pub fn stats_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let request = self.qualified("STATS", map)?;
        self.expect_200(&request)
    }

    /// `RELOAD` → the `reloaded generation=N entries=N` payload.
    pub fn reload(&mut self) -> Result<String, ClientError> {
        self.reload_on(None)
    }

    /// `RELOAD [@map]`: rebuilds one namespace from its source.
    /// `None` reloads the default map.
    pub fn reload_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let request = self.qualified("RELOAD", map)?;
        self.expect_200(&request)
    }

    /// `HEALTH` → the `ok generation=N entries=N` payload.
    pub fn health(&mut self) -> Result<String, ClientError> {
        self.health_on(None)
    }

    /// `HEALTH [@map]` → one namespace's generation and entry count.
    pub fn health_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let request = self.qualified("HEALTH", map)?;
        self.expect_200(&request)
    }

    /// Runs a v2 multi-line verb: a `200 <header_prefix><N>` header
    /// announces N payload lines, which are read verbatim.
    fn multi_line(
        &mut self,
        verb: &str,
        header_prefix: &str,
        map: Option<&str>,
    ) -> Result<Vec<String>, ClientError> {
        if self.negotiate()? != ProtoVersion::V2 {
            return Err(ClientError::InvalidQuery(format!(
                "{verb} needs protocol v2, but the server only speaks v1"
            )));
        }
        let request = self.qualified(verb, map)?;
        let payload = self.expect_200(&request)?;
        let count: usize = payload
            .strip_prefix(header_prefix)
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| {
                ClientError::Protocol(format!("{verb} got unexpected header `{payload}`"))
            })?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.recv_response()?);
        }
        Ok(lines)
    }

    /// `METRICS` (v2) → the Prometheus text exposition document
    /// covering every served map.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.metrics_on(None)
    }

    /// `METRICS [@map]` (v2) → the Prometheus text exposition
    /// document, restricted to one namespace when `map` is given.
    /// Fails with [`ClientError::InvalidQuery`] against a v1-only
    /// daemon (the verb does not exist there).
    pub fn metrics_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let lines = self.multi_line("METRICS", "metrics lines=", map)?;
        let mut text = String::new();
        for line in lines {
            text.push_str(&line);
            text.push('\n');
        }
        Ok(text)
    }

    /// `SLOWLOG` (v2) → the worst-N slowest requests across every
    /// map, one `key=value` line per entry, slowest first.
    pub fn slowlog(&mut self) -> Result<Vec<String>, ClientError> {
        self.slowlog_on(None)
    }

    /// `SLOWLOG [@map]` (v2) → one namespace's slow-query log when
    /// `map` is given, else all maps merged.
    pub fn slowlog_on(&mut self, map: Option<&str>) -> Result<Vec<String>, ClientError> {
        self.multi_line("SLOWLOG", "slowlog entries=", map)
    }

    /// `SHUTDOWN` (v2): asks the daemon to stop accepting and drain.
    /// Negotiates v2 first; fails with [`ClientError::Server`] against
    /// a v1-only daemon.
    pub fn shutdown(mut self) -> Result<String, ClientError> {
        self.negotiate()?;
        self.expect_200("SHUTDOWN")
    }

    /// `QUIT`: tells the server to close this connection.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        Ok(())
    }

    fn expect_200(&mut self, verb: &str) -> Result<String, ClientError> {
        let line = self.send(verb)?;
        match line.split_once(' ') {
            Some(("200", payload)) => Ok(payload.to_string()),
            Some((code @ ("400" | "404" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "{verb} got unexpected response `{line}`"
            ))),
        }
    }
}

/// A single-shot datagram client for the daemon's UDP endpoint.
///
/// One request per datagram, one response datagram back — no session,
/// no negotiation (datagrams always parse at protocol v2, so `@map`
/// qualifiers work directly). Only the single-line verbs exist over
/// UDP: `QUERY`, `PATH`, `HEALTH`, `STATS`, `MAPS`. Answers are
/// parsed exactly like the TCP [`Client`]'s, so the two transports
/// return identical results for the same question.
///
/// UDP may drop either direction; every call retries a few times and
/// surfaces a timeout as [`ClientError::Io`]. Requests are idempotent
/// reads, so a retried datagram is harmless.
pub struct UdpClient {
    sock: std::net::UdpSocket,
}

impl UdpClient {
    /// How long one attempt waits for the response datagram.
    const ATTEMPT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);
    /// How many attempts before a call reports a timeout.
    const ATTEMPTS: usize = 3;

    /// Binds an ephemeral local socket of the matching address family
    /// and connects it to the daemon's UDP endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<UdpClient> {
        let mut last_err = None;
        for remote in addr.to_socket_addrs()? {
            let local = if remote.is_ipv4() {
                "0.0.0.0:0"
            } else {
                "[::]:0"
            };
            let sock = match std::net::UdpSocket::bind(local) {
                Ok(s) => s,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match sock.connect(remote) {
                Ok(()) => {
                    sock.set_read_timeout(Some(Self::ATTEMPT_TIMEOUT))?;
                    return Ok(UdpClient { sock });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
        }))
    }

    /// Sends one raw request line as a datagram and returns the raw
    /// response line — the UDP counterpart of [`Client::send`].
    pub fn send(&mut self, request: &str) -> Result<String, ClientError> {
        let mut payload = request.as_bytes().to_vec();
        payload.push(b'\n');
        // The largest payload a response datagram can carry.
        let mut buf = vec![0u8; 65507];
        for _ in 0..Self::ATTEMPTS {
            self.sock.send(&payload)?;
            match self.sock.recv(&mut buf) {
                Ok(n) => {
                    let text = String::from_utf8_lossy(&buf[..n]);
                    return Ok(text.trim_end_matches(['\r', '\n']).to_string());
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(ClientError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "no response datagram",
        )))
    }

    /// Validates a map qualifier. Unlike the TCP client there is no
    /// negotiation to check — datagrams always parse at v2.
    fn check_map(map: Option<&str>) -> Result<String, ClientError> {
        match map {
            None => Ok(String::new()),
            Some(name) if valid_map_name(name) => Ok(format!("@{name} ")),
            Some(name) => Err(ClientError::InvalidQuery(format!(
                "map name `{name}` cannot be framed on the wire"
            ))),
        }
    }

    /// `QUERY host [user]` over one datagram; answers exactly like
    /// [`Client::query`].
    pub fn query(&mut self, host: &str, user: Option<&str>) -> QueryResult {
        self.query_on(None, host, user)
    }

    /// [`UdpClient::query`] against a named map namespace.
    pub fn query_on(&mut self, map: Option<&str>, host: &str, user: Option<&str>) -> QueryResult {
        if host.starts_with('@') {
            return Err(ClientError::InvalidQuery(format!(
                "host `{host}` cannot be framed (a leading `@` marks a map qualifier)"
            )));
        }
        let qualifier = Self::check_map(map)?;
        let request = match user {
            Some(u) => format!("QUERY {qualifier}{host} {u}"),
            None => format!("QUERY {qualifier}{host}"),
        };
        let line = self.send(&request)?;
        Client::parse_query_response(&line)
    }

    /// `PATH src dst` over one datagram; answers exactly like
    /// [`Client::path`].
    pub fn path(&mut self, src: &str, dst: &str) -> Result<Option<PathInfo>, ClientError> {
        self.path_on(None, src, dst)
    }

    /// [`UdpClient::path`] against a named map namespace.
    pub fn path_on(
        &mut self,
        map: Option<&str>,
        src: &str,
        dst: &str,
    ) -> Result<Option<PathInfo>, ClientError> {
        if src == "*" {
            return Err(ClientError::InvalidQuery(
                "source `*` asks for the via listing — use UdpClient::via".to_string(),
            ));
        }
        Client::check_path_token(src)?;
        Client::check_path_token(dst)?;
        let qualifier = Self::check_map(map)?;
        let line = self.send(&format!("PATH {qualifier}{src} {dst}"))?;
        match line.split_once(' ') {
            Some(("200", payload)) => Client::parse_path_payload(payload).map(Some),
            Some(("404", _)) => Ok(None),
            Some((code @ ("400" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "PATH got unexpected response `{line}`"
            ))),
        }
    }

    /// `PATH * dst` over one datagram; answers exactly like
    /// [`Client::via`].
    pub fn via(&mut self, dst: &str) -> Result<Option<Vec<(String, u64)>>, ClientError> {
        self.via_on(None, dst)
    }

    /// [`UdpClient::via`] against a named map namespace.
    pub fn via_on(
        &mut self,
        map: Option<&str>,
        dst: &str,
    ) -> Result<Option<Vec<(String, u64)>>, ClientError> {
        Client::check_path_token(dst)?;
        let qualifier = Self::check_map(map)?;
        let line = self.send(&format!("PATH {qualifier}* {dst}"))?;
        match line.split_once(' ') {
            Some(("200", payload)) => Client::parse_via_payload(payload).map(Some),
            Some(("404", _)) => Ok(None),
            Some((code @ ("400" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "PATH got unexpected response `{line}`"
            ))),
        }
    }

    /// `HEALTH [@map]` over one datagram.
    pub fn health_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let qualifier = Self::check_map(map)?;
        self.expect_200(format!("HEALTH {qualifier}").trim_end())
    }

    /// `HEALTH` over one datagram.
    pub fn health(&mut self) -> Result<String, ClientError> {
        self.health_on(None)
    }

    /// `STATS [@map]` over one datagram.
    pub fn stats_on(&mut self, map: Option<&str>) -> Result<String, ClientError> {
        let qualifier = Self::check_map(map)?;
        self.expect_200(format!("STATS {qualifier}").trim_end())
    }

    /// `STATS` over one datagram.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.stats_on(None)
    }

    /// `MAPS` over one datagram → the namespaces the daemon serves.
    pub fn maps(&mut self) -> Result<MapsInfo, ClientError> {
        let payload = self.expect_200("MAPS")?;
        let mut names = None;
        let mut default = None;
        for field in payload.split_whitespace() {
            if let Some(list) = field.strip_prefix("maps=") {
                names = Some(list.split(',').map(str::to_string).collect::<Vec<_>>());
            } else if let Some(d) = field.strip_prefix("default=") {
                default = Some(d.to_string());
            }
        }
        match (names, default) {
            (Some(names), Some(default)) => Ok(MapsInfo { names, default }),
            _ => Err(ClientError::Protocol(format!(
                "unexpected MAPS payload `{payload}`"
            ))),
        }
    }

    fn expect_200(&mut self, verb: &str) -> Result<String, ClientError> {
        let line = self.send(verb)?;
        match line.split_once(' ') {
            Some(("200", payload)) => Ok(payload.to_string()),
            Some((code @ ("400" | "404" | "500"), message)) => Err(ClientError::Server {
                code: code.parse().expect("literal code"),
                message: message.to_string(),
            }),
            _ => Err(ClientError::Protocol(format!(
                "{verb} got unexpected response `{line}`"
            ))),
        }
    }
}
