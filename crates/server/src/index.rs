//! The read-mostly serving index: an immutable snapshot per table
//! generation behind an atomic swap, wrapped in a generation-stamped
//! cache — all generic over [`Resolver`], so the same decorator serves
//! an in-memory [`SharedRouteDb`], a page-cache-backed
//! [`MappedDb`](pathalias_mailer::disk::MappedDb), or any future
//! backend.
//!
//! Queries clone an `Arc` out of a [`SwapCell`] (one brief read-lock,
//! no contention with other readers) and then run entirely against
//! that snapshot: a reload mid-query can never produce a response that
//! mixes the old and new tables. In-flight queries on the old
//! generation finish against the old `Arc`, which frees itself when the
//! last of them drops.

use crate::cache::{CachedHit, ShardedCache};
use crate::metrics::{bump, Metrics};
use pathalias_mailer::{ExactOutcome, Resolution, ResolveError, Resolver, RouteDb, SharedRouteDb};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One immutable table generation over any [`Resolver`] backend.
#[derive(Debug, Clone)]
pub struct RouteIndex<R = SharedRouteDb> {
    resolver: R,
    generation: u64,
}

impl<R: Resolver> RouteIndex<R> {
    /// Freezes `resolver` as generation `generation`.
    pub fn with_resolver(resolver: R, generation: u64) -> RouteIndex<R> {
        RouteIndex {
            resolver,
            generation,
        }
    }

    /// The table generation (0 = the initial load).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Entries in the table.
    pub fn entries(&self) -> usize {
        self.resolver.entries()
    }

    /// The underlying backend.
    pub fn resolver(&self) -> &R {
        &self.resolver
    }
}

impl RouteIndex<SharedRouteDb> {
    /// Freezes an in-memory `db` as generation `generation`.
    pub fn new(db: RouteDb, generation: u64) -> RouteIndex<SharedRouteDb> {
        RouteIndex {
            resolver: SharedRouteDb::new(db),
            generation,
        }
    }

    /// The underlying shared database handle.
    pub fn db(&self) -> &SharedRouteDb {
        &self.resolver
    }
}

/// The swap point: readers clone the current `Arc`, a reload stores a
/// new one. This is the `arc-swap` idiom on std primitives — the write
/// lock is held only for the pointer store, so readers never block each
/// other and a reload never blocks an in-flight query.
#[derive(Debug)]
pub struct SwapCell<R = SharedRouteDb> {
    current: RwLock<Arc<RouteIndex<R>>>,
}

impl<R: Resolver> SwapCell<R> {
    /// A cell initially serving `index`.
    pub fn new(index: RouteIndex<R>) -> SwapCell<R> {
        SwapCell {
            current: RwLock::new(Arc::new(index)),
        }
    }

    /// The current snapshot. Cheap: a read-lock around one `Arc` clone.
    pub fn load(&self) -> Arc<RouteIndex<R>> {
        self.current.read().expect("swap cell poisoned").clone()
    }

    /// Atomically replaces the snapshot; in-flight readers keep the old
    /// one alive until they finish.
    pub fn store(&self, index: RouteIndex<R>) {
        *self.current.write().expect("swap cell poisoned") = Arc::new(index);
    }
}

/// The serving decorator: a generation-stamped snapshot of any
/// [`Resolver`] plus the sharded LRU cache and query counters — itself
/// a `Resolver`, so backends and their cached form are interchangeable
/// everywhere the trait is accepted.
///
/// Every resolution (exact, suffix, default, *and* confirmed miss) is
/// cached under the generation it was computed against; a
/// [`replace`](Cached::replace) bumps the generation, so a reload
/// invalidates lazily and a pinned in-flight query can never see
/// another generation's cache entries.
///
/// # Examples
///
/// ```
/// use pathalias_mailer::{Resolver, RouteDb};
/// use pathalias_server::index::Cached;
/// use pathalias_server::Metrics;
/// use std::sync::Arc;
///
/// let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
/// let cached = Cached::new(
///     pathalias_mailer::SharedRouteDb::new(db),
///     1024, // cache capacity
///     4,    // shards
///     Arc::new(Metrics::default()),
/// );
/// // First lookup walks the table; the repeat is a cache hit.
/// assert_eq!(cached.resolve("x.mit.edu", "u").unwrap().route, "seismo!x.mit.edu!u");
/// assert_eq!(cached.resolve("x.mit.edu", "v").unwrap().route, "seismo!x.mit.edu!v");
/// ```
pub struct Cached<R> {
    swap: SwapCell<R>,
    cache: ShardedCache,
    metrics: Arc<Metrics>,
    /// The generation the next successful [`Cached::replace`] will
    /// publish.
    next_generation: AtomicU64,
}

impl<R: Resolver> Cached<R> {
    /// Wraps `resolver` (as generation 0) with a cache of
    /// `cache_capacity` entries across `cache_shards` shards.
    pub fn new(
        resolver: R,
        cache_capacity: usize,
        cache_shards: usize,
        metrics: Arc<Metrics>,
    ) -> Cached<R> {
        Cached {
            swap: SwapCell::new(RouteIndex::with_resolver(resolver, 0)),
            cache: ShardedCache::new(cache_capacity, cache_shards),
            metrics,
            next_generation: AtomicU64::new(1),
        }
    }

    /// The current snapshot, for callers that need to pin one across
    /// several operations (generation and entry counts for `HEALTH`,
    /// a batch that must answer from one table, ...).
    pub fn snapshot(&self) -> Arc<RouteIndex<R>> {
        self.swap.load()
    }

    /// Swaps in a freshly-loaded backend. Returns the generation now
    /// serving. In-flight queries pinned to the old snapshot finish
    /// against it; the cache floor moves first, so a cache entry can
    /// never outlive its table.
    pub fn replace(&self, resolver: R) -> u64 {
        let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
        let index = RouteIndex::with_resolver(resolver, generation);
        self.cache.invalidate_to(generation);
        self.swap.store(index);
        generation
    }

    /// Resolves against a pinned snapshot, consulting (and feeding) the
    /// cache under that snapshot's generation.
    pub fn resolve_at(
        &self,
        index: &RouteIndex<R>,
        host: &str,
        user: &str,
    ) -> Result<Resolution, ResolveError> {
        bump(&self.metrics.queries);
        let generation = index.generation();

        // Backends with a cheap exact probe (in-memory: one lock-free
        // hash probe) answer exact-match traffic without ever touching
        // the mutex-guarded LRU — the cache exists for the multi-probe
        // suffix walk and for disk-backed tables, not for lookups the
        // backend does faster itself.
        match index.resolver().resolve_exact(host, user) {
            ExactOutcome::Hit(resolution) => {
                bump(&self.metrics.hits);
                return Ok(resolution);
            }
            ExactOutcome::MissExact | ExactOutcome::Unsupported => {}
        }

        if let Some(cached) = self.cache.get(generation, host) {
            bump(&self.metrics.cache_hits);
            return match cached {
                Some(hit) => {
                    bump(&self.metrics.hits);
                    Ok(Resolution::render(&hit.format, hit.via, host, user))
                }
                None => {
                    bump(&self.metrics.misses);
                    Err(ResolveError::NoRoute)
                }
            };
        }

        bump(&self.metrics.cache_misses);
        match index.resolver().resolve(host, user) {
            Ok(resolution) => {
                bump(&self.metrics.hits);
                self.cache.insert(
                    generation,
                    host,
                    Some(CachedHit {
                        format: Arc::from(resolution.format.as_str()),
                        via: resolution.via.clone(),
                    }),
                );
                Ok(resolution)
            }
            Err(ResolveError::NoRoute) => {
                bump(&self.metrics.misses);
                self.cache.insert(generation, host, None);
                Err(ResolveError::NoRoute)
            }
            // Backend failures (disk I/O, corruption) are transient
            // from the cache's point of view: never cached.
            Err(e) => {
                bump(&self.metrics.resolve_errors);
                Err(e)
            }
        }
    }

    /// The sharded cache (for `STATS` and tests).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The shared counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl<R: Resolver> Resolver for Cached<R> {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        let snapshot = self.swap.load();
        self.resolve_at(&snapshot, host, user)
    }

    fn entries(&self) -> usize {
        self.swap.load().entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_mailer::ResolvedVia;
    use std::sync::atomic::Ordering;

    fn index(text: &str, generation: u64) -> RouteIndex {
        RouteIndex::new(RouteDb::from_output(text).unwrap(), generation)
    }

    fn cached(text: &str) -> Cached<SharedRouteDb> {
        let db = RouteDb::from_output(text).unwrap();
        Cached::new(SharedRouteDb::new(db), 16, 2, Arc::new(Metrics::default()))
    }

    #[test]
    fn exact_and_suffix_and_miss() {
        let c = cached("seismo\tseismo!%s\n.edu\tseismo!%s\n");
        assert_eq!(c.resolve("seismo", "rick").unwrap().route, "seismo!rick");
        let suffix = c.resolve("caip.rutgers.edu", "pleasant").unwrap();
        assert_eq!(suffix.route, "seismo!caip.rutgers.edu!pleasant");
        assert_eq!(
            suffix.via,
            ResolvedVia::DomainSuffix {
                suffix: ".edu".into()
            }
        );
        assert!(matches!(
            c.resolve("nowhere", "u"),
            Err(ResolveError::NoRoute)
        ));
        let m = c.metrics();
        assert_eq!(m.queries.load(Ordering::Relaxed), 3);
        assert_eq!(m.hits.load(Ordering::Relaxed), 2);
        assert_eq!(m.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn repeat_lookup_hits_cache() {
        let c = cached(".edu\tgw!%s\nhub\thub!%s\n");
        let a = c.resolve("x.rutgers.edu", "u").unwrap();
        let b = c.resolve("x.rutgers.edu", "v").unwrap();
        assert_eq!(a.route, "gw!x.rutgers.edu!u");
        assert_eq!(b.route, "gw!x.rutgers.edu!v");
        // Exact hits on an in-memory backend take the lock-free fast
        // path and never touch the cache.
        let _ = c.resolve("hub", "u").unwrap();
        let _ = c.resolve("hub", "v").unwrap();
        let m = c.metrics();
        assert_eq!(m.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(m.hits.load(Ordering::Relaxed), 4);
        // Negative results are cached as well.
        assert!(c.resolve("a.b.nowhere", "u").is_err());
        assert!(c.resolve("a.b.nowhere", "u").is_err());
        assert_eq!(m.cache_hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn swap_is_atomic_for_readers() {
        let cell = SwapCell::new(index("a\ta!%s\n", 0));
        let old = cell.load();
        cell.store(index("a\tb!a!%s\n", 1));
        // The old snapshot stays valid for readers that grabbed it.
        assert_eq!(old.generation(), 0);
        assert_eq!(old.db().route_to("a", "u").unwrap(), "a!u");
        assert_eq!(cell.load().generation(), 1);
        assert_eq!(cell.load().db().route_to("a", "u").unwrap(), "b!a!u");
    }

    #[test]
    fn replace_does_not_leak_cache_across_generations() {
        let c = cached(".edu\told-gw!%s\n");
        let old = c.snapshot();
        assert_eq!(c.resolve("h.edu", "u").unwrap().route, "old-gw!h.edu!u");

        let new_db = RouteDb::from_output(".edu\tnew-gw!%s\n").unwrap();
        let generation = c.replace(SharedRouteDb::new(new_db));
        assert_eq!(generation, 1);
        assert_eq!(
            c.resolve("h.edu", "u").unwrap().route,
            "new-gw!h.edu!u",
            "new snapshot must not see the old cached route"
        );
        // And a straggler still holding the old snapshot re-resolves
        // against its own table rather than seeing generation-1 data.
        assert_eq!(
            c.resolve_at(&old, "h.edu", "u").unwrap().route,
            "old-gw!h.edu!u"
        );
    }

    #[test]
    fn cached_over_mapped_db() {
        // The decorator is generic: here it serves a PADB1 file
        // through MappedDb with identical semantics.
        use pathalias_mailer::disk::{write_db, MappedDb};
        let path = std::env::temp_dir().join(format!(
            "pathalias-cached-mapped-{}.padb",
            std::process::id()
        ));
        let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
        write_db(&db, &path).unwrap();
        let c = Cached::new(
            MappedDb::open(&path).unwrap(),
            16,
            2,
            Arc::new(Metrics::default()),
        );
        assert_eq!(
            c.resolve("caip.rutgers.edu", "pleasant").unwrap().route,
            "seismo!caip.rutgers.edu!pleasant"
        );
        // Second hit comes from the cache, not the disk.
        assert_eq!(
            c.resolve("caip.rutgers.edu", "honey").unwrap().route,
            "seismo!caip.rutgers.edu!honey"
        );
        assert_eq!(c.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(Resolver::entries(&c), 2);
        std::fs::remove_file(path).unwrap();
    }
}
