//! The read-mostly serving index: an immutable snapshot per table
//! generation, swapped atomically on reload.
//!
//! Queries clone an `Arc` out of a [`SwapCell`] (one brief read-lock,
//! no contention with other readers) and then run entirely against
//! that snapshot: a reload mid-query can never produce a response that
//! mixes the old and new tables. In-flight queries on the old
//! generation finish against the old `Arc`, which frees itself when the
//! last of them drops.

use crate::cache::ShardedCache;
use crate::metrics::{bump, Metrics};
use pathalias_mailer::{MatchKind, RouteDb, SharedRouteDb};
use std::sync::{Arc, RwLock};

/// One immutable table generation.
#[derive(Debug, Clone)]
pub struct RouteIndex {
    db: SharedRouteDb,
    generation: u64,
}

impl RouteIndex {
    /// Freezes `db` as generation `generation`.
    pub fn new(db: RouteDb, generation: u64) -> RouteIndex {
        RouteIndex {
            db: SharedRouteDb::new(db),
            generation,
        }
    }

    /// The table generation (0 = the initial load).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Entries in the table.
    pub fn entries(&self) -> usize {
        self.db.len()
    }

    /// The underlying shared database handle.
    pub fn db(&self) -> &SharedRouteDb {
        &self.db
    }
}

/// The swap point: readers clone the current `Arc`, a reload stores a
/// new one. This is the `arc-swap` idiom on std primitives — the write
/// lock is held only for the pointer store, so readers never block each
/// other and a reload never blocks an in-flight query.
#[derive(Debug)]
pub struct SwapCell {
    current: RwLock<Arc<RouteIndex>>,
}

impl SwapCell {
    /// A cell initially serving `index`.
    pub fn new(index: RouteIndex) -> SwapCell {
        SwapCell {
            current: RwLock::new(Arc::new(index)),
        }
    }

    /// The current snapshot. Cheap: a read-lock around one `Arc` clone.
    pub fn load(&self) -> Arc<RouteIndex> {
        self.current.read().expect("swap cell poisoned").clone()
    }

    /// Atomically replaces the snapshot; in-flight readers keep the old
    /// one alive until they finish.
    pub fn store(&self, index: RouteIndex) {
        *self.current.write().expect("swap cell poisoned") = Arc::new(index);
    }
}

/// Resolves one query against one snapshot, consulting (and feeding)
/// the suffix cache. Returns the complete route with the user argument
/// substituted, or `None` if the table has no route.
pub fn resolve(
    index: &RouteIndex,
    cache: &ShardedCache,
    metrics: &Metrics,
    host: &str,
    user: &str,
) -> Option<String> {
    bump(&metrics.queries);

    // Exact match: one hash probe, no cache needed.
    if let Some(entry) = index.db().get(host) {
        bump(&metrics.hits);
        return Some(entry.route.replacen("%s", user, 1));
    }

    // Suffix path: try the cache, keyed by this snapshot's generation.
    let generation = index.generation();
    if let Some(cached) = cache.get(generation, host) {
        bump(&metrics.cache_hits);
        return match cached {
            Some(route) => {
                bump(&metrics.hits);
                // "The argument here is not [the user], it is
                // caip.rutgers.edu!pleasant": suffix routes carry the
                // full destination.
                Some(route.replacen("%s", &format!("{host}!{user}"), 1))
            }
            None => {
                bump(&metrics.misses);
                None
            }
        };
    }

    bump(&metrics.cache_misses);
    match index.db().lookup(host) {
        Some(hit) => match hit.kind {
            // Exact was already ruled out above, but stay defensive.
            MatchKind::Exact => {
                bump(&metrics.hits);
                Some(hit.entry.route.replacen("%s", user, 1))
            }
            MatchKind::DomainSuffix(_) => {
                bump(&metrics.hits);
                let route: Arc<str> = Arc::from(hit.entry.route.as_str());
                let full = route.replacen("%s", &format!("{host}!{user}"), 1);
                cache.insert(generation, host, Some(route));
                Some(full)
            }
        },
        None => {
            bump(&metrics.misses);
            cache.insert(generation, host, None);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn index(text: &str, generation: u64) -> RouteIndex {
        RouteIndex::new(RouteDb::from_output(text).unwrap(), generation)
    }

    #[test]
    fn exact_and_suffix_and_miss() {
        let idx = index("seismo\tseismo!%s\n.edu\tseismo!%s\n", 0);
        let cache = ShardedCache::new(16, 2);
        let metrics = Metrics::default();
        assert_eq!(
            resolve(&idx, &cache, &metrics, "seismo", "rick").unwrap(),
            "seismo!rick"
        );
        assert_eq!(
            resolve(&idx, &cache, &metrics, "caip.rutgers.edu", "pleasant").unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
        assert_eq!(resolve(&idx, &cache, &metrics, "nowhere", "u"), None);
        assert_eq!(metrics.queries.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.hits.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn second_suffix_lookup_hits_cache() {
        let idx = index(".edu\tgw!%s\n", 0);
        let cache = ShardedCache::new(16, 2);
        let metrics = Metrics::default();
        let a = resolve(&idx, &cache, &metrics, "x.rutgers.edu", "u").unwrap();
        let b = resolve(&idx, &cache, &metrics, "x.rutgers.edu", "v").unwrap();
        assert_eq!(a, "gw!x.rutgers.edu!u");
        assert_eq!(b, "gw!x.rutgers.edu!v");
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        // Negative results are cached too.
        assert_eq!(resolve(&idx, &cache, &metrics, "a.b.nowhere", "u"), None);
        assert_eq!(resolve(&idx, &cache, &metrics, "a.b.nowhere", "u"), None);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn swap_is_atomic_for_readers() {
        let cell = SwapCell::new(index("a\ta!%s\n", 0));
        let old = cell.load();
        cell.store(index("a\tb!a!%s\n", 1));
        // The old snapshot stays valid for readers that grabbed it.
        assert_eq!(old.generation(), 0);
        assert_eq!(old.db().route_to("a", "u").unwrap(), "a!u");
        assert_eq!(cell.load().generation(), 1);
        assert_eq!(cell.load().db().route_to("a", "u").unwrap(), "b!a!u");
    }

    #[test]
    fn cache_does_not_leak_across_generations() {
        let cache = ShardedCache::new(16, 2);
        let metrics = Metrics::default();
        let old = index(".edu\told-gw!%s\n", 0);
        let new = index(".edu\tnew-gw!%s\n", 1);
        assert_eq!(
            resolve(&old, &cache, &metrics, "h.edu", "u").unwrap(),
            "old-gw!h.edu!u"
        );
        cache.invalidate_to(1);
        assert_eq!(
            resolve(&new, &cache, &metrics, "h.edu", "u").unwrap(),
            "new-gw!h.edu!u",
            "new snapshot must not see the old cached route"
        );
        // And a straggler still holding the old snapshot re-resolves
        // against its own table rather than seeing generation-1 data.
        assert_eq!(
            resolve(&old, &cache, &metrics, "h.edu", "u").unwrap(),
            "old-gw!h.edu!u"
        );
    }
}
