//! The pathalias route-query daemon.
//!
//! The paper stops at a file: "output from pathalias is a simple
//! linear file ... a separate program may be used to convert this file
//! into a format appropriate for rapid database retrieval." This crate
//! is the step after that program — a long-lived process that *serves*
//! those lookups to many concurrent clients, with the table hot-swapped
//! in place when the map changes:
//!
//! * [`protocol`] — the line-oriented wire format, v1 (`QUERY`,
//!   `STATS`, `RELOAD`, `HEALTH`, `QUIT`) and the negotiated v2
//!   (`PROTO 2`, batched `MQUERY`, point-to-point `PATH`, `SHUTDOWN`,
//!   `MAPS` and per-request `@name` map qualifiers); a v1 session is
//!   byte-for-byte what the PR-1 daemon spoke;
//! * [`index`] — immutable per-generation snapshots behind an atomic
//!   swap cell, wrapped by [`Cached`]: a generation-stamped cache
//!   generic over any [`Resolver`](pathalias_mailer::Resolver)
//!   backend — in-memory tables and page-cache-backed PADB1 files
//!   serve through the same decorator;
//! * [`cache`] — a sharded, bounded, generation-stamped LRU with
//!   per-shard hit/miss/eviction counters;
//! * [`reload`] — the table sources (PADB1 in-memory or in-place,
//!   linear route file, full map pipeline) and multi-source
//!   validation of rebuilt maps;
//! * [`daemon`] — TCP, Unix-socket, and UDP endpoints served by a
//!   fixed pool of epoll/kqueue event-loop workers (`SO_REUSEPORT`
//!   shards the accept load; non-unix platforms fall back to a thread
//!   per connection), graceful [`drain`](ServerHandle::drain), and
//!   **sharded multi-map serving**: one daemon holds N named maps
//!   (`--map-set`), each with its own snapshot, cache, counters, and
//!   independent hot reload — unqualified requests go to the default
//!   map, so a single-map daemon behaves exactly as before;
//! * [`client`] — the synchronous client: one-shot queries, batched
//!   [`query_batch`](Client::query_batch) (one round trip for N
//!   queries), point-to-point [`path`](Client::path) /
//!   [`via`](Client::via), and a send/recv split for pipelining;
//! * [`metrics`] — relaxed atomic counters rendered by `STATS`;
//! * [`telemetry`] — per-map latency histograms, the worst-N
//!   slow-query log, and reload phase timings, exposed over the
//!   protocol-v2 `METRICS` (Prometheus text) and `SLOWLOG` verbs.
//!
//! # Examples
//!
//! ```
//! use pathalias_server::{Client, MapSource, Server, ServerConfig};
//!
//! // A route file (pathalias output) to serve.
//! let path = std::env::temp_dir().join(format!("doc-ex-{}.routes", std::process::id()));
//! std::fs::write(&path, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
//!
//! let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone()))).unwrap();
//! let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();
//! assert_eq!(
//!     client.query("caip.rutgers.edu", Some("pleasant")).unwrap().unwrap(),
//!     "seismo!caip.rutgers.edu!pleasant",
//! );
//! // Protocol v2: three answers in one round trip, order preserved.
//! let batch = client.query_batch(&[
//!     ("seismo", Some("rick")),
//!     ("no.such.host", None),
//!     ("x.mit.edu", Some("minsky")),
//! ]).unwrap();
//! assert_eq!(batch[0].as_deref(), Some("seismo!rick"));
//! assert!(batch[1].is_none());
//! assert_eq!(batch[2].as_deref(), Some("seismo!x.mit.edu!minsky"));
//! client.quit().unwrap();
//! handle.shutdown();
//! std::fs::remove_file(path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
#[cfg(unix)]
mod event;
pub mod index;
pub mod metrics;
pub mod protocol;
pub mod reload;
pub mod telemetry;

pub use cache::{CachedHit, ShardStats, ShardedCache};
pub use client::{Client, ClientError, MapsInfo, PathInfo, QueryResult, UdpClient};
pub use daemon::{
    valid_map_name, Server, ServerConfig, ServerHandle, StartError, DEFAULT_MAP_NAME,
};
pub use index::{Cached, RouteIndex, SwapCell};
pub use metrics::{Metrics, ServerMetrics};
pub use protocol::{parse_request, ProtoVersion, Request, Response, MAX_LINE};
pub use reload::{LoadError, MapSource, StageCache};
pub use telemetry::{MapTelemetry, SLOWLOG_CAPACITY};
// Re-exported so callers can build a [`ServerConfig`] (whose `logger`
// field is a telemetry type) without naming the telemetry crate.
pub use pathalias_telemetry::{Level, Logger};
