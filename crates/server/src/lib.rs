//! The pathalias route-query daemon.
//!
//! The paper stops at a file: "output from pathalias is a simple
//! linear file ... a separate program may be used to convert this file
//! into a format appropriate for rapid database retrieval." This crate
//! is the step after that program — a long-lived process that *serves*
//! those lookups to many concurrent clients, with the table hot-swapped
//! in place when the map changes:
//!
//! * [`protocol`] — the line-oriented wire format: `QUERY`, `STATS`,
//!   `RELOAD`, `HEALTH`, `QUIT`, one response line per request;
//! * [`index`] — immutable per-generation snapshots behind an atomic
//!   swap cell; a query runs entirely against one snapshot, so a reload
//!   can never tear a response;
//! * [`cache`] — a sharded, bounded, generation-stamped LRU for
//!   domain-suffix lookups (the multi-probe part of the paper's mailer
//!   algorithm);
//! * [`reload`] — the three table sources (PADB1, linear route file,
//!   full map pipeline) and multi-source validation of rebuilt maps;
//! * [`daemon`] — TCP and Unix-socket listeners, a thread per client
//!   connection;
//! * [`client`] — the tiny synchronous client the CLI, tests, and
//!   examples use;
//! * [`metrics`] — relaxed atomic counters rendered by `STATS`.
//!
//! # Examples
//!
//! ```
//! use pathalias_server::{Client, MapSource, Server, ServerConfig};
//!
//! // A route file (pathalias output) to serve.
//! let path = std::env::temp_dir().join(format!("doc-ex-{}.routes", std::process::id()));
//! std::fs::write(&path, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
//!
//! let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone()))).unwrap();
//! let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();
//! assert_eq!(
//!     client.query("caip.rutgers.edu", Some("pleasant")).unwrap().unwrap(),
//!     "seismo!caip.rutgers.edu!pleasant",
//! );
//! client.quit().unwrap();
//! handle.shutdown();
//! std::fs::remove_file(path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod index;
pub mod metrics;
pub mod protocol;
pub mod reload;

pub use cache::ShardedCache;
pub use client::Client;
pub use daemon::{Server, ServerConfig, ServerHandle, StartError};
pub use index::{resolve, RouteIndex, SwapCell};
pub use metrics::Metrics;
pub use protocol::{parse_request, Request, Response};
pub use reload::{LoadError, MapSource};
