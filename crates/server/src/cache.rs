//! A sharded, bounded LRU cache for resolved lookups.
//!
//! Mailer traffic is heavily repetitive, so the daemon remembers
//! resolutions — the route format string plus how it matched — and
//! confirmed misses (an LRU bounds the damage an attacker's junk names
//! can do), in a cache sharded by host-name hash to keep lock
//! contention off the query path. With a disk-backed table behind the
//! cache, a hit also saves the binary-search reads entirely.
//!
//! Entries are stamped with the table generation they were computed
//! against. A hot reload bumps the generation, which invalidates every
//! cached entry lazily — no stop-the-world clear, and a stale entry can
//! never be served against a new table.
//!
//! Each shard keeps its own hit/miss/eviction counters (under the
//! shard lock it already holds, so they cost nothing extra); `STATS`
//! reports them as `cache_shard<N>_{hits,misses,evictions}`.

use pathalias_mailer::ResolvedVia;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// A cached positive resolution: the table's format string (serves any
/// user) and how it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedHit {
    /// The `printf`-style route with its `%s` marker intact.
    pub format: Arc<str>,
    /// How the lookup matched (exact / suffix / default).
    pub via: ResolvedVia,
}

/// A cached resolution: a hit, or a confirmed miss.
pub type CachedRoute = Option<CachedHit>;

/// One shard's counters, as sampled by [`ShardedCache::shard_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups answered from this shard (current generation).
    pub hits: u64,
    /// Lookups this shard could not answer (absent or stale).
    pub misses: u64,
    /// Entries evicted by capacity pressure (stale drops count as
    /// misses, not evictions).
    pub evictions: u64,
}

struct Node {
    key: String,
    generation: u64,
    value: CachedRoute,
    prev: usize,
    next: usize,
}

/// One shard: a classic doubly-linked LRU over a slab.
struct Lru {
    map: HashMap<String, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: ShardStats,
}

impl Lru {
    fn new(capacity: usize) -> Lru {
        Lru {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
            stats: ShardStats::default(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn remove(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.slab[i].key);
        self.slab[i].key.clear();
        self.slab[i].value = None;
        self.free.push(i);
    }

    fn get(&mut self, generation: u64, key: &str) -> Option<CachedRoute> {
        let Some(&i) = self.map.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        match self.slab[i].generation.cmp(&generation) {
            std::cmp::Ordering::Less => {
                // Computed against a previous table: drop, report miss.
                self.remove(i);
                self.stats.misses += 1;
                None
            }
            std::cmp::Ordering::Greater => {
                // Entry is newer than the caller's snapshot (reload
                // landed mid-query). Don't serve it — the caller must
                // stay consistent with its snapshot — and don't evict
                // what current readers are using.
                self.stats.misses += 1;
                None
            }
            std::cmp::Ordering::Equal => {
                self.unlink(i);
                self.push_front(i);
                self.stats.hits += 1;
                Some(self.slab[i].value.clone())
            }
        }
    }

    fn insert(&mut self, generation: u64, key: &str, value: CachedRoute) {
        if let Some(&i) = self.map.get(key) {
            self.slab[i].generation = generation;
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let evict = self.tail;
            debug_assert_ne!(evict, NIL);
            self.remove(evict);
            self.stats.evictions += 1;
        }
        let node = Node {
            key: key.to_string(),
            generation,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key.to_string(), i);
        self.push_front(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The shared cache: N independent LRU shards selected by key hash.
pub struct ShardedCache {
    shards: Box<[Mutex<Lru>]>,
    /// The generation current entries must carry; bumped on reload.
    generation: AtomicU64,
}

impl ShardedCache {
    /// A cache holding at most `capacity` entries across `shards`
    /// shards (both rounded up to at least 1).
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Lru::new(per_shard)))
                .collect(),
            generation: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Lru> {
        // FNV-1a; the host-name distribution is friendly.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Marks every existing entry stale. Cheap: stale entries are
    /// dropped lazily on their next touch or by LRU pressure.
    pub fn invalidate_to(&self, generation: u64) {
        self.generation.store(generation, Ordering::SeqCst);
    }

    /// The cached resolution for `key` as computed against table
    /// generation `generation` (the caller's snapshot — never the
    /// cache's own notion of "current", so a query pinned to an old
    /// snapshot cannot see entries from a newer table or vice versa).
    /// `Some(Some(hit))` — cached resolution; `Some(None)` — cached
    /// miss; `None` — not cached (or wrong generation).
    pub fn get(&self, generation: u64, key: &str) -> Option<CachedRoute> {
        self.shard(key).lock().unwrap().get(generation, key)
    }

    /// Caches a resolution computed against generation `generation`.
    /// Ignored if a reload has already moved past that generation, so a
    /// slow writer can never resurrect a stale route.
    pub fn insert(&self, generation: u64, key: &str, value: CachedRoute) {
        if self.generation.load(Ordering::SeqCst) != generation {
            return;
        }
        self.shard(key)
            .lock()
            .unwrap()
            .insert(generation, key, value);
    }

    /// Entries currently held (stale ones included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One snapshot of every shard's counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats)
            .collect()
    }

    /// The per-shard counters rendered for `STATS`:
    /// `cache_shard0_hits=… cache_shard0_misses=… cache_shard0_evictions=… …`
    /// on one space-separated line, shards in order.
    pub fn render_shard_stats(&self) -> String {
        let mut out = String::new();
        for (i, st) in self.shard_stats().iter().enumerate() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!(
                "cache_shard{i}_hits={} cache_shard{i}_misses={} cache_shard{i}_evictions={}",
                st.hits, st.misses, st.evictions
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str) -> CachedRoute {
        Some(CachedHit {
            format: Arc::from(s),
            via: ResolvedVia::DomainSuffix {
                suffix: ".edu".into(),
            },
        })
    }

    fn format_of(v: CachedRoute) -> String {
        v.unwrap().format.as_ref().to_string()
    }

    #[test]
    fn hit_miss_and_negative() {
        let c = ShardedCache::new(16, 2);
        assert_eq!(c.get(0, "a.edu"), None);
        c.insert(0, "a.edu", route("gw!%s"));
        c.insert(0, "b.gov", None);
        assert_eq!(format_of(c.get(0, "a.edu").unwrap()), "gw!%s");
        assert_eq!(c.get(0, "b.gov"), Some(None));
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        let c = ShardedCache::new(4, 1);
        for i in 0..4 {
            c.insert(0, &format!("h{i}"), route("r!%s"));
        }
        // Touch h0 so h1 is the LRU victim.
        assert!(c.get(0, "h0").is_some());
        c.insert(0, "h4", route("r!%s"));
        assert_eq!(c.len(), 4);
        assert!(c.get(0, "h1").is_none(), "LRU entry should be evicted");
        assert!(c.get(0, "h0").is_some());
        assert!(c.get(0, "h4").is_some());
    }

    #[test]
    fn generation_bump_invalidates_lazily() {
        let c = ShardedCache::new(8, 1);
        c.insert(0, "old.edu", route("old!%s"));
        c.invalidate_to(1);
        assert_eq!(c.get(1, "old.edu"), None, "stale entry must not serve");
        c.insert(1, "new.edu", route("new!%s"));
        assert_eq!(format_of(c.get(1, "new.edu").unwrap()), "new!%s");
    }

    #[test]
    fn stale_writer_cannot_resurrect_old_route() {
        let c = ShardedCache::new(8, 1);
        c.invalidate_to(5);
        c.insert(4, "late.edu", route("stale!%s"));
        assert_eq!(c.get(5, "late.edu"), None);
    }

    #[test]
    fn reinsert_updates_value() {
        let c = ShardedCache::new(8, 1);
        c.insert(0, "x.edu", route("a!%s"));
        c.insert(0, "x.edu", route("b!%s"));
        assert_eq!(format_of(c.get(0, "x.edu").unwrap()), "b!%s");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shard_stats_count_hits_misses_evictions() {
        let c = ShardedCache::new(2, 1);
        assert!(c.get(0, "a").is_none()); // miss
        c.insert(0, "a", route("r!%s"));
        assert!(c.get(0, "a").is_some()); // hit
        c.insert(0, "b", route("r!%s"));
        c.insert(0, "c", route("r!%s")); // evicts the LRU entry
        let stats = c.shard_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
        assert_eq!(stats[0].evictions, 1);
        let rendered = c.render_shard_stats();
        assert!(rendered.contains("cache_shard0_hits=1"), "{rendered}");
        assert!(rendered.contains("cache_shard0_misses=1"), "{rendered}");
        assert!(rendered.contains("cache_shard0_evictions=1"), "{rendered}");
        assert!(!rendered.contains('\n'));
    }

    #[test]
    fn stale_drop_is_a_miss_not_an_eviction() {
        let c = ShardedCache::new(8, 1);
        c.insert(0, "x.edu", route("a!%s"));
        c.invalidate_to(1);
        assert!(c.get(1, "x.edu").is_none());
        let st = c.shard_stats()[0];
        assert_eq!(st.misses, 1);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn concurrent_hammer() {
        let c = std::sync::Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..2_000 {
                        let key = format!("h{}.net", (t * 31 + i) % 100);
                        match c.get(0, &key) {
                            Some(Some(hit)) => assert_eq!(hit.format.as_ref(), "gw!%s"),
                            Some(None) => {}
                            None => c.insert(0, &key, route("gw!%s")),
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 64);
        let totals = c.shard_stats();
        let touched: u64 = totals.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(touched, 8 * 2_000);
    }
}
