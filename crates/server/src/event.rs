//! The readiness-driven serving core (unix only).
//!
//! A fixed pool of event-loop workers replaces thread-per-connection:
//! each worker owns one epoll/kqueue [`Poller`], its own
//! `SO_REUSEPORT` TCP listener shard (the kernel load-balances
//! incoming connections across shards), a share of the UDP datagram
//! endpoint, and the nonblocking connections it serves. Connections
//! are small state machines: a read buffer frames partial lines, a
//! write buffer absorbs multi-line responses (`METRICS`, `SLOWLOG`)
//! with backpressure — a peer that stops reading pauses its own
//! connection, never a worker.
//!
//! Unix-socket connections (one listener, worker 0) are handed off
//! round-robin through per-worker inboxes, as are TCP connections when
//! `SO_REUSEPORT` is unavailable. `RELOAD` — the one long-running verb
//! — is offloaded to a throwaway thread; the connection is parked
//! (`busy`) so pipelined requests behind it keep their order, and the
//! response is injected back through the owning worker's inbox.
//!
//! Wire behaviour is byte-identical to the legacy blocking path (which
//! still serves non-unix platforms): same responses, same flush
//! boundaries, same `MAX_LINE` handling, same log events, same
//! drain-an-idle-connection-after-200ms shutdown semantics.

use crate::daemon::State;
use crate::metrics::{bump, drop_one};
use crate::protocol::{parse_request, ProtoVersion, Request, Response, MAX_LINE};
use pathalias_poll::{PollEvent, Poller};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poll tokens 0–3 are the worker's own descriptors; connections get
/// monotonically increasing tokens from [`FIRST_CONN_TOKEN`] so a
/// stale reload injection can never hit a recycled slot.
const TOKEN_WAKE: u64 = 0;
const TOKEN_TCP: u64 = 1;
const TOKEN_UNIX: u64 = 2;
const TOKEN_UDP: u64 = 3;
const FIRST_CONN_TOKEN: u64 = 4;

/// Stop reading a connection whose unflushed output exceeds this — the
/// peer gets no new responses queued until it drains what it has.
const BACKPRESSURE: usize = 64 * 1024;

/// During a drain, a connection idle this long is released — the same
/// window the legacy blocking path's 200ms read timeout gave.
const DRAIN_GRACE: Duration = Duration::from_millis(200);

/// A drain force-closes whatever is still open after this long.
const DRAIN_FORCE: Duration = Duration::from_secs(5);

/// The largest UDP payload that fits a single datagram.
const UDP_MAX: usize = 65507;

/// How many workers to run when the config does not say: one per core,
/// capped — accept sharding stops paying for itself long before 8.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The handle other threads use to reach one worker: connection and
/// event gauges for `METRICS`, the inbox, and the wake pipe.
pub(crate) struct WorkerShared {
    /// Connections this worker currently owns.
    pub(crate) open_connections: AtomicU64,
    /// Readiness events delivered by this worker's last poll.
    pub(crate) pending_events: AtomicU64,
    /// UDP datagrams this worker has answered.
    pub(crate) udp_datagrams: AtomicU64,
    inbox: Mutex<Vec<Delivery>>,
    /// Write end of the worker's self-pipe; `None` only in unit-test
    /// states that never spawn workers.
    wake: Mutex<Option<UnixStream>>,
}

impl WorkerShared {
    pub(crate) fn new(wake: UnixStream) -> WorkerShared {
        WorkerShared {
            open_connections: AtomicU64::new(0),
            pending_events: AtomicU64::new(0),
            udp_datagrams: AtomicU64::new(0),
            inbox: Mutex::new(Vec::new()),
            wake: Mutex::new(Some(wake)),
        }
    }

    /// Pokes the worker out of its poll. A full pipe is fine — the
    /// worker is already awake for the bytes in flight.
    pub(crate) fn wake_up(&self) {
        if let Some(pipe) = &*self.wake.lock().expect("wake lock poisoned") {
            let _ = (&*pipe).write(&[1]);
        }
    }

    fn deliver(&self, delivery: Delivery) {
        self.inbox
            .lock()
            .expect("inbox lock poisoned")
            .push(delivery);
        self.wake_up();
    }
}

/// What lands in a worker's inbox.
enum Delivery {
    /// An offloaded `RELOAD` finished: responses for connection
    /// `token`, which is parked `busy` waiting for them.
    Inject {
        token: u64,
        responses: Vec<Response>,
    },
    /// A connection accepted elsewhere, handed to this worker.
    Conn(Handoff),
}

/// A connection in flight between workers.
pub(crate) enum Handoff {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// Everything one worker thread needs; built by `Server::start`.
pub(crate) struct WorkerSetup {
    pub(crate) index: usize,
    pub(crate) shared: Arc<WorkerShared>,
    pub(crate) all: Vec<Arc<WorkerShared>>,
    pub(crate) tcp: Option<TcpListener>,
    pub(crate) unix: Option<UnixListener>,
    pub(crate) udp: Option<UdpSocket>,
    pub(crate) wake_read: UnixStream,
    /// The TCP listener is unsharded (no `SO_REUSEPORT`): round-robin
    /// its accepts across workers like unix-socket connections.
    pub(crate) distribute_tcp: bool,
}

/// Binds `n` `SO_REUSEPORT` TCP listener shards on `addr` (resolving
/// it like `TcpListener::bind` would). Returns the shards, the bound
/// address, and whether sharding worked — on failure the fallback is
/// one plain listener on worker 0 with accepts handed off.
pub(crate) fn bind_tcp(
    addr: &str,
    n: usize,
) -> io::Result<(Vec<Option<TcpListener>>, SocketAddr, bool)> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    match addr.to_socket_addrs() {
        Ok(candidates) => {
            for candidate in candidates {
                match pathalias_poll::reuseport_tcp_listener(candidate) {
                    Ok(first) => {
                        let bound = first.local_addr()?;
                        let mut shards = vec![Some(first)];
                        let mut sharded = true;
                        // The remaining shards bind the *resolved*
                        // address: with port 0 requested, they must
                        // share the ephemeral port worker 0 got.
                        for _ in 1..n {
                            match pathalias_poll::reuseport_tcp_listener(bound) {
                                Ok(l) => shards.push(Some(l)),
                                Err(_) => {
                                    sharded = false;
                                    break;
                                }
                            }
                        }
                        shards.resize_with(n, || None);
                        return Ok((shards, bound, sharded));
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        Err(e) => last_err = Some(e),
    }
    match TcpListener::bind(addr) {
        Ok(l) => {
            let bound = l.local_addr()?;
            let mut shards = vec![Some(l)];
            shards.resize_with(n, || None);
            Ok((shards, bound, false))
        }
        Err(e) => Err(last_err.unwrap_or(e)),
    }
}

/// Binds `n` `SO_REUSEPORT` UDP sockets on `addr`; the kernel spreads
/// datagrams across them. Falls back to a single socket on worker 0.
pub(crate) fn bind_udp(addr: &str, n: usize) -> io::Result<(Vec<Option<UdpSocket>>, SocketAddr)> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    match addr.to_socket_addrs() {
        Ok(candidates) => {
            for candidate in candidates {
                match pathalias_poll::reuseport_udp_socket(candidate) {
                    Ok(first) => {
                        let bound = first.local_addr()?;
                        let mut socks = vec![Some(first)];
                        for _ in 1..n {
                            match pathalias_poll::reuseport_udp_socket(bound) {
                                Ok(s) => socks.push(Some(s)),
                                Err(_) => break,
                            }
                        }
                        socks.resize_with(n, || None);
                        return Ok((socks, bound));
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        Err(e) => last_err = Some(e),
    }
    match UdpSocket::bind(addr) {
        Ok(s) => {
            let bound = s.local_addr()?;
            let mut socks = vec![Some(s)];
            socks.resize_with(n, || None);
            Ok((socks, bound))
        }
        Err(e) => Err(last_err.unwrap_or(e)),
    }
}

/// Either stream shape behind one nonblocking connection.
enum ConnStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            ConnStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn as_raw_fd(&self) -> RawFd {
        match self {
            ConnStream::Tcp(s) => s.as_raw_fd(),
            ConnStream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.set_nonblocking(true),
            ConnStream::Unix(s) => s.set_nonblocking(true),
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: ConnStream,
    /// Log-correlation id (shared counter with the legacy path).
    id: u64,
    proto: ProtoVersion,
    /// Bytes read but not yet consumed — at most one partial line once
    /// `process_lines` has run.
    inbuf: Vec<u8>,
    /// Rendered responses not yet written; `outpos` marks how far the
    /// socket has taken them.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Close once `outbuf` drains (QUIT/SHUTDOWN answered, or an
    /// overlong line was rejected).
    close_after_flush: bool,
    /// The peer half-closed; serve out the final responses and close.
    read_closed: bool,
    /// An offloaded RELOAD is in flight; buffered lines wait for its
    /// response so pipelined requests keep their order.
    busy: bool,
    last_activity: Instant,
    interest_r: bool,
    interest_w: bool,
}

/// Runs one event-loop worker until shutdown completes. The thread
/// owns its poller, its listener shards, and its connections; other
/// threads reach it only through [`WorkerShared`].
pub(crate) fn run_worker(state: Arc<State>, setup: WorkerSetup) {
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            state
                .logger
                .error("event_loop_failed")
                .field("error", &e)
                .emit();
            return;
        }
    };
    let mut worker = Worker {
        state,
        index: setup.index,
        shared: setup.shared,
        all: setup.all,
        poller,
        tcp: setup.tcp,
        unix: setup.unix,
        udp: setup.udp,
        wake_read: setup.wake_read,
        distribute_tcp: setup.distribute_tcp,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        rr: setup.index,
        draining: false,
        drain_started: Instant::now(),
        read_buf: vec![0u8; 16 * 1024],
        udp_buf: vec![0u8; 64 * 1024],
    };
    worker.run();
}

struct Worker {
    state: Arc<State>,
    index: usize,
    shared: Arc<WorkerShared>,
    all: Vec<Arc<WorkerShared>>,
    poller: Poller,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    udp: Option<UdpSocket>,
    wake_read: UnixStream,
    distribute_tcp: bool,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Round-robin cursor for handing off connections.
    rr: usize,
    draining: bool,
    drain_started: Instant,
    read_buf: Vec<u8>,
    udp_buf: Vec<u8>,
}

impl Worker {
    fn run(&mut self) {
        if self.register_own_fds().is_err() {
            self.state
                .logger
                .error("event_loop_failed")
                .field("error", "registering listeners")
                .emit();
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            let timeout = self.draining.then(|| Duration::from_millis(10));
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                self.state
                    .logger
                    .error("event_loop_failed")
                    .field("error", &e)
                    .emit();
                break;
            }
            self.shared
                .pending_events
                .store(events.len() as u64, Ordering::Relaxed);
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    TOKEN_TCP => self.accept_tcp(),
                    TOKEN_UNIX => self.accept_unix(),
                    TOKEN_UDP => self.serve_udp(),
                    token => self.conn_event(token, *ev),
                }
            }
            self.deliver_inbox();
            if self.state.shutting_down() && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                self.drain_tick();
                if self.conns.is_empty() {
                    break;
                }
            }
        }
        let leftovers: Vec<u64> = self.conns.keys().copied().collect();
        for token in leftovers {
            self.close_conn(token);
        }
    }

    fn register_own_fds(&mut self) -> io::Result<()> {
        self.wake_read.set_nonblocking(true)?;
        self.poller
            .register(self.wake_read.as_raw_fd(), TOKEN_WAKE, true, false)?;
        if let Some(l) = &self.tcp {
            l.set_nonblocking(true)?;
            self.poller
                .register(l.as_raw_fd(), TOKEN_TCP, true, false)?;
        }
        if let Some(l) = &self.unix {
            l.set_nonblocking(true)?;
            self.poller
                .register(l.as_raw_fd(), TOKEN_UNIX, true, false)?;
        }
        if let Some(s) = &self.udp {
            s.set_nonblocking(true)?;
            self.poller
                .register(s.as_raw_fd(), TOKEN_UDP, true, false)?;
        }
        Ok(())
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_read).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_tcp(&mut self) {
        loop {
            if self.state.shutting_down() {
                return;
            }
            let accepted = match &self.tcp {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    // One buffered write per request line = one
                    // segment; nodelay keeps the ping-pong stall-free.
                    let _ = stream.set_nodelay(true);
                    if self.distribute_tcp {
                        self.dispatch(Handoff::Tcp(stream));
                    } else {
                        self.install(ConnStream::Tcp(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_unix(&mut self) {
        loop {
            if self.state.shutting_down() {
                return;
            }
            let accepted = match &self.unix {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.dispatch(Handoff::Unix(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Spreads a connection accepted on this worker's listener across
    /// the pool, keeping itself in the rotation.
    fn dispatch(&mut self, handoff: Handoff) {
        self.rr = (self.rr + 1) % self.all.len();
        if self.rr == self.index {
            match handoff {
                Handoff::Tcp(s) => self.install(ConnStream::Tcp(s)),
                Handoff::Unix(s) => self.install(ConnStream::Unix(s)),
            }
        } else {
            self.all[self.rr].deliver(Delivery::Conn(handoff));
        }
    }

    /// Takes ownership of a connection: counts it, registers it with
    /// the poller, and starts its state machine.
    fn install(&mut self, stream: ConnStream) {
        if stream.set_nonblocking().is_err() {
            return;
        }
        bump(&self.state.server_metrics.connections);
        bump(&self.state.server_metrics.active_connections);
        self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
        let id = self.state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        self.state
            .logger
            .debug("conn_open")
            .field("conn", id)
            .emit();
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            drop_one(&self.state.server_metrics.active_connections);
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.state
                .logger
                .debug("conn_close")
                .field("conn", id)
                .emit();
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                id,
                proto: ProtoVersion::V1,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                outpos: 0,
                close_after_flush: false,
                read_closed: false,
                busy: false,
                last_activity: Instant::now(),
                interest_r: true,
                interest_w: false,
            },
        );
    }

    fn conn_event(&mut self, token: u64, ev: PollEvent) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if ev.readable && conn.interest_r && !conn.read_closed {
                match conn.stream.read(&mut self.read_buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        // A final unterminated line is still a request
                        // — the legacy reader serves it at EOF too.
                        if conn.inbuf.last().is_some_and(|&b| b != b'\n') {
                            conn.inbuf.push(b'\n');
                        }
                        process_lines(&self.state, &self.shared, token, conn);
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        if conn.inbuf.is_empty() && !conn.busy {
                            // Fast path: serve complete lines straight
                            // out of the read buffer; only a trailing
                            // partial line is copied into `inbuf`.
                            let chunk = &self.read_buf[..n];
                            let consumed =
                                process_slice(&self.state, &self.shared, token, conn, chunk);
                            if consumed < n && !conn.close_after_flush {
                                conn.inbuf.extend_from_slice(&chunk[consumed..]);
                            }
                        } else {
                            conn.inbuf.extend_from_slice(&self.read_buf[..n]);
                            process_lines(&self.state, &self.shared, token, conn);
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => dead = true,
                }
            } else if ev.hangup {
                // Hung up while we were not reading (parked on a
                // reload, backpressured, or already half-closed):
                // nothing left to deliver to a fully closed peer.
                dead = true;
            }
        }
        if dead {
            self.close_conn(token);
        } else {
            self.settle(token);
        }
    }

    /// Flushes what the socket will take, closes finished connections,
    /// and reconciles poller interest with the connection's state.
    fn settle(&mut self, token: u64) {
        let mut dead = false;
        let mut modify: Option<(RawFd, bool, bool)> = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.outbuf.is_empty() && flush_conn(conn).is_err() {
                dead = true;
            }
            if !dead
                && conn.outbuf.is_empty()
                && !conn.busy
                && (conn.close_after_flush || conn.read_closed)
            {
                dead = true;
            }
            if !dead {
                let pending = conn.outbuf.len() - conn.outpos;
                let want_r = !conn.busy
                    && !conn.close_after_flush
                    && !conn.read_closed
                    && pending < BACKPRESSURE;
                let want_w = !conn.outbuf.is_empty();
                if want_r != conn.interest_r || want_w != conn.interest_w {
                    conn.interest_r = want_r;
                    conn.interest_w = want_w;
                    modify = Some((conn.stream.as_raw_fd(), want_r, want_w));
                }
            }
        }
        if let Some((fd, r, w)) = modify {
            if self.poller.modify(fd, token, r, w).is_err() {
                dead = true;
            }
        }
        if dead {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            drop_one(&self.state.server_metrics.active_connections);
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.state
                .logger
                .debug("conn_close")
                .field("conn", conn.id)
                .emit();
            // Dropping the stream closes the fd, which deregisters it
            // from the poller.
        }
    }

    fn deliver_inbox(&mut self) {
        let deliveries: Vec<Delivery> =
            std::mem::take(&mut *self.shared.inbox.lock().expect("inbox lock poisoned"));
        for delivery in deliveries {
            match delivery {
                Delivery::Conn(handoff) => {
                    if self.state.shutting_down() {
                        continue; // refused at the door, like the legacy accept loop
                    }
                    match handoff {
                        Handoff::Tcp(s) => self.install(ConnStream::Tcp(s)),
                        Handoff::Unix(s) => self.install(ConnStream::Unix(s)),
                    }
                }
                Delivery::Inject { token, responses } => {
                    let mut found = false;
                    if let Some(conn) = self.conns.get_mut(&token) {
                        found = true;
                        for r in &responses {
                            let _ = writeln!(conn.outbuf, "{r}");
                        }
                        conn.busy = false;
                        conn.last_activity = Instant::now();
                        // Requests pipelined behind the reload waited
                        // in `inbuf`; serve them now, in order.
                        process_lines(&self.state, &self.shared, token, conn);
                    }
                    if found {
                        self.settle(token);
                    }
                }
            }
        }
    }

    /// Answers single-shot requests over UDP: one datagram in, one
    /// datagram out, bounded per readiness event so a datagram flood
    /// cannot starve established connections.
    fn serve_udp(&mut self) {
        for _ in 0..64 {
            let received = match &self.udp {
                Some(sock) => sock.recv_from(&mut self.udp_buf),
                None => return,
            };
            match received {
                Ok((n, peer)) => {
                    self.shared.udp_datagrams.fetch_add(1, Ordering::Relaxed);
                    let reply = udp_respond(&self.state, &self.udp_buf[..n]);
                    if let Some(sock) = &self.udp {
                        let _ = sock.send_to(&reply, peer);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Entering a drain: stop accepting (closing the listeners frees
    /// the port and wakes nobody) and start the idle-release clock.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_started = Instant::now();
        self.tcp = None;
        self.unix = None;
        self.udp = None;
    }

    /// One drain pass: release connections idle past the grace window
    /// (a request in flight, unflushed output, or a parked reload
    /// keeps one alive), then force the stragglers at the deadline.
    fn drain_tick(&mut self) {
        let force = self.drain_started.elapsed() >= DRAIN_FORCE;
        let now = Instant::now();
        let victims: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                force
                    || (!c.busy
                        && c.outbuf.is_empty()
                        && now.duration_since(c.last_activity) >= DRAIN_GRACE)
            })
            .map(|(t, _)| *t)
            .collect();
        for token in victims {
            self.close_conn(token);
        }
    }
}

/// Writes as much of `outbuf` as the socket will take right now.
fn flush_conn(conn: &mut Conn) -> io::Result<()> {
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.outpos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.outpos >= conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
    }
    Ok(())
}

/// Frames and serves every complete line in `inbuf`, stopping at a
/// partial line, a parked reload, or a pending close.
fn process_lines(state: &Arc<State>, shared: &Arc<WorkerShared>, token: u64, conn: &mut Conn) {
    if conn.inbuf.is_empty() || conn.busy || conn.close_after_flush {
        return;
    }
    // Take the buffer out so lines can be served borrow-free, then put
    // it back (keeping its capacity warm) holding only the leftovers.
    let mut buf = std::mem::take(&mut conn.inbuf);
    let consumed = process_slice(state, shared, token, conn, &buf);
    debug_assert!(conn.inbuf.is_empty(), "handlers only ever clear inbuf");
    if conn.close_after_flush {
        buf.clear();
    } else if consumed > 0 {
        buf.copy_within(consumed.., 0);
        buf.truncate(buf.len() - consumed);
    }
    conn.inbuf = buf;
}

/// Frames and serves every complete line in `buf`, stopping at a
/// partial line, a parked reload, or a pending close. Returns how many
/// bytes were consumed; the caller keeps the tail.
fn process_slice(
    state: &Arc<State>,
    shared: &Arc<WorkerShared>,
    token: u64,
    conn: &mut Conn,
    buf: &[u8],
) -> usize {
    let mut pos = 0;
    while !conn.busy && !conn.close_after_flush {
        match buf[pos..].iter().position(|&b| b == b'\n') {
            // Same cap as the legacy bounded reader: the line's bytes
            // (newline excluded) may reach MAX_LINE, not exceed it.
            Some(i) if i > MAX_LINE => {
                reject_overlong(state, conn);
                return buf.len();
            }
            Some(i) => {
                let line = String::from_utf8_lossy(&buf[pos..pos + i]);
                handle_line(state, shared, token, conn, &line);
                pos += i + 1;
            }
            None if buf.len() - pos > MAX_LINE => {
                reject_overlong(state, conn);
                return buf.len();
            }
            None => break,
        }
    }
    pos
}

/// An overlong request line: reject and close, exactly like the
/// blocking path (no bad-request counter bump — the line never reached
/// the parser).
fn reject_overlong(state: &Arc<State>, conn: &mut Conn) {
    state
        .logger
        .warn("bad_request")
        .field("conn", conn.id)
        .field("reason", "request line too long")
        .emit();
    let _ = writeln!(
        conn.outbuf,
        "{}",
        Response::BadRequest("request line too long".to_string())
    );
    conn.close_after_flush = true;
    conn.inbuf.clear();
}

/// Serves one framed request line on a connection.
fn handle_line(
    state: &Arc<State>,
    shared: &Arc<WorkerShared>,
    token: u64,
    conn: &mut Conn,
    line: &str,
) {
    if line.trim().is_empty() {
        return;
    }
    match parse_request(line.trim_end_matches(['\r', '\n']), conn.proto) {
        Ok(req) => {
            let closing = matches!(req, Request::Quit | Request::Shutdown);
            if let Request::Proto { version } = &req {
                conn.proto = *version;
            }
            match req {
                Request::Reload { map } => reload_offloaded(state, shared, token, conn, map),
                req => {
                    for r in state.respond(req) {
                        let _ = writeln!(conn.outbuf, "{r}");
                    }
                    if closing {
                        conn.close_after_flush = true;
                        conn.inbuf.clear();
                    }
                }
            }
        }
        Err(why) => {
            bump(&state.server_metrics.bad_requests);
            state
                .logger
                .warn("bad_request")
                .field("conn", conn.id)
                .field("reason", &why)
                .emit();
            let _ = writeln!(conn.outbuf, "{}", Response::BadRequest(why));
        }
    }
}

/// `RELOAD` is the one verb that can take seconds: run the rebuild on
/// a throwaway thread and park the connection (`busy`) so the event
/// loop never blocks and pipelined requests keep their order. The
/// refusal checks mirror `State::respond`'s Reload arm byte-for-byte.
fn reload_offloaded(
    state: &Arc<State>,
    shared: &Arc<WorkerShared>,
    token: u64,
    conn: &mut Conn,
    map: Option<String>,
) {
    if state.shutting_down() {
        let _ = writeln!(
            conn.outbuf,
            "{}",
            Response::Failure("reload refused: daemon is shutting down".to_string())
        );
        return;
    }
    let target = match state.map_named(map.as_deref()) {
        Ok(m) => m.clone(),
        Err(resp) => {
            let _ = writeln!(conn.outbuf, "{resp}");
            return;
        }
    };
    conn.busy = true;
    let state = state.clone();
    let shared = shared.clone();
    std::thread::spawn(move || {
        let response = state.reload(&target, map);
        shared.deliver(Delivery::Inject {
            token,
            responses: vec![response],
        });
    });
}

/// The verb name for a refusal message.
fn verb_name(req: &Request) -> &'static str {
    match req {
        Request::Query { .. } => "QUERY",
        Request::MultiQuery { .. } => "MQUERY",
        Request::Path { .. } => "PATH",
        Request::Proto { .. } => "PROTO",
        Request::Stats { .. } => "STATS",
        Request::Health { .. } => "HEALTH",
        Request::Reload { .. } => "RELOAD",
        Request::Maps => "MAPS",
        Request::Metrics { .. } => "METRICS",
        Request::SlowLog { .. } => "SLOWLOG",
        Request::Shutdown => "SHUTDOWN",
        Request::Quit => "QUIT",
    }
}

/// Serves one request datagram: the first line is the request (always
/// protocol v2 — there is no session to negotiate on), the reply is
/// one datagram. Verbs that answer more than one line, mutate daemon
/// state, or manage a session have no datagram shape and are refused.
pub(crate) fn udp_respond(state: &Arc<State>, datagram: &[u8]) -> Vec<u8> {
    let line = match datagram.iter().position(|&b| b == b'\n') {
        Some(i) => &datagram[..i],
        None => datagram,
    };
    let response = if line.len() > MAX_LINE {
        state
            .logger
            .warn("bad_request")
            .field("transport", "udp")
            .field("reason", "request line too long")
            .emit();
        Response::BadRequest("request line too long".to_string())
    } else {
        let text = String::from_utf8_lossy(line).into_owned();
        match parse_request(text.trim_end_matches(['\r', '\n']), ProtoVersion::V2) {
            Ok(req) => match req {
                Request::Query { .. }
                | Request::Path { .. }
                | Request::Health { .. }
                | Request::Stats { .. }
                | Request::Maps => {
                    let mut responses = state.respond(req);
                    debug_assert_eq!(responses.len(), 1, "single-datagram verbs answer one line");
                    responses
                        .pop()
                        .unwrap_or_else(|| Response::Failure("empty response".to_string()))
                }
                refused => {
                    Response::BadRequest(format!("{} unavailable over udp", verb_name(&refused)))
                }
            },
            Err(why) => {
                bump(&state.server_metrics.bad_requests);
                state
                    .logger
                    .warn("bad_request")
                    .field("transport", "udp")
                    .field("reason", &why)
                    .emit();
                Response::BadRequest(why)
            }
        }
    };
    let bytes = format!("{response}\n").into_bytes();
    if bytes.len() > UDP_MAX {
        return b"500 response too large for udp\n".to_vec();
    }
    bytes
}
