//! Protocol v2 coverage: property/round-trip tests for
//! `parse_request` / `Response` rendering, `MQUERY` ordering and
//! `MAX_LINE` behaviour on a live daemon, v1/v2 negotiation fallback
//! against a v1-only server, byte-identical v1 replay, and the
//! `SHUTDOWN` drain path.

use pathalias_server::protocol::{parse_request, ProtoVersion, Request, Response, MAX_LINE};
use pathalias_server::{Client, ClientError, MapSource, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-pv2-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn start_server(routes: &str, tag: &str) -> (ServerHandle, SocketAddr, PathBuf) {
    let path = temp(tag);
    std::fs::write(&path, routes).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone()))).unwrap();
    let addr = handle.tcp_addr().unwrap();
    (handle, addr, path)
}

// ---- property tests over the pure protocol layer -------------------

proptest! {
    /// A well-formed QUERY line parses to exactly its parts, at both
    /// protocol versions.
    #[test]
    fn query_parse_round_trip(
        host in "[a-z][a-z0-9.-]{0,30}",
        user in proptest::collection::vec("[a-z][a-z0-9]{0,10}", 0..2),
    ) {
        let user = user.first().cloned();
        let line = match &user {
            Some(u) => format!("QUERY {host} {u}"),
            None => format!("QUERY {host}"),
        };
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let req = parse_request(&line, proto).unwrap();
            prop_assert_eq!(
                req,
                Request::Query { map: None, host: host.clone(), user: user.clone() }
            );
        }
    }

    /// MQUERY preserves the order and the host:user split of every
    /// token — and is rejected wholesale at v1.
    #[test]
    fn mquery_parse_round_trip(
        pairs in proptest::collection::vec(
            ("[a-z][a-z0-9.-]{0,20}", proptest::collection::vec("[a-z][a-z0-9]{0,8}", 0..2)),
            1..12,
        ),
    ) {
        let mut line = String::from("MQUERY");
        let mut expect = Vec::new();
        for (host, user) in &pairs {
            let user = user.first().cloned();
            line.push(' ');
            line.push_str(host);
            if let Some(u) = &user {
                line.push(':');
                line.push_str(u);
            }
            expect.push((host.clone(), user));
        }
        let req = parse_request(&line, ProtoVersion::V2).unwrap();
        prop_assert_eq!(req, Request::MultiQuery { map: None, queries: expect });
        // The same line at v1 is an unknown verb, byte-compatibly.
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V1).unwrap_err(),
            "unknown verb `MQUERY`".to_string()
        );
    }

    /// Whatever lands in a payload, a rendered response is one line
    /// and starts with its own status code.
    #[test]
    fn responses_render_one_line_with_code(payload in "[ -~\\n\\r]{0,60}") {
        let responses = [
            Response::Route(payload.clone()),
            Response::NoRoute(payload.clone()),
            Response::Stats {
                map: None,
                body: payload.clone(),
            },
            Response::BadRequest(payload.clone()),
            Response::Failure(payload.clone()),
            Response::Proto { version: ProtoVersion::V2 },
            Response::ShuttingDown,
            Response::Bye,
        ];
        for r in responses {
            let line = r.to_string();
            prop_assert!(!line.contains('\n') && !line.contains('\r'));
            prop_assert!(line.starts_with(&format!("{} ", r.code())), "{}", line);
        }
    }

    /// Junk that is not a verb never parses, at either version.
    #[test]
    fn junk_lines_never_panic(line in "[ -~]{0,80}") {
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let _ = parse_request(&line, proto);
        }
    }
}

// ---- live-daemon behaviour -----------------------------------------

#[test]
fn mquery_answers_in_request_order() {
    let (handle, addr, path) = start_server("a\ta!%s\nb\tb!%s\nc\tc!%s\n.edu\tgw!%s\n", "order");
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.negotiate().unwrap(), ProtoVersion::V2);

    // Shuffled hosts, a miss in the middle, repeated names: the
    // response lines must land in token order.
    let results = client
        .query_batch(&[
            ("c", Some("u1")),
            ("missing", None),
            ("a", Some("u2")),
            ("x.edu", Some("u3")),
            ("c", Some("u4")),
        ])
        .unwrap();
    assert_eq!(
        results,
        vec![
            Some("c!u1".to_string()),
            None,
            Some("a!u2".to_string()),
            Some("gw!x.edu!u3".to_string()),
            Some("c!u4".to_string()),
        ]
    );
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn overlong_mquery_gets_400_and_drop() {
    let (handle, addr, path) = start_server("a\ta!%s\n", "overlong");
    let mut client = Client::connect(addr).unwrap();
    client.negotiate().unwrap();

    // One line just over MAX_LINE: the server answers 400 (or drops
    // mid-write) and closes; a fresh connection still works.
    let hosts = "a ".repeat(MAX_LINE / 2 + 16);
    if let Ok(resp) = client.send(&format!("MQUERY {hosts}")) {
        assert!(resp.starts_with("400 "), "{resp}");
    }
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.query("a", Some("u")).unwrap().unwrap(), "a!u");
    fresh.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn server_errors_are_typed_for_clients() {
    let (handle, addr, path) = start_server("a\ta!%s\n", "typed-errors");
    let mut client = Client::connect(addr).unwrap();

    // A 400: a malformed request surfaces as a typed Server error
    // carrying the daemon's own message, not a generic I/O error.
    match client.query("a b", Some("c")) {
        Err(ClientError::Server { code: 400, message }) => {
            assert!(message.contains("trailing argument"), "{message}");
        }
        other => panic!("expected typed 400, got {other:?}"),
    }

    // Sabotage the source so RELOAD yields a 500, and check the typed
    // error carries the server text.
    std::fs::write(&path, "garbage-without-a-route\n").unwrap();
    match client.reload() {
        Err(ClientError::Server { code: 500, message }) => {
            assert!(message.contains("reload failed"), "{message}");
        }
        other => panic!("expected typed 500, got {other:?}"),
    }
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn batch_validation_fails_before_the_wire() {
    let (handle, addr, path) = start_server("a\ta!%s\n", "batch-validate");
    let mut client = Client::connect(addr).unwrap();
    for bad in [
        ("", None),
        ("has space", None),
        ("has:colon", None),
        ("a", Some("")),
        ("a", Some("u ser")),
    ] {
        match client.query_batch(&[bad]) {
            Err(ClientError::InvalidQuery(_)) => {}
            other => panic!("{bad:?} should fail validation, got {other:?}"),
        }
    }
    // Nothing was written, so the connection is still in sync.
    assert_eq!(client.query("a", Some("u")).unwrap().unwrap(), "a!u");
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn mid_batch_server_error_does_not_desync_the_client() {
    // An mmap-backed daemon whose file is truncated after open: one
    // slot of a batch answers 500. The batch must fail with the typed
    // error AND leave the connection in sync — every response line
    // consumed, the next query answers correctly.
    use pathalias_mailer::disk::write_db;
    use pathalias_mailer::RouteDb;

    let padb_path = temp("desync.padb");
    let db = RouteDb::from_output("aa\trelay!aa!%s\nzz\trelay!zz!%s\n").unwrap();
    write_db(&db, &padb_path).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::PadbMmap(
        padb_path.clone(),
    )))
    .unwrap();
    let addr = handle.tcp_addr().unwrap();
    let mut client = Client::connect(addr).unwrap();

    // Warm "aa" into the daemon's cache, then cut the blob's tail so
    // "zz" (last in sort order) can no longer be read from disk.
    assert_eq!(
        client.query("aa", Some("u")).unwrap().unwrap(),
        "relay!aa!u"
    );
    let full = std::fs::read(&padb_path).unwrap();
    std::fs::write(&padb_path, &full[..full.len() - 6]).unwrap();

    match client.query_batch(&[("aa", Some("u")), ("zz", Some("u"))]) {
        Err(ClientError::Server { code: 500, message }) => {
            assert!(message.contains("resolve failed"), "{message}");
        }
        other => panic!("expected a typed 500, got {other:?}"),
    }
    // The regression this guards: before draining, the 500 left the
    // second response line buffered and this query read slot 2's
    // answer instead of its own.
    assert_eq!(
        client.query("aa", Some("v")).unwrap().unwrap(),
        "relay!aa!v"
    );
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(padb_path).unwrap();
}

/// A hand-rolled v1-only server: speaks exactly the PR-1 protocol, so
/// `PROTO` is an unknown verb. One connection, then exit.
fn spawn_v1_only_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let response = match words.as_slice() {
                ["QUERY", host] => format!("200 {host}!%s"),
                ["QUERY", host, user] => format!("200 {host}!{user}"),
                ["QUIT"] => "200 bye".to_string(),
                [verb, ..] => format!("400 unknown verb `{}`", verb.to_ascii_uppercase()),
                [] => continue,
            };
            writeln!(stream, "{response}").unwrap();
            stream.flush().unwrap();
            if words.as_slice() == ["QUIT"] {
                return;
            }
        }
    });
    addr
}

#[test]
fn negotiation_falls_back_to_v1_pipelining() {
    let addr = spawn_v1_only_server();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.negotiate().unwrap(), ProtoVersion::V1);
    // query_batch still answers — as pipelined v1 QUERYs.
    let results = client
        .query_batch(&[("alpha", Some("u")), ("beta", None), ("gamma", Some("w"))])
        .unwrap();
    assert_eq!(
        results,
        vec![
            Some("alpha!u".to_string()),
            Some("beta!%s".to_string()),
            Some("gamma!w".to_string()),
        ]
    );
    client.quit().unwrap();
}

#[test]
fn v1_session_replays_byte_identically() {
    // A session recorded against the PR-1 daemon (one write, responses
    // concatenated). The new daemon must produce these exact bytes.
    let (handle, addr, path) = start_server("seismo\tseismo!%s\n.edu\tseismo!%s\n", "replay");

    let session: &[u8] = b"HEALTH\n\
        QUERY seismo rick\n\
        QUERY caip.rutgers.edu pleasant\n\
        QUERY seismo\n\
        QUERY nowhere u\n\
        QUERY\n\
        QUERY a b c\n\
        ehlo example.org\n\
        STATS now\n\
        QUIT\n";
    let expected: &[u8] = b"200 ok generation=0 entries=2\n\
        200 seismo!rick\n\
        200 seismo!caip.rutgers.edu!pleasant\n\
        200 seismo!%s\n\
        404 no route to nowhere\n\
        400 QUERY needs a host\n\
        400 trailing argument `c`\n\
        400 unknown verb `EHLO`\n\
        400 trailing argument `now`\n\
        200 bye\n";

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(session).unwrap();
    stream.flush().unwrap();
    let mut got = Vec::new();
    stream.read_to_end(&mut got).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(expected),
        "v1 replay must be byte-identical"
    );

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn shutdown_verb_drains_the_daemon() {
    let (handle, addr, path) = start_server("a\ta!%s\n", "shutdown");

    // A bystander connection with a query in flight keeps working.
    let mut bystander = Client::connect(addr).unwrap();
    assert_eq!(bystander.query("a", Some("u")).unwrap().unwrap(), "a!u");

    let shutter = Client::connect(addr).unwrap();
    let payload = shutter.shutdown().unwrap();
    assert_eq!(payload, "shutting down");

    // The daemon drains: accept loops exit, existing connections are
    // released, wait() returns instead of blocking forever.
    assert!(
        handle.drain(Duration::from_secs(5)),
        "all connections drained in time"
    );

    // New connections are refused or immediately closed.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.query("a", None).is_err(), "accept loop must be gone");
        }
    }
    std::fs::remove_file(path).unwrap();
}
