//! Telemetry end to end over real sockets: the `METRICS` and
//! `SLOWLOG` verbs through [`Client`], cross-signal consistency
//! between the `STATS` counters and the latency histograms, the
//! v1-only refusal path, and the "errors-only logging means a silent
//! steady state" guarantee.

use pathalias_server::{
    Client, ClientError, Level, Logger, MapSource, Server, ServerConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-tele-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn start_two_maps(tag: &str) -> (ServerHandle, SocketAddr, PathBuf, PathBuf) {
    let east = temp(&format!("{tag}-east.routes"));
    let west = temp(&format!("{tag}-west.routes"));
    std::fs::write(&east, "a\teast!a!%s\nb\teast!b!%s\n").unwrap();
    std::fs::write(&west, "a\twest!a!%s\n").unwrap();
    let handle = Server::start(ServerConfig::ephemeral_set(vec![
        ("east".to_string(), MapSource::Routes(east.clone())),
        ("west".to_string(), MapSource::Routes(west.clone())),
    ]))
    .unwrap();
    let addr = handle.tcp_addr().unwrap();
    (handle, addr, east, west)
}

#[test]
fn metrics_scrape_over_the_socket_matches_the_load() {
    let (handle, addr, east, west) = start_two_maps("scrape");
    let mut client = Client::connect(addr).unwrap();

    // Known traffic: three single queries (one miss) on east, one
    // 2-item batch on west.
    assert!(client.query_on(Some("east"), "a", Some("u")).is_ok());
    assert!(client.query_on(Some("east"), "b", None).is_ok());
    assert!(client
        .query_on(Some("east"), "missing", None)
        .unwrap()
        .is_none());
    client
        .query_batch_on(Some("west"), &[("a", Some("u")), ("nope", None)])
        .unwrap();

    let text = client.metrics().unwrap();
    // Valid exposition shape: typed families, newline-terminated.
    assert!(text.contains("# TYPE pathalias_queries_total counter"));
    assert!(text.contains("# TYPE pathalias_request_latency_seconds histogram"));
    assert!(text.ends_with('\n'));

    // Cross-signal: the per-map queries counter equals the histogram
    // observation count (singles in verb="query", batch items in
    // verb="mquery_item").
    let value = |needle: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(needle))
            .unwrap_or_else(|| panic!("missing series {needle}"))
            .trim()
            .parse()
            .unwrap()
    };
    assert_eq!(value("pathalias_queries_total{map=\"east\"} "), 3);
    assert_eq!(
        value("pathalias_request_latency_seconds_count{map=\"east\",verb=\"query\"} "),
        3
    );
    assert_eq!(value("pathalias_queries_total{map=\"west\"} "), 2);
    assert_eq!(
        value("pathalias_request_latency_seconds_count{map=\"west\",verb=\"mquery_item\"} "),
        2
    );

    // Qualified scrape: only the named map's series (plus the
    // daemon-wide families).
    let east_only = client.metrics_on(Some("east")).unwrap();
    assert!(east_only.contains("map=\"east\""));
    assert!(!east_only.contains("map=\"west\""));
    assert!(east_only.contains("pathalias_uptime_seconds"));

    // The slow log saw every request, worst first.
    let entries = client.slowlog().unwrap();
    assert_eq!(entries.len(), 5);
    assert!(entries.iter().any(|e| e.contains("map=east")
        && e.contains("verb=QUERY")
        && e.contains("outcome=no_route")));
    assert!(entries
        .iter()
        .any(|e| e.contains("map=west") && e.contains("verb=MQUERY")));
    let east_entries = client.slowlog_on(Some("east")).unwrap();
    assert_eq!(east_entries.len(), 3);

    // Unknown maps are a clean 400, connection intact afterwards.
    match client.metrics_on(Some("bogus")) {
        Err(ClientError::Server { code: 400, message }) => {
            assert!(message.contains("unknown map"), "{message}");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
    assert!(client.query_on(Some("east"), "a", None).is_ok());

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(east).unwrap();
    std::fs::remove_file(west).unwrap();
}

/// A v1-only server: `PROTO` itself is an unknown verb, like the PR-1
/// daemon. One connection, then exit.
fn spawn_v1_only_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            let verb = line.split_whitespace().next().unwrap_or("").to_string();
            writeln!(stream, "400 unknown verb `{}`", verb.to_ascii_uppercase()).unwrap();
            stream.flush().unwrap();
            line.clear();
        }
    });
    addr
}

#[test]
fn metrics_and_slowlog_refuse_v1_only_daemons() {
    let addr = spawn_v1_only_server();
    let mut client = Client::connect(addr).unwrap();
    match client.metrics() {
        Err(ClientError::InvalidQuery(msg)) => {
            assert!(msg.contains("protocol v2"), "{msg}");
        }
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
    match client.slowlog() {
        Err(ClientError::InvalidQuery(msg)) => {
            assert!(msg.contains("protocol v2"), "{msg}");
        }
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
}

#[test]
fn errors_only_logging_keeps_a_healthy_daemon_silent() {
    let east = temp("quiet.routes");
    std::fs::write(&east, "a\ta!%s\n").unwrap();
    let (logger, buf) = Logger::capture(Level::Error);
    let mut config = ServerConfig::ephemeral(MapSource::Routes(east.clone()));
    config.logger = logger;
    let handle = Server::start(config).unwrap();
    let addr = handle.tcp_addr().unwrap();

    // A full healthy session: queries (hit and miss), a bad request,
    // a successful reload, a scrape, quit. None of it is an error.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query("a", Some("u")).unwrap().unwrap(), "a!u");
    assert!(client.query("missing", None).unwrap().is_none());
    // A wire-level bad request logs at warn — below the threshold.
    let resp = client.send("EHLO example.org").unwrap();
    assert!(resp.starts_with("400 "), "{resp}");
    client.reload().unwrap();
    client.metrics().unwrap();
    client.quit().unwrap();
    assert_eq!(
        buf.lock().unwrap().as_str(),
        "",
        "a healthy daemon at PATHALIAS_LOG=error must write nothing"
    );

    // A genuinely failed reload is the kind of thing that DOES log.
    std::fs::write(&east, "garbage-without-a-route\n").unwrap();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.reload().is_err());
    client.quit().unwrap();
    let out = buf.lock().unwrap().clone();
    assert!(
        out.contains("level=error event=reload_failed map=default"),
        "{out}"
    );

    handle.shutdown();
    std::fs::remove_file(east).unwrap();
}
