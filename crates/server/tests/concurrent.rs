//! The acceptance gauntlet: ≥ 100k queries across 8 concurrent
//! clients with a hot reload swapping the table mid-load. Zero errors
//! allowed; no client may observe a dropped connection, and every
//! response must be *entirely* from the old table or *entirely* from
//! the new one — never a mix, never a torn line.

use pathalias_server::{Client, MapSource, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const HOSTS: usize = 200;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 12_500; // 8 × 12,500 = 100,000

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-acc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The serving table, parameterized by relay so the old and new
/// generations give visibly different answers for every host.
fn routes(relay: &str) -> String {
    let mut out = String::new();
    for i in 0..HOSTS {
        out.push_str(&format!("h{i}\t{relay}!h{i}!%s\n"));
    }
    out.push_str(&format!(".edu\t{relay}!edu-gw!%s\n"));
    out
}

#[test]
fn hundred_thousand_queries_with_hot_reload() {
    let path = temp("main.routes");
    std::fs::write(&path, routes("relayA")).unwrap();

    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone())))
        .expect("server starts");
    let addr = handle.tcp_addr().unwrap();

    let old_seen = Arc::new(AtomicU64::new(0));
    let new_seen = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // 8 query clients, each on one persistent connection.
        for client_id in 0..CLIENTS {
            let old_seen = old_seen.clone();
            let new_seen = new_seen.clone();
            let path = path.clone();
            s.spawn(move || {
                let _ = &path;
                let mut client = Client::connect(addr).expect("client connects");
                for i in 0..QUERIES_PER_CLIENT {
                    let user = format!("u{client_id}");
                    match i % 13 {
                        // A name no table has: must be a clean 404,
                        // before and after the reload.
                        5 => {
                            let got = client
                                .query("no.such.host.example", Some(&user))
                                .expect("connection must not drop");
                            assert_eq!(got, None, "client {client_id} query {i}");
                        }
                        // A domain-suffix query (exercises the cache).
                        7 => {
                            let got = client
                                .query("caip.rutgers.edu", Some(&user))
                                .expect("connection must not drop")
                                .expect("suffix route exists in both tables");
                            let old = format!("relayA!edu-gw!caip.rutgers.edu!{user}");
                            let new = format!("relayB!edu-gw!caip.rutgers.edu!{user}");
                            if got == old {
                                old_seen.fetch_add(1, Ordering::Relaxed);
                            } else if got == new {
                                new_seen.fetch_add(1, Ordering::Relaxed);
                            } else {
                                panic!("torn/mixed suffix response: `{got}`");
                            }
                        }
                        // Exact host queries over the whole table.
                        _ => {
                            let host = format!("h{}", (client_id * 37 + i) % HOSTS);
                            let got = client
                                .query(&host, Some(&user))
                                .expect("connection must not drop")
                                .expect("host exists in both tables");
                            let old = format!("relayA!{host}!{user}");
                            let new = format!("relayB!{host}!{user}");
                            if got == old {
                                old_seen.fetch_add(1, Ordering::Relaxed);
                            } else if got == new {
                                new_seen.fetch_add(1, Ordering::Relaxed);
                            } else {
                                panic!("torn/mixed response: `{got}` (want `{old}` or `{new}`)");
                            }
                        }
                    }
                }
                client.quit().expect("clean quit");
            });
        }

        // The reloader: swap the table while the clients are loading.
        let reload_path = path.clone();
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(80));
            std::fs::write(&reload_path, routes("relayB")).unwrap();
            let mut client = Client::connect(addr).expect("reloader connects");
            let payload = client.reload().expect("reload succeeds");
            assert!(
                payload.contains("generation=1"),
                "first reload publishes generation 1: {payload}"
            );
            client.quit().unwrap();
        });
    });

    // Both generations must actually have served traffic, or the
    // "mid-load" claim is vacuous. The sleep above sits well inside the
    // multi-second query run.
    let old = old_seen.load(Ordering::Relaxed);
    let new = new_seen.load(Ordering::Relaxed);
    assert!(
        old > 0,
        "no queries hit the old table (reload fired too early)"
    );
    assert!(
        new > 0,
        "no queries hit the new table (reload never landed)"
    );

    // The daemon's own accounting: every query arrived, none errored.
    let mut stats_client = Client::connect(addr).unwrap();
    let stats = stats_client.stats().unwrap();
    let field = |k: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{k}=")))
            .unwrap_or_else(|| panic!("missing {k} in `{stats}`"))
            .parse()
            .unwrap()
    };
    assert_eq!(
        field("queries"),
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "every query must be accounted for"
    );
    assert_eq!(field("reloads"), 1);
    assert_eq!(field("reload_failures"), 0);
    assert_eq!(field("bad_requests"), 0);
    assert_eq!(field("generation"), 1);
    stats_client.quit().unwrap();

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn batched_queries_across_hot_reload() {
    // The v2 counterpart of the gauntlet above: 8 clients stream
    // MQUERY batches while a reload swaps the table mid-load. Zero
    // errors, every batch answered in order, every answer entirely
    // from one table or the other.
    const BATCH: usize = 32;
    const BATCHES_PER_CLIENT: usize = 400; // 8 × 400 × 32 = 102,400

    let path = temp("batched.routes");
    std::fs::write(&path, routes("relayA")).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone())))
        .expect("server starts");
    let addr = handle.tcp_addr().unwrap();

    let old_seen = Arc::new(AtomicU64::new(0));
    let new_seen = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for client_id in 0..CLIENTS {
            let old_seen = old_seen.clone();
            let new_seen = new_seen.clone();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let user = format!("u{client_id}");
                for b in 0..BATCHES_PER_CLIENT {
                    let hosts: Vec<String> = (0..BATCH)
                        .map(|k| format!("h{}", (client_id * 37 + b * BATCH + k) % HOSTS))
                        .collect();
                    let queries: Vec<(&str, Option<&str>)> = hosts
                        .iter()
                        .map(|h| (h.as_str(), Some(user.as_str())))
                        .collect();
                    let results = client
                        .query_batch(&queries)
                        .expect("batch must not error across a reload");
                    assert_eq!(results.len(), BATCH);
                    for (host, got) in hosts.iter().zip(results) {
                        let got = got.expect("host exists in both tables");
                        let old = format!("relayA!{host}!{user}");
                        let new = format!("relayB!{host}!{user}");
                        if got == old {
                            old_seen.fetch_add(1, Ordering::Relaxed);
                        } else if got == new {
                            new_seen.fetch_add(1, Ordering::Relaxed);
                        } else {
                            panic!("torn/mixed batched response: `{got}`");
                        }
                    }
                }
                client.quit().expect("clean quit");
            });
        }

        // The reloader: swap the table while the batches are flowing.
        let reload_path = path.clone();
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(80));
            std::fs::write(&reload_path, routes("relayB")).unwrap();
            let mut client = Client::connect(addr).expect("reloader connects");
            client.reload().expect("reload succeeds");
            client.quit().unwrap();
        });
    });

    assert!(old_seen.load(Ordering::Relaxed) > 0, "old table served");
    assert!(new_seen.load(Ordering::Relaxed) > 0, "new table served");

    let mut stats_client = Client::connect(addr).unwrap();
    let stats = stats_client.stats().unwrap();
    let field = |k: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{k}=")))
            .unwrap_or_else(|| panic!("missing {k} in `{stats}`"))
            .parse()
            .unwrap()
    };
    assert_eq!(
        field("queries"),
        (CLIENTS * BATCHES_PER_CLIENT * BATCH) as u64,
        "every batched query must be accounted for"
    );
    assert_eq!(field("bad_requests"), 0);
    assert_eq!(field("resolve_errors"), 0);
    stats_client.quit().unwrap();

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn mmap_backend_matches_in_memory_backend() {
    // The acceptance bar: the mmap-backed PADB1 serve path answers the
    // full integration-test query load with results identical to the
    // in-memory backend — same hosts, same suffix queries, same
    // misses, byte-for-byte equal responses.
    use pathalias_mailer::disk::write_db;
    use pathalias_mailer::RouteDb;

    let table = {
        let mut t = routes("relayZ");
        t.push_str(".\tsmart-host!%s\n");
        t
    };
    let db = RouteDb::from_output(&table).unwrap();
    let padb_path = temp("parity.padb");
    write_db(&db, &padb_path).unwrap();

    let mem = Server::start(ServerConfig::ephemeral(MapSource::Padb(padb_path.clone())))
        .expect("in-memory server starts");
    let mmap = Server::start(ServerConfig::ephemeral(MapSource::PadbMmap(
        padb_path.clone(),
    )))
    .expect("mmap server starts");
    assert_eq!(mem.table_info().1, mmap.table_info().1, "same entry count");

    let mut mem_client = Client::connect(mem.tcp_addr().unwrap()).unwrap();
    let mut mmap_client = Client::connect(mmap.tcp_addr().unwrap()).unwrap();

    // The same query mix the 100k gauntlet uses: exact hosts over the
    // whole table, suffix queries, default-route fallbacks — compared
    // via raw response lines so codes and text must both match.
    let mut load: Vec<String> = Vec::new();
    for i in 0..HOSTS {
        load.push(format!("QUERY h{i} user{}", i % 7));
    }
    for host in ["caip.rutgers.edu", "x.y.edu", "not-in-table", "a.b.nowhere"] {
        load.push(format!("QUERY {host} someone"));
        load.push(format!("QUERY {host}"));
    }
    for request in &load {
        let a = mem_client.send(request).unwrap();
        let b = mmap_client.send(request).unwrap();
        assert_eq!(a, b, "backends diverge on `{request}`");
    }

    // And the batched path agrees with itself across backends.
    let batch: Vec<(&str, Option<&str>)> = (0..64)
        .map(|i| {
            if i % 9 == 0 {
                ("deep.site.edu", Some("u"))
            } else if i % 13 == 0 {
                ("unknown-host", Some("u"))
            } else {
                ("h7", Some("u"))
            }
        })
        .collect();
    assert_eq!(
        mem_client.query_batch(&batch).unwrap(),
        mmap_client.query_batch(&batch).unwrap(),
    );

    mem_client.quit().unwrap();
    mmap_client.quit().unwrap();
    mem.shutdown();
    mmap.shutdown();
    std::fs::remove_file(padb_path).unwrap();
}

#[test]
fn reload_from_full_map_pipeline() {
    // The daemon pointed at *map input*, not pre-rendered routes: every
    // reload re-runs parse → map → print and multi-source validation.
    let map_path = temp("pipeline.map");
    std::fs::write(
        &map_path,
        "unc\tduke(100), phs(400)\nduke\tunc(100), research(200)\n\
         phs\tunc(400)\nresearch\tduke(200)\n",
    )
    .unwrap();
    let options = pathalias_core::Options {
        local: Some("unc".into()),
        ..Default::default()
    };
    let source = MapSource::map_files(vec![map_path.clone()], options);
    let handle = Server::start(ServerConfig::ephemeral(source)).unwrap();
    let addr = handle.tcp_addr().unwrap();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.query("research", Some("honey")).unwrap().unwrap(),
        "duke!research!honey"
    );

    // Cheapen the duke→research link's alternative: route flips after
    // a map edit plus RELOAD.
    std::fs::write(
        &map_path,
        "unc\tduke(100), phs(400), research(150)\nduke\tunc(100), research(200)\n\
         phs\tunc(400)\nresearch\tunc(150), duke(200)\n",
    )
    .unwrap();
    client.reload().unwrap();
    assert_eq!(
        client.query("research", Some("honey")).unwrap().unwrap(),
        "research!honey",
        "reload must re-map the edited graph"
    );

    // A broken map must fail the reload and keep the last good table.
    std::fs::write(&map_path, "this is ( not a map\n").unwrap();
    let err = client.send("RELOAD").unwrap();
    assert!(err.starts_with("500 "), "broken map: {err}");
    assert_eq!(
        client.query("research", Some("honey")).unwrap().unwrap(),
        "research!honey",
        "failed reload must leave the old table serving"
    );

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(map_path).unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport() {
    let routes_path = temp("unix.routes");
    std::fs::write(&routes_path, "seismo\tseismo!%s\n").unwrap();
    let sock = temp("unix.sock");
    let mut config = ServerConfig::ephemeral(MapSource::Routes(routes_path.clone()));
    config.tcp = None;
    config.unix = Some(sock.clone());
    config.cache_capacity = 64;
    config.cache_shards = 2;
    let handle = Server::start(config).unwrap();
    assert!(handle.tcp_addr().is_none());

    let mut client = Client::connect_unix(&sock).unwrap();
    assert_eq!(
        client.query("seismo", Some("rick")).unwrap().unwrap(),
        "seismo!rick"
    );
    assert!(client.health().unwrap().contains("entries=1"));
    client.quit().unwrap();

    handle.shutdown();
    assert!(!sock.exists(), "socket file cleaned up on shutdown");
    std::fs::remove_file(routes_path).unwrap();
}

#[test]
fn protocol_abuse_is_survivable() {
    let routes_path = temp("abuse.routes");
    std::fs::write(&routes_path, "a\ta!%s\n").unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(
        routes_path.clone(),
    )))
    .unwrap();
    let addr = handle.tcp_addr().unwrap();

    // Unknown verbs and malformed lines get 400s, connection survives.
    let mut client = Client::connect(addr).unwrap();
    assert!(client
        .send("EHLO mail.example")
        .unwrap()
        .starts_with("400 "));
    assert!(client.send("QUERY").unwrap().starts_with("400 "));
    assert!(client.send("QUERY a b c").unwrap().starts_with("400 "));
    assert_eq!(client.send("QUERY a rick").unwrap(), "200 a!rick");

    // An over-long line gets a 400 and the connection is dropped —
    // but the server survives for everyone else.
    let long = format!("QUERY {}", "x".repeat(64 * 1024));
    if let Ok(resp) = client.send(&long) {
        assert!(resp.starts_with("400 "), "{resp}");
    } // an Err is fine too: the server may drop mid-write

    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.send("QUERY a rick").unwrap(), "200 a!rick");
    fresh.quit().unwrap();

    handle.shutdown();
    std::fs::remove_file(routes_path).unwrap();
}

/// Two worlds for the PATH/RELOAD race: the cheapest route from home
/// to leaf goes through `mid` before the reload and through the new
/// `direct` link after it — visibly different, never mixable.
fn path_map(with_shortcut: bool) -> String {
    let mut map = String::from("home\tmid(100)\nmid\thome(100), leaf(100)\nleaf\tmid(100)\n");
    if with_shortcut {
        map.push_str("home\tdirect(50)\ndirect\thome(50), leaf(10)\n");
    }
    map
}

#[test]
fn path_stays_consistent_across_hot_reloads() {
    // Hammer PATH from several connections while another connection
    // reloads the map back and forth. Every answer must be a complete
    // route from one generation — `mid!leaf!%s` (no shortcut) or
    // `direct!leaf!%s` (shortcut) — never an error, a torn line, or a
    // phantom mixture.
    let path = temp("path-race.map");
    std::fs::write(&path, path_map(false)).unwrap();

    let handle = Server::start(ServerConfig::ephemeral(MapSource::map_files(
        vec![path.clone()],
        pathalias_core::Options {
            local: Some("home".to_string()),
            ..Default::default()
        },
    )))
    .expect("server starts");
    let addr = handle.tcp_addr().unwrap();

    let old_seen = Arc::new(AtomicU64::new(0));
    let new_seen = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..4 {
            let old_seen = old_seen.clone();
            let new_seen = new_seen.clone();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for i in 0..1_500 {
                    if i % 7 == 0 {
                        // The via listing races the same swap: leaf's
                        // predecessors are {mid} or {mid, direct}.
                        let entries = client.via("leaf").unwrap().expect("leaf exists");
                        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
                        assert!(
                            names == ["mid"]
                                || names == ["direct", "mid"]
                                || names == ["mid", "direct"],
                            "via listing from a phantom generation: {names:?}"
                        );
                        continue;
                    }
                    let info = client
                        .path("home", "leaf")
                        .expect("PATH must not error across a reload")
                        .expect("leaf is always reachable");
                    match info.route.as_str() {
                        "mid!leaf!%s" => {
                            assert_eq!((info.cost, info.hops), (200, 2), "old-world route");
                            old_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        "direct!leaf!%s" => {
                            assert_eq!((info.cost, info.hops), (60, 2), "new-world route");
                            new_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("route from a phantom generation: {other}"),
                    }
                }
                client.quit().unwrap();
            });
        }

        // The reloader: flip the shortcut in and out while the PATH
        // clients are loading.
        let reload_path = path.clone();
        s.spawn(move || {
            let mut client = Client::connect(addr).expect("reloader connects");
            for round in 0..6 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                std::fs::write(&reload_path, path_map(round % 2 == 0)).unwrap();
                client.reload().expect("reload succeeds");
            }
            client.quit().unwrap();
        });
    });

    assert!(
        old_seen.load(Ordering::Relaxed) > 0,
        "no PATH hit the shortcut-free world (reloads outran the clients)"
    );
    assert!(
        new_seen.load(Ordering::Relaxed) > 0,
        "no PATH hit the shortcut world (the reloads never landed)"
    );

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}
