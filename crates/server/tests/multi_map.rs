//! Sharded multi-map serving: one daemon, many worlds.
//!
//! The acceptance gauntlet: a daemon serving three named maps answers
//! every query byte-identically to three single-map daemons serving
//! the same sources, under 8 concurrent clients, while one map is
//! RELOADed mid-load — the other two maps must not so much as bump a
//! generation. Plus wire-level coverage of `MAPS`, `@name`
//! qualifiers, per-map `STATS`, and the v1 byte-compat contract on a
//! multi-map daemon.

use pathalias_server::{Client, MapSource, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const HOSTS: usize = 100;
const CLIENTS: usize = 8;
const BATCHES_PER_CLIENT: usize = 120;
const BATCH: usize = 12;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-multimap-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// One world's route file: every host routed through `relay`, plus a
/// domain suffix, so each map (and each generation) gives visibly
/// different answers.
fn routes(relay: &str) -> String {
    let mut out = String::new();
    for i in 0..HOSTS {
        out.push_str(&format!("h{i}\t{relay}!h{i}!%s\n"));
    }
    out.push_str(&format!(".edu\t{relay}!edu-gw!%s\n"));
    out
}

struct World {
    name: &'static str,
    path: PathBuf,
    single: ServerHandle,
}

#[test]
fn multi_map_daemon_matches_single_map_daemons_across_a_per_map_reload() {
    // Three worlds, each also served by its own single-map daemon —
    // the equivalence oracle.
    let worlds: Vec<World> = ["west", "east", "local"]
        .into_iter()
        .map(|name| {
            let path = temp(&format!("{name}.routes"));
            std::fs::write(&path, routes(&format!("{name}A"))).unwrap();
            let single = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone())))
                .expect("single-map daemon starts");
            World { name, path, single }
        })
        .collect();

    let multi = Server::start(ServerConfig::ephemeral_set(
        worlds
            .iter()
            .map(|w| (w.name.to_string(), MapSource::Routes(w.path.clone())))
            .collect(),
    ))
    .expect("multi-map daemon starts");
    let multi_addr = multi.tcp_addr().unwrap();
    let single_addrs: Vec<_> = worlds
        .iter()
        .map(|w| w.single.tcp_addr().unwrap())
        .collect();

    // "east" (index 1) is the world that reloads mid-load. The
    // reloader fires once a quarter of the total batches have run
    // (not on a wall-clock timer, so the test cannot race its own
    // load), and every client keeps batching east until it has
    // observed the post-reload world — both generations are
    // guaranteed to serve concurrent traffic.
    let old_seen = Arc::new(AtomicU64::new(0));
    let new_seen = Arc::new(AtomicU64::new(0));
    let progress = Arc::new(AtomicU64::new(0));
    let reloaded = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        for client_id in 0..CLIENTS {
            let old_seen = old_seen.clone();
            let new_seen = new_seen.clone();
            let progress = progress.clone();
            let reloaded = reloaded.clone();
            let worlds = &worlds;
            let single_addrs = &single_addrs;
            s.spawn(move || {
                let mut multi_client = Client::connect(multi_addr).expect("client connects");
                let mut single_clients: Vec<Client> = single_addrs
                    .iter()
                    .map(|a| Client::connect(*a).expect("oracle client connects"))
                    .collect();
                let user = format!("u{client_id}");
                // The main load, plus east-only overtime batches until
                // the reload has landed (so post-reload traffic is
                // concurrent, not an afterthought).
                let mut b = 0;
                loop {
                    let in_overtime = b >= BATCHES_PER_CLIENT;
                    if in_overtime && reloaded.load(Ordering::SeqCst) {
                        break;
                    }
                    assert!(
                        b < BATCHES_PER_CLIENT * 1000,
                        "reloader never fired; aborting instead of spinning forever"
                    );
                    let world_ix = if in_overtime {
                        1
                    } else {
                        (client_id + b) % worlds.len()
                    };
                    let world = &worlds[world_ix];
                    let hosts: Vec<String> = (0..BATCH)
                        .map(|k| format!("h{}", (client_id * 37 + b * BATCH + k) % HOSTS))
                        .collect();
                    let queries: Vec<(&str, Option<&str>)> = hosts
                        .iter()
                        .map(|h| (h.as_str(), Some(user.as_str())))
                        .collect();
                    // Every third batch goes unqualified — it must hit
                    // the default map (the first one, "west").
                    let map = if b % 3 == 0 && world_ix == 0 {
                        None
                    } else {
                        Some(world.name)
                    };
                    b += 1;
                    progress.fetch_add(1, Ordering::SeqCst);
                    let multi_answers = multi_client
                        .query_batch_on(map, &queries)
                        .expect("multi-map batch must not error across the reload");
                    let single_answers = single_clients[world_ix]
                        .query_batch(&queries)
                        .expect("oracle batch must not error");
                    let old = format!("{}A", world.name);
                    let new = format!("{}B", world.name);
                    for ((host, multi_ans), single_ans) in
                        hosts.iter().zip(&multi_answers).zip(&single_answers)
                    {
                        let multi_ans = multi_ans.as_deref().expect("host exists");
                        let single_ans = single_ans.as_deref().expect("host exists");
                        let old_route = format!("{old}!{host}!{user}");
                        let new_route = format!("{new}!{host}!{user}");
                        // Torn/mixed answers are never acceptable.
                        for (which, ans) in [("multi", multi_ans), ("single", single_ans)] {
                            assert!(
                                ans == old_route || ans == new_route,
                                "{which} daemon, map {}: torn answer `{ans}`",
                                world.name
                            );
                        }
                        // Byte-identical, except in the reload
                        // transition window where one daemon may have
                        // swapped before the other — both answers must
                        // still be valid generations of the same map.
                        if multi_ans != single_ans {
                            assert_eq!(
                                world.name, "east",
                                "maps that never reload must agree byte-for-byte"
                            );
                        }
                        if world.name == "east" {
                            if multi_ans == old_route {
                                old_seen.fetch_add(1, Ordering::Relaxed);
                            } else {
                                new_seen.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                multi_client.quit().expect("clean quit");
                for c in single_clients {
                    c.quit().expect("clean quit");
                }
            });
        }

        // The reloader: rewrite east's source mid-load and reload it on
        // both daemons — and only it.
        let east_path = worlds[1].path.clone();
        let east_single = single_addrs[1];
        let reload_progress = progress.clone();
        let reload_flag = reloaded.clone();
        s.spawn(move || {
            let fire_at = (CLIENTS * BATCHES_PER_CLIENT) as u64 / 4;
            while reload_progress.load(Ordering::SeqCst) < fire_at {
                std::thread::sleep(Duration::from_millis(2));
            }
            std::fs::write(&east_path, routes("eastB")).unwrap();
            let mut multi_client = Client::connect(multi_addr).unwrap();
            let payload = multi_client
                .reload_on(Some("east"))
                .expect("qualified reload succeeds");
            assert!(
                payload.contains("map=east generation=1"),
                "east reload publishes generation 1: {payload}"
            );
            multi_client.quit().unwrap();
            let mut oracle = Client::connect(east_single).unwrap();
            oracle.reload().expect("oracle reload succeeds");
            oracle.quit().unwrap();
            reload_flag.store(true, Ordering::SeqCst);
        });
    });

    // Both east generations must have served traffic.
    assert!(
        old_seen.load(Ordering::Relaxed) > 0,
        "reload fired too early"
    );
    assert!(new_seen.load(Ordering::Relaxed) > 0, "reload never landed");

    // Settled differential sweep: every host of every map, byte for
    // byte against the oracles.
    let mut multi_client = Client::connect(multi_addr).unwrap();
    for (world_ix, world) in worlds.iter().enumerate() {
        let mut oracle = Client::connect(single_addrs[world_ix]).unwrap();
        let hosts: Vec<String> = (0..HOSTS)
            .map(|i| format!("h{i}"))
            .chain(["x.rutgers.edu".to_string(), "no.such.host".to_string()])
            .collect();
        let queries: Vec<(&str, Option<&str>)> =
            hosts.iter().map(|h| (h.as_str(), Some("sweep"))).collect();
        let multi_answers = multi_client
            .query_batch_on(Some(world.name), &queries)
            .unwrap();
        let single_answers = oracle.query_batch(&queries).unwrap();
        assert_eq!(
            multi_answers, single_answers,
            "settled answers for map {} must be byte-identical",
            world.name
        );
        oracle.quit().unwrap();
    }

    // Per-map isolation, visible in generations and counters: only
    // east reloaded; every map served queries.
    for (world, expected_generation) in worlds.iter().zip([0u64, 1, 0]) {
        let health = multi_client.health_on(Some(world.name)).unwrap();
        assert!(
            health.contains(&format!("generation={expected_generation}")),
            "map {}: {health}",
            world.name
        );
        let stats = multi_client.stats_on(Some(world.name)).unwrap();
        assert!(
            stats.starts_with(&format!("map={} ", world.name)),
            "{stats}"
        );
        let field = |k: &str| -> u64 {
            stats
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{k}=")))
                .unwrap_or_else(|| panic!("missing {k} in `{stats}`"))
                .parse()
                .unwrap()
        };
        assert!(field("queries") > 0, "map {} saw no queries", world.name);
        assert_eq!(
            field("reloads"),
            u64::from(world.name == "east"),
            "map {}",
            world.name
        );
        assert_eq!(field("reload_failures"), 0);
    }
    multi_client.quit().unwrap();

    multi.shutdown();
    for world in worlds {
        world.single.shutdown();
        std::fs::remove_file(world.path).unwrap();
    }
}

#[test]
fn maps_verb_and_default_map_selection() {
    let a = temp("maps-a.routes");
    let b = temp("maps-b.routes");
    std::fs::write(&a, "h\ta-gw!h!%s\n").unwrap();
    std::fs::write(&b, "h\tb-gw!h!%s\n").unwrap();
    let mut config = ServerConfig::ephemeral_set(vec![
        ("alpha".to_string(), MapSource::Routes(a.clone())),
        ("beta".to_string(), MapSource::Routes(b.clone())),
    ]);
    config.default_map = Some("beta".to_string());
    let handle = Server::start(config).unwrap();
    assert_eq!(handle.default_map_name(), "beta");
    let infos = handle.map_infos();
    assert_eq!(infos.len(), 2);
    assert_eq!((infos[0].0.as_str(), infos[0].1), ("alpha", "routes"));

    let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();
    let info = client.maps().unwrap();
    assert_eq!(info.names, vec!["alpha".to_string(), "beta".to_string()]);
    assert_eq!(info.default, "beta");

    // Unqualified traffic goes to the configured default, not the
    // first map.
    assert_eq!(client.query("h", Some("u")).unwrap().unwrap(), "b-gw!h!u");
    assert_eq!(
        client
            .query_on(Some("alpha"), "h", Some("u"))
            .unwrap()
            .unwrap(),
        "a-gw!h!u"
    );
    // Unknown maps are a clean 400 with the server's text.
    match client.query_on(Some("nope"), "h", None) {
        Err(pathalias_server::ClientError::Server { code: 400, message }) => {
            assert_eq!(message, "unknown map `nope`");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
    // A *batch* against an unknown map surfaces the same 400 without
    // desynchronizing the connection (the server must answer one line
    // per slot, and the client must drain them all).
    match client.query_batch_on(Some("nope"), &[("h", None), ("h", Some("u"))]) {
        Err(pathalias_server::ClientError::Server { code: 400, message }) => {
            assert_eq!(message, "unknown map `nope`");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
    assert_eq!(
        client
            .query_on(Some("alpha"), "h", Some("u"))
            .unwrap()
            .unwrap(),
        "a-gw!h!u",
        "connection must stay usable after the failed batch"
    );
    // Hosts that could be mistaken for a map qualifier are refused
    // client-side, before anything is written.
    assert!(matches!(
        client.query("@alpha", Some("u")),
        Err(pathalias_server::ClientError::InvalidQuery(_))
    ));
    assert!(matches!(
        client.query_batch(&[("@alpha", None), ("h", None)]),
        Err(pathalias_server::ClientError::InvalidQuery(_))
    ));
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(a).unwrap();
    std::fs::remove_file(b).unwrap();
}

#[test]
fn v1_session_replays_byte_identically_on_a_multi_map_daemon() {
    // The PR-2 replay transcript, unchanged, against a daemon serving
    // three maps — a v1 client cannot tell the difference as long as
    // the default map matches.
    let default_path = temp("replay-default.routes");
    std::fs::write(&default_path, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
    let other = temp("replay-other.routes");
    std::fs::write(&other, "elsewhere\tfar!elsewhere!%s\n").unwrap();
    let handle = Server::start(ServerConfig::ephemeral_set(vec![
        ("main".to_string(), MapSource::Routes(default_path.clone())),
        ("spare".to_string(), MapSource::Routes(other.clone())),
        ("extra".to_string(), MapSource::Routes(other.clone())),
    ]))
    .unwrap();

    let session: &[u8] = b"HEALTH\n\
        QUERY seismo rick\n\
        QUERY caip.rutgers.edu pleasant\n\
        QUERY seismo\n\
        QUERY nowhere u\n\
        QUERY\n\
        QUERY a b c\n\
        ehlo example.org\n\
        STATS now\n\
        MAPS\n\
        QUIT\n";
    let expected: &[u8] = b"200 ok generation=0 entries=2\n\
        200 seismo!rick\n\
        200 seismo!caip.rutgers.edu!pleasant\n\
        200 seismo!%s\n\
        404 no route to nowhere\n\
        400 QUERY needs a host\n\
        400 trailing argument `c`\n\
        400 unknown verb `EHLO`\n\
        400 trailing argument `now`\n\
        400 unknown verb `MAPS`\n\
        200 bye\n";

    let mut stream = TcpStream::connect(handle.tcp_addr().unwrap()).unwrap();
    stream.write_all(session).unwrap();
    stream.flush().unwrap();
    let mut got = Vec::new();
    stream.read_to_end(&mut got).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(expected),
        "v1 replay must be byte-identical on a multi-map daemon"
    );

    handle.shutdown();
    std::fs::remove_file(default_path).unwrap();
    std::fs::remove_file(other).unwrap();
}

#[test]
fn v2_qualified_session_over_raw_bytes() {
    // Pin the exact v2 wire bytes for the map-qualified verbs.
    let west = temp("raw-west.routes");
    let east = temp("raw-east.routes");
    std::fs::write(&west, "h\twest-gw!h!%s\n").unwrap();
    std::fs::write(&east, "h\teast-gw!h!%s\ne1\teast!e1!%s\n").unwrap();
    let handle = Server::start(ServerConfig::ephemeral_set(vec![
        ("west".to_string(), MapSource::Routes(west.clone())),
        ("east".to_string(), MapSource::Routes(east.clone())),
    ]))
    .unwrap();

    let session: &[u8] = b"PROTO 2\n\
        MAPS\n\
        QUERY @east h u\n\
        MQUERY @east h:u e1 missing\n\
        HEALTH @east\n\
        STATS @bogus\n\
        RELOAD @east\n\
        QUERY @east h u\n\
        QUIT\n";
    let expected: &[u8] = b"200 proto=2\n\
        200 maps=west,east default=west\n\
        200 east-gw!h!u\n\
        200 east-gw!h!u\n\
        200 east!e1!%s\n\
        404 no route to missing\n\
        200 ok map=east generation=0 entries=2\n\
        400 unknown map `bogus`\n\
        200 reloaded map=east generation=1 entries=2\n\
        200 east-gw!h!u\n\
        200 bye\n";

    let mut stream = TcpStream::connect(handle.tcp_addr().unwrap()).unwrap();
    stream.write_all(session).unwrap();
    stream.flush().unwrap();
    let mut got = Vec::new();
    stream.read_to_end(&mut got).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(expected),
        "v2 qualified session bytes"
    );

    handle.shutdown();
    std::fs::remove_file(west).unwrap();
    std::fs::remove_file(east).unwrap();
}

#[test]
fn per_map_watch_reloads_only_the_changed_map() {
    let a = temp("watch-a.routes");
    let b = temp("watch-b.routes");
    std::fs::write(&a, "h\ta-gw!h!%s\n").unwrap();
    std::fs::write(&b, "h\tb-gw!h!%s\n").unwrap();
    let mut config = ServerConfig::ephemeral_set(vec![
        ("a".to_string(), MapSource::Routes(a.clone())),
        ("b".to_string(), MapSource::Routes(b.clone())),
    ]);
    config.watch = Some(Duration::from_millis(50));
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();

    // Rewrite only map b; the watcher must reload b and leave a alone.
    std::fs::write(&b, "h\tb2-gw!h!%s\n").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.health_on(Some("b")).unwrap();
        if health.contains("generation=1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "map b never auto-reloaded: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        client.query_on(Some("b"), "h", Some("u")).unwrap().unwrap(),
        "b2-gw!h!u"
    );
    let health_a = client.health_on(Some("a")).unwrap();
    assert!(
        health_a.contains("generation=0"),
        "map a must not reload: {health_a}"
    );
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(a).unwrap();
    std::fs::remove_file(b).unwrap();
}
