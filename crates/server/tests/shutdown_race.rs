//! `RELOAD` of one map racing `SHUTDOWN` draining: the drain must
//! finish inside its deadline, no client may ever see a torn
//! snapshot (an `MQUERY` batch mixing two generations), and a reload
//! that arrives after the drain began is refused instead of holding
//! the daemon open to rebuild a table it will never serve.

use pathalias_server::{Client, ClientError, MapSource, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const HOSTS: usize = 60;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-race-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn routes(relay: &str) -> String {
    let mut out = String::new();
    for i in 0..HOSTS {
        out.push_str(&format!("h{i}\t{relay}!h{i}!%s\n"));
    }
    out
}

#[test]
fn per_map_reload_racing_shutdown_drain() {
    let stable_path = temp("stable.routes");
    let churn_path = temp("churn.routes");
    std::fs::write(&stable_path, routes("stable0")).unwrap();
    std::fs::write(&churn_path, routes("churn0")).unwrap();

    let handle = Server::start(ServerConfig::ephemeral_set(vec![
        ("stable".to_string(), MapSource::Routes(stable_path.clone())),
        ("churn".to_string(), MapSource::Routes(churn_path.clone())),
    ]))
    .unwrap();
    let addr = handle.tcp_addr().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicU64::new(0));
    let refusals = Arc::new(AtomicU64::new(0));

    let drained = std::thread::scope(|s| {
        // The churner: rewrite + qualified RELOAD of one map in a hot
        // loop, so a reload is overwhelmingly likely to be in flight
        // when SHUTDOWN lands. After the drain begins, reloads must be
        // refused with the server's 500, never hang.
        {
            let stop = stop.clone();
            let refusals = refusals.clone();
            let churn_path = churn_path.clone();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("churner connects");
                let mut generation = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    generation += 1;
                    std::fs::write(&churn_path, routes(&format!("churn{}", generation % 2)))
                        .unwrap();
                    match client.reload_on(Some("churn")) {
                        Ok(payload) => {
                            assert!(payload.contains("map=churn"), "{payload}");
                        }
                        Err(ClientError::Server { code: 500, message }) => {
                            assert!(
                                message.contains("shutting down"),
                                "unexpected 500: {message}"
                            );
                            refusals.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(ClientError::Io(_)) => break, // drain closed us
                        Err(e) => panic!("reload failed unexpectedly: {e}"),
                    }
                }
                let _ = client.quit();
            });
        }

        // Query clients: pinned MQUERY batches over the churning map —
        // a batch mixing relays is a torn snapshot. They stop promptly
        // once the drain begins, like a well-behaved mailer.
        for client_id in 0..4 {
            let stop = stop.clone();
            let progress = progress.clone();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let user = format!("u{client_id}");
                let hosts: Vec<String> = (0..HOSTS).map(|i| format!("h{i}")).collect();
                let queries: Vec<(&str, Option<&str>)> = hosts
                    .iter()
                    .map(|h| (h.as_str(), Some(user.as_str())))
                    .collect();
                while !stop.load(Ordering::SeqCst) {
                    let map = if client_id % 2 == 0 {
                        "churn"
                    } else {
                        "stable"
                    };
                    let answers = match client.query_batch_on(Some(map), &queries) {
                        Ok(a) => a,
                        Err(ClientError::Io(_)) => break, // drain closed us
                        Err(e) => panic!("batch failed: {e}"),
                    };
                    let first = answers[0].as_deref().expect("host exists");
                    let relay = first.split('!').next().unwrap().to_string();
                    if map == "stable" {
                        assert_eq!(relay, "stable0", "the stable map must never change");
                    }
                    for (host, answer) in hosts.iter().zip(&answers) {
                        let answer = answer.as_deref().expect("host exists");
                        assert_eq!(
                            answer,
                            format!("{relay}!{host}!{user}"),
                            "torn batch: one MQUERY answered from two generations"
                        );
                    }
                    progress.fetch_add(1, Ordering::SeqCst);
                }
                let _ = client.quit();
            });
        }

        // The shutter: once real concurrent load has happened, drain.
        while progress.load(Ordering::SeqCst) < 40 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let shutter = Client::connect(addr).expect("shutter connects");
        assert_eq!(
            shutter.shutdown().expect("shutdown accepted"),
            "shutting down"
        );
        stop.store(true, Ordering::SeqCst);

        handle.drain(Duration::from_secs(10))
    });

    assert!(drained, "drain must finish inside its deadline");
    std::fs::remove_file(stable_path).unwrap();
    std::fs::remove_file(churn_path).unwrap();
}

#[test]
fn reload_after_drain_begins_is_refused() {
    let path = temp("refused.routes");
    std::fs::write(&path, "a\ta!%s\n").unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(path.clone()))).unwrap();
    let addr = handle.tcp_addr().unwrap();

    // Connect *before* the drain starts (accepts stop afterwards).
    let mut bystander = Client::connect(addr).unwrap();
    assert_eq!(bystander.query("a", Some("u")).unwrap().unwrap(), "a!u");

    let shutter = Client::connect(addr).unwrap();
    shutter.shutdown().unwrap();

    match bystander.reload() {
        Err(ClientError::Server { code: 500, message }) => {
            assert!(message.contains("shutting down"), "{message}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // Queries still answer during the drain; the table is untouched.
    assert_eq!(bystander.query("a", Some("u")).unwrap().unwrap(), "a!u");
    let health = bystander.health().unwrap();
    assert!(health.contains("generation=0"), "{health}");
    bystander.quit().unwrap();

    assert!(handle.drain(Duration::from_secs(5)));
    std::fs::remove_file(path).unwrap();
}
