//! The golden differential corpus: small crafted maps (duplicate
//! links, `adjust`, `delete`, a `.` default route, layered domain
//! suffixes) with their expected rendered routes checked in next to
//! them. Every backend — the in-memory table, the PADB1 file (loaded
//! and mmap-served), the PAGF1 snapshot, and every map of a multi-map
//! daemon — must answer every probe byte-identically.

use pathalias_core::{Options, Parsed};
use pathalias_mailer::disk::write_db;
use pathalias_mailer::{ResolveError, Resolver};
use pathalias_server::{Client, MapSource, Server, ServerConfig};
use std::path::{Path, PathBuf};

/// The corpus, by file stem; each `NAME.map` routes from local host
/// `home` and has its golden output in `NAME.routes`.
const CORPUS: &[&str] = &["dupes", "adjust", "deleted", "default_route", "domains"];

fn corpus_file(name: &str, ext: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(format!("{name}.{ext}"))
}

fn options() -> Options {
    Options {
        local: Some("home".to_string()),
        ..Options::default()
    }
}

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-corpus-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The probe set for one golden table: every name in it, synthetic
/// hosts under every domain suffix, and names that must miss (or fall
/// through to a `.` default route).
fn probes(golden: &str) -> Vec<String> {
    let mut probes = Vec::new();
    for line in golden.lines() {
        let name = line.split('\t').next().unwrap();
        probes.push(name.to_string());
        if let Some(suffix) = name.strip_prefix('.') {
            if !suffix.is_empty() {
                probes.push(format!("probe.{suffix}"));
                probes.push(format!("deep.er.{suffix}"));
            }
        }
    }
    probes.push("no.such.host.zzz".to_string());
    probes.push("Upper.Case.Probe".to_string());
    probes
}

#[test]
fn pipeline_output_matches_the_checked_in_goldens() {
    for name in CORPUS {
        let mut parsed = Parsed::new();
        parsed.push_file(corpus_file(name, "map")).unwrap();
        let options = options();
        let rendered = parsed
            .build(&options)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .freeze()
            .map(&options)
            .unwrap()
            .print(&options)
            .rendered
            .clone();
        let golden = std::fs::read_to_string(corpus_file(name, "routes")).unwrap();
        assert_eq!(
            rendered, golden,
            "{name}: pipeline output diverged from the golden corpus \
             (if the change is intentional, regenerate {name}.routes)"
        );
    }
}

#[test]
fn every_backend_answers_the_corpus_byte_identically() {
    for name in CORPUS {
        let map_path = corpus_file(name, "map");
        let golden = std::fs::read_to_string(corpus_file(name, "routes")).unwrap();

        // Ground truth: the in-memory table from the full pipeline.
        let pipeline_source = MapSource::map_files(vec![map_path.clone()], options());
        let db = pipeline_source.load().unwrap();
        let reference = pipeline_source.load_resolver().unwrap();

        // The same world in every other backend shape.
        let routes_path = temp(&format!("{name}.routes"));
        std::fs::write(&routes_path, &golden).unwrap();
        let padb_path = temp(&format!("{name}.padb"));
        write_db(&db, &padb_path).unwrap();
        let pagf_path = temp(&format!("{name}.pagf"));
        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        parsed
            .build(&options())
            .unwrap()
            .freeze()
            .write_snapshot(&pagf_path)
            .unwrap();

        let backends: Vec<(&str, MapSource)> = vec![
            ("routes", MapSource::Routes(routes_path.clone())),
            ("padb", MapSource::Padb(padb_path.clone())),
            ("padb-mmap", MapSource::PadbMmap(padb_path.clone())),
            (
                "pagf",
                MapSource::frozen_snapshot(pagf_path.clone(), options()),
            ),
        ];
        for (kind, source) in backends {
            let resolver = source.load_resolver().unwrap();
            assert_eq!(
                resolver.entries(),
                reference.entries(),
                "{name}/{kind}: entry count"
            );
            for probe in probes(&golden) {
                let want = reference.resolve(&probe, "mel");
                let got = resolver.resolve(&probe, "mel");
                match (want, got) {
                    (Ok(w), Ok(g)) => {
                        assert_eq!(g.route, w.route, "{name}/{kind}: route to {probe} diverged")
                    }
                    (Err(ResolveError::NoRoute), Err(ResolveError::NoRoute)) => {}
                    (w, g) => panic!(
                        "{name}/{kind}: {probe} resolved differently: \
                         reference {w:?}, backend {g:?}"
                    ),
                }
            }
        }
        for p in [routes_path, padb_path, pagf_path] {
            std::fs::remove_file(p).unwrap();
        }
    }
}

#[test]
fn path_from_home_matches_query_on_every_graph_backend() {
    // The serving invariant: the PATH engine is built from the same
    // mapping run as the route table, so `PATH home X` must render the
    // same route QUERY prints, byte for byte, on every backend that
    // carries a frozen graph (map pipeline and PAGF snapshot — with
    // and without the stored reverse section). Table-only backends
    // must refuse rather than approximate.
    for name in CORPUS {
        let map_path = corpus_file(name, "map");
        let golden = std::fs::read_to_string(corpus_file(name, "routes")).unwrap();

        let mut parsed = Parsed::new();
        parsed.push_file(&map_path).unwrap();
        let frozen = parsed.build(&options()).unwrap().freeze();
        let pagf_path = temp(&format!("path-{name}.pagf"));
        frozen.write_snapshot(&pagf_path).unwrap();
        let pagf_rev_path = temp(&format!("path-{name}-rev.pagf"));
        frozen.write_snapshot_with_reverse(&pagf_rev_path).unwrap();

        let backends: Vec<(&str, MapSource)> = vec![
            ("map", MapSource::map_files(vec![map_path], options())),
            (
                "pagf",
                MapSource::frozen_snapshot(pagf_path.clone(), options()),
            ),
            (
                "pagf+reverse",
                MapSource::frozen_snapshot(pagf_rev_path.clone(), options()),
            ),
        ];
        for (kind, source) in backends {
            let server = Server::start(ServerConfig::ephemeral(source)).expect("server starts");
            let mut client = Client::connect(server.tcp_addr().unwrap()).unwrap();
            assert_eq!(client.send("PROTO 2").unwrap(), "200 proto=2");
            for line in golden.lines() {
                let host = line.split('\t').next().unwrap();
                let query = client.send(&format!("QUERY {host}")).unwrap();
                let route = query
                    .strip_prefix("200 ")
                    .unwrap_or_else(|| panic!("{name}/{kind}: QUERY {host} said `{query}`"));
                let info = client
                    .path("home", host)
                    .unwrap_or_else(|e| panic!("{name}/{kind}: PATH home {host}: {e}"))
                    .unwrap_or_else(|| panic!("{name}/{kind}: PATH home {host} found no route"));
                assert_eq!(
                    info.route, route,
                    "{name}/{kind}: PATH home {host} diverged from QUERY"
                );
            }
            // An unknown destination is a 404 for PATH exactly as for
            // QUERY, in both spellings.
            assert!(client.path("home", "no.such.host.zzz").unwrap().is_none());
            assert!(client.via("no.such.host.zzz").unwrap().is_none());
            client.quit().unwrap();
            server.shutdown();
        }

        // A table-only backend refuses with a 500, never a wrong path.
        let routes_path = temp(&format!("path-{name}.routes"));
        std::fs::write(&routes_path, &golden).unwrap();
        let server = Server::start(ServerConfig::ephemeral(MapSource::Routes(
            routes_path.clone(),
        )))
        .expect("routes server starts");
        let mut client = Client::connect(server.tcp_addr().unwrap()).unwrap();
        match client.path("home", "anywhere") {
            Err(pathalias_server::ClientError::Server { code: 500, message }) => {
                assert!(
                    message.contains("no frozen graph"),
                    "{name}: unexpected refusal `{message}`"
                );
            }
            other => panic!("{name}: routes backend answered PATH with {other:?}"),
        }
        client.quit().unwrap();
        server.shutdown();

        for p in [pagf_path, pagf_rev_path, routes_path] {
            std::fs::remove_file(p).unwrap();
        }
    }
}

#[test]
fn multi_map_daemon_answers_the_corpus_like_single_map_daemons() {
    // One daemon serving the whole corpus, each namespace through a
    // *different* backend shape, versus one single-map daemon per
    // corpus map serving the full pipeline — raw wire lines must be
    // byte-identical for every probe.
    let mut scratch = Vec::new();
    let members: Vec<(String, MapSource)> = CORPUS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let map_path = corpus_file(name, "map");
            let golden = std::fs::read_to_string(corpus_file(name, "routes")).unwrap();
            let source = match i % 5 {
                0 => MapSource::map_files(vec![map_path], options()),
                1 => {
                    let p = temp(&format!("mm-{name}.routes"));
                    std::fs::write(&p, &golden).unwrap();
                    scratch.push(p.clone());
                    MapSource::Routes(p)
                }
                2 | 3 => {
                    let db = MapSource::map_files(vec![map_path], options())
                        .load()
                        .unwrap();
                    let p = temp(&format!("mm-{name}.padb"));
                    write_db(&db, &p).unwrap();
                    scratch.push(p.clone());
                    if i % 5 == 2 {
                        MapSource::Padb(p)
                    } else {
                        MapSource::PadbMmap(p)
                    }
                }
                _ => {
                    let mut parsed = Parsed::new();
                    parsed.push_file(&map_path).unwrap();
                    let p = temp(&format!("mm-{name}.pagf"));
                    parsed
                        .build(&options())
                        .unwrap()
                        .freeze()
                        .write_snapshot(&p)
                        .unwrap();
                    scratch.push(p.clone());
                    MapSource::frozen_snapshot(p, options())
                }
            };
            (name.to_string(), source)
        })
        .collect();

    let multi = Server::start(ServerConfig::ephemeral_set(members)).expect("multi-map starts");
    let mut multi_client = Client::connect(multi.tcp_addr().unwrap()).unwrap();
    // Raw v2 session so response lines can be compared byte-for-byte.
    assert_eq!(multi_client.send("PROTO 2").unwrap(), "200 proto=2");

    for name in CORPUS {
        let golden = std::fs::read_to_string(corpus_file(name, "routes")).unwrap();
        let single = Server::start(ServerConfig::ephemeral(MapSource::map_files(
            vec![corpus_file(name, "map")],
            options(),
        )))
        .expect("single-map oracle starts");
        let mut oracle = Client::connect(single.tcp_addr().unwrap()).unwrap();

        for probe in probes(&golden) {
            let multi_line = multi_client
                .send(&format!("QUERY @{name} {probe} mel"))
                .unwrap();
            let single_line = oracle.send(&format!("QUERY {probe} mel")).unwrap();
            assert_eq!(
                multi_line, single_line,
                "{name}: wire answer for {probe} diverged"
            );
        }
        // And as one MQUERY batch pinned to the namespace's snapshot.
        let batch: Vec<(&str, Option<&str>)> = golden
            .lines()
            .map(|l| (l.split('\t').next().unwrap(), Some("mel")))
            .filter(|(h, _)| !h.contains(':'))
            .collect();
        let multi_answers = multi_client.query_batch_on(Some(name), &batch).unwrap();
        let single_answers = oracle.query_batch(&batch).unwrap();
        assert_eq!(multi_answers, single_answers, "{name}: MQUERY batch");

        oracle.quit().unwrap();
        single.shutdown();
    }
    multi_client.quit().unwrap();
    multi.shutdown();
    for p in scratch {
        std::fs::remove_file(p).unwrap();
    }
}
