//! Event-loop behavior that the byte-identical replay suites can't
//! see: adversarial clients (byte dribblers, slow readers), the UDP
//! datagram endpoint's parity with TCP, and the per-worker gauges.
#![cfg(unix)]

use pathalias_server::{Client, MapSource, Server, ServerConfig, ServerHandle, UdpClient};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, UdpSocket};
use std::path::PathBuf;
use std::time::Duration;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathalias-evloop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A single-worker daemon serving one tiny routes table — every
/// connection lands on the same event loop, so anything that blocks
/// the loop visibly blocks the other clients.
fn single_worker(tag: &str, udp: bool) -> (ServerHandle, PathBuf) {
    let path = temp(tag);
    std::fs::write(&path, "seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
    let mut config = ServerConfig::ephemeral(MapSource::Routes(path.clone()));
    config.workers = Some(1);
    if udp {
        config.udp = Some("127.0.0.1:0".to_string());
    }
    let handle = Server::start(config).expect("server starts");
    (handle, path)
}

#[test]
fn dribbled_bytes_frame_correctly() {
    // A client that writes one byte at a time must still get complete,
    // correctly framed responses: the nonblocking read path has to
    // buffer partial lines across many readiness events.
    let (handle, path) = single_worker("dribble.routes", false);
    let addr = handle.tcp_addr().unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let script = "PROTO 2\nQUERY seismo rick\nMQUERY x.mit.edu:minsky nowhere\n";
    for byte in script.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    let next = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).unwrap();
        line.trim_end().to_string()
    };
    assert_eq!(next(&mut reader, &mut line), "200 proto=2");
    assert_eq!(next(&mut reader, &mut line), "200 seismo!rick");
    assert_eq!(next(&mut reader, &mut line), "200 seismo!x.mit.edu!minsky");
    assert_eq!(next(&mut reader, &mut line), "404 no route to nowhere");

    // A final request with no trailing newline, then EOF: the daemon
    // must still serve that last line (legacy parity) and close.
    stream.write_all(b"QUERY seismo honey").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(next(&mut reader, &mut line), "200 seismo!honey");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "clean EOF");

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn slow_reader_mid_metrics_does_not_stall_the_worker() {
    // One connection pipelines hundreds of METRICS requests and then
    // refuses to read. The write buffer must absorb the pile-up (and
    // backpressure must stop further parsing) WITHOUT blocking the
    // worker — a second connection on the same single-worker loop has
    // to keep getting answers. When the slow reader finally drains,
    // every response must still be perfectly framed.
    const PILED: usize = 500;
    let (handle, path) = single_worker("slowread.routes", false);
    let addr = handle.tcp_addr().unwrap();

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut script = String::from("PROTO 2\n");
    for _ in 0..PILED {
        script.push_str("METRICS\n");
    }
    slow.write_all(script.as_bytes()).unwrap();

    // Let the worker chew on the pile until the un-read responses jam
    // its write buffer, then prove the loop is still alive.
    std::thread::sleep(Duration::from_millis(150));
    let mut live = Client::connect(addr).expect("second client connects");
    for i in 0..50 {
        assert_eq!(
            live.query("seismo", Some("rick")).unwrap().unwrap(),
            "seismo!rick",
            "query {i} while the slow reader jams the loop"
        );
    }
    live.quit().unwrap();

    // Now drain: one PROTO ack, then 500 multi-line METRICS responses,
    // each a `200 metrics lines=N` header followed by exactly N lines.
    let mut reader = BufReader::new(slow.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "200 proto=2");
    for batch in 0..PILED {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let count: usize = line
            .trim_end()
            .strip_prefix("200 metrics lines=")
            .unwrap_or_else(|| panic!("batch {batch}: bad header `{}`", line.trim_end()))
            .parse()
            .unwrap();
        assert!(count > 0, "batch {batch}: empty exposition");
        for _ in 0..count {
            line.clear();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "batch {batch}: truncated payload"
            );
        }
    }
    slow.write_all(b"QUIT\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "200 bye");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "clean EOF");

    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn udp_answers_match_tcp_byte_for_byte() {
    let (handle, path) = single_worker("udp-parity.routes", true);
    let tcp_addr = handle.tcp_addr().unwrap();
    let udp_addr = handle.udp_addr().expect("udp endpoint bound");

    let mut tcp = Client::connect(tcp_addr).unwrap();
    assert!(tcp.send("PROTO 2").unwrap().starts_with("200 "));
    let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
    udp.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    udp.connect(udp_addr).unwrap();

    // Every single-line verb the datagram endpoint serves, plus parse
    // errors: the reply must equal the TCP reply byte for byte.
    let mut buf = [0u8; 65536];
    for request in [
        "QUERY seismo rick",
        "QUERY caip.rutgers.edu pleasant",
        "QUERY no.such.host",
        "PATH seismo seismo",
        "HEALTH",
        "MAPS",
        "QUERY",
        "QUERY a b c",
        "EHLO mail.example",
    ] {
        let over_tcp = tcp.send(request).unwrap();
        udp.send(format!("{request}\n").as_bytes()).unwrap();
        let n = udp.recv(&mut buf).unwrap();
        let over_udp = String::from_utf8_lossy(&buf[..n]);
        assert_eq!(
            over_udp.strip_suffix('\n').unwrap_or(&over_udp),
            over_tcp,
            "transports diverge on `{request}`"
        );
    }

    // Connection-oriented verbs have no meaning in a datagram.
    for verb in ["RELOAD", "METRICS", "QUIT", "SHUTDOWN"] {
        udp.send(format!("{verb}\n").as_bytes()).unwrap();
        let n = udp.recv(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf[..n]),
            format!("400 {verb} unavailable over udp\n")
        );
    }

    // The typed UDP client agrees with the typed TCP client.
    let mut dgram = UdpClient::connect(udp_addr).unwrap();
    assert_eq!(
        dgram.query("x.mit.edu", Some("minsky")).unwrap().unwrap(),
        tcp.query("x.mit.edu", Some("minsky")).unwrap().unwrap(),
    );
    assert_eq!(dgram.query("nowhere", None).unwrap(), None);
    assert!(dgram.health().unwrap().contains("entries=2"));

    tcp.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn metrics_expose_per_worker_gauges() {
    let (handle, path) = single_worker("gauges.routes", true);
    let addr = handle.tcp_addr().unwrap();

    // A UDP datagram first, so the datagram counter has something on it.
    let mut dgram = UdpClient::connect(handle.udp_addr().unwrap()).unwrap();
    assert_eq!(
        dgram.query("seismo", Some("rick")).unwrap().unwrap(),
        "seismo!rick"
    );

    let mut client = Client::connect(addr).unwrap();
    let text = client.metrics().unwrap();
    let gauge = |name: &str| -> u64 {
        text.lines()
            .filter_map(|l| l.strip_prefix(&format!("{name}{{worker=\"0\"}} ")))
            .map(|v| v.trim().parse::<u64>().unwrap())
            .next()
            .unwrap_or_else(|| panic!("missing {name} worker series in:\n{text}"))
    };
    assert!(
        gauge("pathalias_connections_open") >= 1,
        "the scraping connection itself is open"
    );
    let _ = gauge("pathalias_worker_pending_events");
    assert!(gauge("pathalias_udp_datagrams_total") >= 1);

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn udp_oversize_response_returns_framed_500() {
    // A pathological route longer than one datagram's payload (65507
    // bytes) cannot be sent over UDP. The endpoint must answer with a
    // framed 500 — not truncate, not drop the reply — and the same
    // query over TCP must serve the full route.
    let path = temp("udp-oversize.routes");
    let long_hop = "x".repeat(70_000);
    std::fs::write(
        &path,
        format!("bighost\t{long_hop}!%s\nseismo\tseismo!%s\n"),
    )
    .unwrap();
    let mut config = ServerConfig::ephemeral(MapSource::Routes(path.clone()));
    config.workers = Some(1);
    config.udp = Some("127.0.0.1:0".to_string());
    let handle = Server::start(config).expect("server starts");

    let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
    udp.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    udp.connect(handle.udp_addr().unwrap()).unwrap();
    let mut buf = [0u8; 65536];

    udp.send(b"QUERY bighost u\n").unwrap();
    let n = udp.recv(&mut buf).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&buf[..n]),
        "500 response too large for udp\n"
    );

    // The endpoint is still healthy: small answers keep flowing.
    udp.send(b"QUERY seismo rick\n").unwrap();
    let n = udp.recv(&mut buf).unwrap();
    assert_eq!(String::from_utf8_lossy(&buf[..n]), "200 seismo!rick\n");

    // TCP has no datagram ceiling: the full route comes back intact.
    let mut tcp = Client::connect(handle.tcp_addr().unwrap()).unwrap();
    let served = tcp.query("bighost", Some("u")).unwrap().unwrap();
    assert_eq!(served, format!("{long_hop}!u"));

    tcp.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(path).unwrap();
}
