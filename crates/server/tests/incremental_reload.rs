//! Incremental (O(delta)) reload, end to end: however a reload is
//! served — repaired in place by the delta path or recomputed by the
//! full pipeline — the answers must be byte-identical to a cold run
//! over the same bytes. The delta path is an optimization with *no*
//! observable surface beyond speed and the `delta_reloads` counter.

use pathalias_core::{ChIndex, Cost, Options, Parsed, RouteKind};
use pathalias_mapgen::{generate, MapSpec};
use pathalias_router::PointToPoint;
use pathalias_server::{Client, MapSource, Server, ServerConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pathalias-increload-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a generated world's files to `dir`, returning their paths in
/// parse order.
fn write_world(dir: &Path, files: &[(String, String)]) -> Vec<PathBuf> {
    files
        .iter()
        .map(|(name, text)| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p
        })
        .collect()
}

/// Whether a map line is a plain host-to-links statement with at least
/// one explicit cost — the only statements the delta planner will ever
/// absorb, and the kind an operator edits when retuning a link.
fn is_plain_cost_line(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty()
        && !t.starts_with('#')
        && !t.contains(['{', '}', '='])
        && t.contains('(')
        && t.ends_with(')')
        && t.as_bytes()[0].is_ascii_alphanumeric()
}

/// Bumps the first `(cost)` group on the line by `delta`. Numeric
/// costs are bumped in place; symbolic expressions (`DEMAND`,
/// `HOURLY*4`) get `+delta` appended — the grammar is
/// `expr := term (('+'|'-') term)*`.
fn bump_first_cost(line: &str, delta: u64) -> Option<String> {
    let open = line.find('(')?;
    let close = line[open..].find(')')? + open;
    let expr = line[open + 1..close].trim();
    if expr.is_empty() {
        return None;
    }
    let bumped = match expr.parse::<u64>() {
        Ok(n) => format!("{}", n + delta),
        Err(_) => format!("{expr}+{delta}"),
    };
    Some(format!("{}({bumped}){}", &line[..open], &line[close + 1..]))
}

/// The cold oracle: the full pipeline over the bytes currently on
/// disk, under the same options the daemon serves with.
fn cold_pipeline(paths: &[PathBuf], options: &Options) -> (pathalias_core::Printed, PointToPoint) {
    let mut parsed = Parsed::new();
    parsed.push_files(paths).unwrap();
    let frozen = parsed.build(options).unwrap().freeze();
    let mapped = frozen.map(options).unwrap();
    let printed = mapped.print(options);
    let engine = PointToPoint::new(mapped.tree.frozen().clone(), options.cost_model);
    (printed, engine)
}

/// Every visible plain-host route the daemon serves must match the
/// cold pipeline's table, and a sample of `PATH` answers must match
/// the cold engine.
fn assert_daemon_matches_cold(
    client: &mut Client,
    paths: &[PathBuf],
    options: &Options,
    home: &str,
) {
    let (printed, engine) = cold_pipeline(paths, options);
    let mut path_checked = 0;
    for entry in printed.routes.visible() {
        if entry.name.starts_with('.') || entry.kind != RouteKind::Host {
            continue;
        }
        let served = client
            .query(&entry.name, Some("u"))
            .unwrap()
            .unwrap_or_else(|| panic!("daemon lost the route to {}", entry.name));
        assert_eq!(
            served,
            entry.route.replacen("%s", "u", 1),
            "route to {} diverged from the cold pipeline",
            entry.name
        );
        if path_checked < 5 && entry.name != home {
            if let Ok(answer) = engine.route(home, &entry.name) {
                let info = client
                    .path(home, &entry.name)
                    .unwrap()
                    .expect("cold engine routes but daemon PATH does not");
                assert_eq!(
                    info.route, answer.route,
                    "PATH {home} {} diverged from the cold engine",
                    entry.name
                );
                path_checked += 1;
            }
        }
    }
    assert!(path_checked > 0, "no PATH answers were compared");
}

/// The HEALTH generation counter.
fn generation(client: &mut Client) -> u64 {
    client
        .health()
        .unwrap()
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("generation="))
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn daemon_delta_reload_is_byte_identical_end_to_end() {
    let gen = generate(&MapSpec::small(300, 7));
    let dir = temp_dir("e2e");
    let paths = write_world(&dir, &gen.files);
    let options = Options {
        local: Some(gen.home.clone()),
        ..Default::default()
    };
    let source = MapSource::map_files(paths.clone(), options.clone());
    let MapSource::Map { cache, .. } = &source else {
        unreachable!()
    };
    let cache = cache.clone();

    let handle = Server::start(ServerConfig::ephemeral(source)).unwrap();
    let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();
    client.negotiate().unwrap();
    assert_daemon_matches_cold(&mut client, &paths, &options, &gen.home);

    // Walk candidate one-cost edits until one is absorbed by the delta
    // path. Along the way every reload — fallback or delta — must stay
    // byte-identical to the cold pipeline, and every RELOAD must bump
    // the generation the daemon reports.
    let mut tried = 0;
    'hunt: for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        for line in text.lines() {
            if !is_plain_cost_line(line) {
                continue;
            }
            let Some(edited_line) = bump_first_cost(line, 3) else {
                continue;
            };
            let before_deltas = cache.delta_reloads();
            let before_gen = generation(&mut client);
            let edited = std::fs::read_to_string(path)
                .unwrap()
                .replacen(line, &edited_line, 1);
            std::fs::write(path, edited).unwrap();
            client.reload().unwrap();
            assert_eq!(
                generation(&mut client),
                before_gen + 1,
                "RELOAD must bump the generation"
            );
            assert_daemon_matches_cold(&mut client, &paths, &options, &gen.home);
            tried += 1;
            if cache.delta_reloads() > before_deltas {
                break 'hunt;
            }
            assert!(tried < 60, "no edit took the delta path after 60 tries");
        }
    }
    assert!(
        cache.delta_reloads() > 0,
        "the delta path never fired on a mapgen world"
    );

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn patching_a_frozen_stage_drops_its_derived_sections() {
    // A contraction hierarchy is cost-dependent: serving yesterday's
    // hierarchy over today's costs answers PATH queries wrongly. The
    // frozen stage therefore drops the hierarchy (and the transpose)
    // when rows are patched, and the engines rebuild from the patched
    // graph.
    let mut parsed = Parsed::new();
    parsed.push_str("map", "hub\ta(10), b(12)\na\tx(20)\nb\tx(20)\nx\ty(5)\n");
    let options = Options {
        local: Some("hub".into()),
        ..Default::default()
    };
    let frozen = parsed.build(&options).unwrap().freeze();
    let g = frozen.graph().clone();
    let mut weights: Vec<Cost> = vec![0; g.edge_count()];
    for id in g.node_ids() {
        for e in g.out_edges(id) {
            weights[e.index()] = g.edge_cost(e);
        }
    }
    let frozen = frozen.with_hierarchy(Arc::new(ChIndex::build(&g, &weights)));
    assert!(frozen.hierarchy().is_some());

    // Patch a's row: x now costs 1 through a.
    let a = g.id_of("a").unwrap();
    let mut edges = Vec::new();
    for e in g.out_edges(a) {
        edges.push((g.edge_target(e), 1, g.edge_op(e), g.edge_flags(e)));
    }
    let (patched, _shift) =
        frozen.with_rows_replaced(&[pathalias_core::RowPatch { node: a, edges }]);
    assert!(
        patched.hierarchy().is_none(),
        "a stale hierarchy must not survive a cost change"
    );
    assert!(patched.reverse_index().is_none());

    // Engines rebuilt over the patched graph agree with each other and
    // see the new cost — no stale shortcut answers.
    let plain = PointToPoint::new(patched.graph().clone(), options.cost_model);
    let with_ch = PointToPoint::with_fresh_hierarchy(patched.graph().clone(), options.cost_model);
    let a1 = plain.route("hub", "x").unwrap();
    let a2 = with_ch.route("hub", "x").unwrap();
    assert_eq!(a1.route, a2.route);
    assert_eq!(a1.cost, a2.cost);
    assert_eq!(a1.route, "a!x!%s", "the cheapened link must win");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Random single-cost edits to a mapgen world: whatever path the
    /// reload takes, the served table must be byte-identical to the
    /// cold pipeline over the same bytes.
    #[test]
    fn random_cost_edits_keep_serving_byte_identical(
        pick in 0usize..10_000,
        delta in 1u64..60,
        seed in 0u64..4,
    ) {
        let gen = generate(&MapSpec::small(120, 11 + seed));
        let dir = temp_dir(&format!("prop-{pick}-{delta}-{seed}"));
        let paths = write_world(&dir, &gen.files);
        let options = Options {
            local: Some(gen.home.clone()),
            ..Default::default()
        };
        let source = MapSource::map_files(paths.clone(), options.clone());
        let (resolver, _, _) = source.load_serving_timed().unwrap();
        drop(resolver);

        // Pick the `pick`-th editable line, modulo how many there are.
        let mut candidates = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let text = std::fs::read_to_string(p).unwrap();
            for line in text.lines() {
                if is_plain_cost_line(line) && bump_first_cost(line, delta).is_some() {
                    candidates.push((i, line.to_string()));
                }
            }
        }
        prop_assert!(!candidates.is_empty());
        let (file_idx, line) = &candidates[pick % candidates.len()];
        let edited_line = bump_first_cost(line, delta).unwrap();
        let path = &paths[*file_idx];
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::write(path, text.replacen(line.as_str(), &edited_line, 1)).unwrap();

        // Reload (delta or fallback — the property holds either way)
        // and compare the whole served table against the cold oracle.
        let (resolver, engine, _) = source.load_serving_timed().unwrap();
        let (printed, cold_engine) = cold_pipeline(&paths, &options);
        let cold_db = pathalias_mailer::RouteDb::from_table(&printed.routes);
        prop_assert_eq!(resolver.entries(), cold_db.len());
        for entry in cold_db.iter() {
            let served = resolver.resolve(&entry.name, "u").unwrap();
            prop_assert_eq!(
                &served.route,
                &entry.route.replacen("%s", "u", 1),
                "route to {} diverged", entry.name
            );
        }
        let engine = engine.unwrap();
        let mut compared = 0;
        for entry in printed.routes.visible() {
            if entry.name.starts_with('.') || entry.name == gen.home {
                continue;
            }
            if let Ok(answer) = cold_engine.route(&gen.home, &entry.name) {
                let served = engine.route(&gen.home, &entry.name).unwrap();
                prop_assert_eq!(&served.route, &answer.route, "PATH to {}", entry.name);
                prop_assert_eq!(served.cost, answer.cost);
                compared += 1;
                if compared >= 8 {
                    break;
                }
            }
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
