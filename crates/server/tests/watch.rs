//! `--watch`: the mtime-polling auto-reload thread.

use pathalias_server::{Client, Level, Logger, MapSource, Server, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pathalias-watch-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    p
}

/// Polls the daemon's HEALTH line until the table generation advances
/// past `from`, or the deadline strikes.
fn wait_for_generation(client: &mut Client, from: u64, deadline: Duration) -> u64 {
    let start = Instant::now();
    loop {
        let health = client.health().expect("health");
        // "200 generation=N entries=M"
        let generation: u64 = health
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("generation="))
            .expect("generation field")
            .parse()
            .expect("generation number");
        if generation > from {
            return generation;
        }
        assert!(
            start.elapsed() < deadline,
            "no auto-reload within {deadline:?} (still at generation {generation})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn file_change_triggers_auto_reload() {
    let routes_path = temp("auto.routes");
    std::fs::write(&routes_path, "seismo\tseismo!%s\n").unwrap();

    let mut config = ServerConfig::ephemeral(MapSource::Routes(routes_path.clone()));
    config.watch = Some(Duration::from_millis(50));
    let handle = Server::start(config).unwrap();
    let addr = handle.tcp_addr().unwrap();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.query("seismo", Some("rick")).unwrap().unwrap(),
        "seismo!rick"
    );
    assert_eq!(client.query("ihnp4", None).unwrap(), None);

    // Rewrite the source file; the watcher must notice and swap the
    // table in without any RELOAD request.
    std::fs::write(&routes_path, "seismo\tseismo!%s\nihnp4\tihnp4!%s\n").unwrap();
    wait_for_generation(&mut client, 0, Duration::from_secs(10));
    assert_eq!(
        client.query("ihnp4", Some("honey")).unwrap().unwrap(),
        "ihnp4!honey"
    );

    // A broken rewrite must not take the old table down.
    std::fs::write(&routes_path, "garbage-without-a-tab\n").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        client.query("seismo", Some("rick")).unwrap().unwrap(),
        "seismo!rick",
        "failed auto-reload keeps the old table serving"
    );

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(routes_path).unwrap();
}

#[test]
fn watcher_exits_on_shutdown() {
    let routes_path = temp("drain.routes");
    std::fs::write(&routes_path, "a\ta!%s\n").unwrap();
    let mut config = ServerConfig::ephemeral(MapSource::Routes(routes_path.clone()));
    config.watch = Some(Duration::from_secs(3600)); // Far longer than the test.
    let handle = Server::start(config).unwrap();
    let start = Instant::now();
    // shutdown() joins every background thread, including the watcher;
    // it must return promptly despite the huge interval.
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "watcher blocked shutdown for {:?}",
        start.elapsed()
    );
    std::fs::remove_file(routes_path).unwrap();
}

#[test]
fn unreadable_fingerprint_is_logged_and_recovers() {
    // An unreadable watched file must not be silently skipped forever:
    // the watcher logs a rate-limited `watch_fingerprint_failed` event
    // while the failure persists, keeps serving the old table, and
    // picks changes back up once the file reappears.
    let routes_path = temp("fpfail.routes");
    std::fs::write(&routes_path, "seismo\tseismo!%s\n").unwrap();

    let (logger, buf) = Logger::capture(Level::Warn);
    let mut config = ServerConfig::ephemeral(MapSource::Routes(routes_path.clone()));
    config.watch = Some(Duration::from_millis(50));
    config.logger = logger;
    let handle = Server::start(config).unwrap();
    let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();

    std::fs::remove_file(&routes_path).unwrap();
    let start = Instant::now();
    loop {
        if buf.lock().unwrap().contains("watch_fingerprint_failed") {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "no watch_fingerprint_failed event was logged"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The old table keeps serving while the file is gone.
    assert_eq!(
        client.query("seismo", Some("rick")).unwrap().unwrap(),
        "seismo!rick"
    );

    // The file returns with new content: the watcher must recover and
    // auto-reload it.
    let generation_before = {
        let health = client.health().unwrap();
        health
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("generation="))
            .unwrap()
            .parse()
            .unwrap()
    };
    std::fs::write(
        &routes_path,
        "seismo\tseismo!%s\nbeehive\tseismo!beehive!%s\n",
    )
    .unwrap();
    wait_for_generation(&mut client, generation_before, Duration::from_secs(10));
    assert_eq!(
        client.query("beehive", Some("rick")).unwrap().unwrap(),
        "seismo!beehive!rick"
    );

    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(routes_path).unwrap();
}
