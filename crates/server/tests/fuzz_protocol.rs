//! Fuzz-style robustness properties for the protocol v2 line parser:
//! arbitrary input must never panic — only parse or error — and the
//! v1/v2 split must stay coherent under fire. The dedicated CI fuzz
//! job cranks `PROPTEST_CASES` well past the local default.

use pathalias_server::{parse_request, ProtoVersion, Request, Response};
use proptest::prelude::*;

const BOTH: [ProtoVersion; 2] = [ProtoVersion::V1, ProtoVersion::V2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(512))]

    /// Fully arbitrary printable text: the parser returns Ok or Err,
    /// never panics, at either protocol version.
    #[test]
    fn parser_never_panics(line in "\\PC{0,300}") {
        for proto in BOTH {
            let _ = parse_request(&line, proto);
        }
    }

    /// Fully arbitrary *bytes*, decoded lossily exactly as the daemon
    /// decodes what `read_bounded_line` hands it: never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let line = String::from_utf8_lossy(&bytes);
        for proto in BOTH {
            let _ = parse_request(&line, proto);
        }
    }

    /// Soup drawn from the protocol's own alphabet (verb fragments,
    /// `@` qualifiers, `:` pairs, odd whitespace) — the inputs most
    /// likely to trip the tokenizer. Also pins the v1/v2 relation: a
    /// line without `@` that parses at v1 parses identically at v2.
    #[test]
    fn protocol_alphabet_soup(line in "[ \tA-Za-z0-9@:.!%,=_-]{0,160}") {
        let v1 = parse_request(&line, ProtoVersion::V1);
        let v2 = parse_request(&line, ProtoVersion::V2);
        if !line.contains('@') {
            if let Ok(req) = &v1 {
                prop_assert_eq!(
                    v2.as_ref().expect("v1-parseable, @-free lines parse at v2"),
                    req
                );
            }
        }
        // Parse errors are protocol payloads (they go out in a 400
        // line) — they must never break framing.
        for result in [v1, v2] {
            if let Err(why) = result {
                prop_assert!(!why.contains('\n') && !why.contains('\r'));
            }
        }
    }

    /// A well-formed qualified QUERY parses to its parts at v2 — and
    /// at v1 the `@` token is an ordinary argument, byte-compatibly.
    #[test]
    fn qualified_query_round_trip(
        map in "[a-zA-Z][a-zA-Z0-9._-]{0,15}",
        host in "[a-z][a-z0-9.-]{0,30}",
        user in proptest::collection::vec("[a-z][a-z0-9]{0,10}", 0..2),
    ) {
        let user = user.first().cloned();
        let line = match &user {
            Some(u) => format!("QUERY @{map} {host} {u}"),
            None => format!("QUERY @{map} {host}"),
        };
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V2).unwrap(),
            Request::Query { map: Some(map.clone()), host: host.clone(), user: user.clone() }
        );
        // v1: `@map` is the host, `host` the user; a third token is a
        // trailing argument — exactly what the PR-2 parser did.
        match user {
            Some(u) => prop_assert_eq!(
                parse_request(&line, ProtoVersion::V1).unwrap_err(),
                format!("trailing argument `{u}`")
            ),
            None => prop_assert_eq!(
                parse_request(&line, ProtoVersion::V1).unwrap(),
                Request::Query {
                    map: None,
                    host: format!("@{map}"),
                    user: Some(host.clone()),
                }
            ),
        }
    }

    /// A qualified MQUERY pins its map and keeps token order, whatever
    /// the mix of `host` and `host:user` tokens.
    #[test]
    fn qualified_mquery_round_trip(
        map in "[a-zA-Z][a-zA-Z0-9._-]{0,15}",
        pairs in proptest::collection::vec(
            ("[a-z][a-z0-9.-]{0,20}", proptest::collection::vec("[a-z][a-z0-9]{0,8}", 0..2)),
            1..12,
        ),
    ) {
        let mut line = format!("MQUERY @{map}");
        let mut expect = Vec::new();
        for (host, user) in &pairs {
            let user = user.first().cloned();
            line.push(' ');
            line.push_str(host);
            if let Some(u) = &user {
                line.push(':');
                line.push_str(u);
            }
            expect.push((host.clone(), user));
        }
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V2).unwrap(),
            Request::MultiQuery { map: Some(map), queries: expect }
        );
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V1).unwrap_err(),
            "unknown verb `MQUERY`".to_string()
        );
    }

    /// A `PATH` line (qualified or not, `*` or named source) parses
    /// to its parts at v2 and stays an unknown verb at v1.
    #[test]
    fn path_round_trip(
        map in proptest::collection::vec("[a-zA-Z][a-zA-Z0-9._-]{0,15}", 0..2),
        src in prop_oneof![Just("*".to_string()), "[a-z][a-z0-9.-]{0,20}"],
        dst in "[a-z][a-z0-9.-]{0,30}",
    ) {
        let map = map.first().cloned();
        let line = match &map {
            Some(m) => format!("PATH @{m} {src} {dst}"),
            None => format!("PATH {src} {dst}"),
        };
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V2).unwrap(),
            Request::Path { map: map.clone(), src: src.clone(), dst: dst.clone() }
        );
        prop_assert_eq!(
            parse_request(&line, ProtoVersion::V1).unwrap_err(),
            "unknown verb `PATH`".to_string()
        );
        // Arity is exact: a trailing token is an error, not a silent
        // extra destination.
        prop_assert!(parse_request(&format!("{line} extra"), ProtoVersion::V2).is_err());
        prop_assert!(parse_request("PATH", ProtoVersion::V2).is_err());
        prop_assert!(parse_request(&format!("PATH {src}"), ProtoVersion::V2).is_err());
    }

    /// Whatever a `Path` or `Via` response carries, the rendered wire
    /// line stays one `200 `-prefixed line — framing never breaks.
    #[test]
    fn path_responses_render_one_line(
        map in proptest::collection::vec("[a-zA-Z][a-zA-Z0-9._-]{0,15}", 0..2),
        cost in any::<u64>(),
        hops in any::<u32>(),
        route in "\\PC{0,60}",
        entries in proptest::collection::vec(("\\PC{0,20}", any::<u64>()), 0..6),
    ) {
        let map = map.first().cloned();
        let dst = route.clone();
        for rendered in [
            Response::Path { map: map.clone(), cost, hops, route }.to_string(),
            Response::Via { map, dst, entries }.to_string(),
        ] {
            prop_assert!(rendered.starts_with("200 "));
            prop_assert!(!rendered.contains('\n') && !rendered.contains('\r'));
        }
    }

    /// Whatever ends up in a `Maps` response payload, the rendered
    /// line stays one line with its status code.
    #[test]
    fn maps_response_renders_one_line(
        names in proptest::collection::vec("\\PC{0,20}", 0..6),
        default in "\\PC{0,20}",
    ) {
        let rendered = Response::Maps { names, default }.to_string();
        prop_assert!(rendered.starts_with("200 "));
        prop_assert!(!rendered.contains('\n') && !rendered.contains('\r'));
    }
}
