//! Parity: a `PATH src dst` answer must be byte-identical to the
//! mapper tree the daemon would print from `src` — same cost, hops,
//! predecessor chain, state flags, and route string — for every
//! destination, on every map, from any source. The uni-directional
//! oracle, the pruned bidirectional search, and the contraction-
//! hierarchy tier must all agree with each other exactly.

use pathalias_graph::{FrozenGraph, NodeId};
use pathalias_mapgen::{generate, MapSpec};
use pathalias_mapper::{map_frozen, map_frozen_readonly, CostModel, MapOptions};
use pathalias_printer::compute_routes;
use pathalias_router::{PointToPoint, RouteError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds the serving world the daemon would hold: the home tree's
/// augmented snapshot (invented back links included), a plain
/// bidirectional engine, and a hierarchy-carrying engine over that
/// same graph.
fn serving_world(text: &str, home: &str) -> (Arc<FrozenGraph>, PointToPoint, PointToPoint) {
    let g = pathalias_parser::parse(text).expect("map parses");
    let src = g.try_node(home).expect("home exists");
    let f = Arc::new(g.freeze());
    let tree = map_frozen(&f, src, &MapOptions::default()).expect("home maps");
    let aug = tree.frozen().clone();
    let engine = PointToPoint::new(aug.clone(), CostModel::default());
    let ch_engine = PointToPoint::with_fresh_hierarchy(aug.clone(), CostModel::default());
    assert!(
        ch_engine.hierarchy().is_some(),
        "freshly built hierarchy passes the engine's consistency gate"
    );
    (aug, engine, ch_engine)
}

/// Checks every destination whose id satisfies the stride filter
/// against a fresh mapper tree rooted at `src` over the same graph:
/// mapped nodes must produce identical answers (including the printed
/// route), unreached nodes must produce `NoRoute`, and the
/// bidirectional and uni-directional searches must agree bit-for-bit.
fn assert_parity_from(
    aug: &Arc<FrozenGraph>,
    engine: &PointToPoint,
    ch_engine: &PointToPoint,
    src: NodeId,
    stride: u32,
) {
    if !aug.is_mappable(src) {
        let dst = aug.node_ids().next().expect("non-empty graph");
        assert_eq!(engine.route_ids(src, dst), Err(RouteError::DeletedSource));
        assert_eq!(
            ch_engine.route_ids(src, dst),
            Err(RouteError::DeletedSource)
        );
        return;
    }
    let tree = map_frozen_readonly(aug, src, &MapOptions::default()).expect("tree maps");
    let table = compute_routes(&tree);
    let routes: HashMap<NodeId, _> = table.entries.iter().map(|r| (r.node, r)).collect();

    for dst in aug.node_ids() {
        if dst.raw() % stride != src.raw() % stride {
            continue;
        }
        let bidi = engine.route_ids(src, dst);
        let uni = engine.route_ids_unidirectional(src, dst);
        assert_eq!(bidi, uni, "bidirectional vs oracle for {}", aug.name(dst));
        let ch = ch_engine.route_ids(src, dst);
        assert_eq!(ch, bidi, "CH tier vs bidirectional for {}", aug.name(dst));

        match tree.label(dst) {
            None => assert_eq!(bidi, Err(RouteError::NoRoute)),
            Some(label) => {
                let a = bidi
                    .unwrap_or_else(|e| panic!("engine missed mapped node {}: {e}", aug.name(dst)));
                assert_eq!(a.cost, label.cost, "cost for {}", aug.name(dst));
                assert_eq!(a.hops, label.hops, "hops for {}", aug.name(dst));
                assert_eq!(a.via_domain, label.tainted);
                assert_eq!(a.via_backlink, label.via_backlink);
                assert_eq!(a.ambiguous, label.ambiguous);

                // The predecessor chain, node for node and edge for
                // edge (this is what makes the route string match).
                let mut chain_nodes = vec![dst];
                let mut chain_edges = Vec::new();
                let mut cur = dst;
                while let Some((p, e)) = tree.label(cur).and_then(|l| l.pred) {
                    chain_nodes.push(p);
                    chain_edges.push(e);
                    cur = p;
                }
                chain_nodes.reverse();
                chain_edges.reverse();
                assert_eq!(a.nodes, chain_nodes, "node chain for {}", aug.name(dst));
                assert_eq!(a.edges, chain_edges, "edge chain for {}", aug.name(dst));

                // The printed route and name, against the printer's
                // whole-tree traversal.
                let r = routes.get(&dst).expect("mapped node has a route entry");
                assert_eq!(a.route, r.route, "route for {}", aug.name(dst));
                assert_eq!(a.name, r.name, "name for {}", aug.name(dst));
            }
        }
    }
}

/// Hand-written maps exercising each cost-model rule the search must
/// replicate: operators on both sides, networks with gateways,
/// domains (taint + name synthesis), aliases, dead hosts and links,
/// `adjust` (raw-cost source exemption), `delete`, duplicate links,
/// and back-link territory.
const CORPUS: &[(&str, &str)] = &[
    ("chain", "a b(10)\nb c(20)\nc d(30)\na d(100)\n"),
    (
        "operators",
        "home duke(500), research(1000)\nduke @mit-ai(95)\nresearch ucbvax(300)\nucbvax @mit-ai(95)\n",
    ),
    (
        "networks",
        "u ucbvax(300)\nARPA = @{mit-ai, ucbvax}(95)\nmit-ai next(50)\n",
    ),
    (
        "domains",
        "u seismo(100)\nseismo .edu(95)\n.edu = {.rutgers}(0)\n.rutgers = {caip}(0)\ncaip deep(10)\n",
    ),
    (
        "aliases",
        "a princeton(100)\nprinceton = fun\nfun z(10)\nz tail(5)\n",
    ),
    (
        "dead-and-adjust",
        "h relay(50)\nrelay far(50)\nh shortcut(10)\nshortcut far(10)\ndead {shortcut}\nadjust {relay(-20)}\nfar beyond(5)\n",
    ),
    (
        "delete-and-duplicates",
        "s x(100)\ns x(40)\nx y(10)\ns y(200)\ns gone(5)\ngone y(1)\ndelete {gone}\n",
    ),
    (
        "backlinks",
        "core a(10)\nleaf a(25)\nleaf b(30)\n",
    ),
    (
        "gated",
        "g inner(10)\ngated {NET}\nNET = {inner(5), outer(5)}\nouter far(10)\ng far(9000)\n",
    ),
];

#[test]
fn corpus_parity_from_home() {
    for (tag, text) in CORPUS {
        let home = text.split_whitespace().next().unwrap();
        let (aug, engine, ch_engine) = serving_world(text, home);
        let src = aug.id_of(home).expect("home survives freezing");
        assert_parity_from(&aug, &engine, &ch_engine, src, 1);
        let _ = tag;
    }
}

#[test]
fn corpus_parity_from_every_endpoint() {
    for (_tag, text) in CORPUS {
        let home = text.split_whitespace().next().unwrap();
        let (aug, engine, ch_engine) = serving_world(text, home);
        // Every node takes a turn as the query source — including
        // deleted ones (refused) and nets/domains.
        for src in aug.node_ids() {
            assert_parity_from(&aug, &engine, &ch_engine, src, 1);
        }
    }
}

#[test]
fn via_lists_one_hop_predecessors() {
    let text = "h a(10)\nh b(20)\na z(5)\nb z(7)\nb z(3)\nh z(100)\n";
    let (aug, engine, _ch) = serving_world(text, "h");
    let vias = engine.via("z").expect("z exists");
    // Brute force from the forward side: every tail with an edge to z,
    // cheapest folded edge cost.
    let z = aug.id_of("z").unwrap();
    let mut expect: Vec<(NodeId, u64)> = Vec::new();
    for u in aug.node_ids() {
        let best = aug
            .out_edges(u)
            .filter(|&e| aug.edge_target(e) == z)
            .map(|e| aug.edge_cost(e))
            .min();
        if let Some(c) = best {
            expect.push((u, c));
        }
    }
    expect.sort_by_key(|&(n, _)| n);
    let got: Vec<(NodeId, u64)> = vias.iter().map(|v| (v.node, v.cost)).collect();
    assert_eq!(got, expect);
    assert_eq!(
        engine.via("nonesuch"),
        Err(RouteError::UnknownDest("nonesuch".to_string()))
    );
}

#[test]
fn name_resolution_errors() {
    let (_aug, engine, _ch) = serving_world("a b(10)\n", "a");
    assert!(matches!(
        engine.route("nope", "b"),
        Err(RouteError::UnknownSource(_))
    ));
    assert!(matches!(
        engine.route("a", "nope"),
        Err(RouteError::UnknownDest(_))
    ));
    assert_eq!(engine.route("a", "b").unwrap().route, "b!%s");
}

#[test]
fn qualified_domain_member_names_resolve() {
    // Nested domains: `deep` is a member of `.relay`, itself a member
    // of `.edu` — the printer keys it as `deep.relay.edu`, so PATH
    // must accept every name QUERY serves from the printed table.
    let text = "h gw(10)\ngw .edu(5)\n.edu = {.relay}(0)\n.relay = {deep, other}(0)\n";
    let (aug, engine, _ch) = serving_world(text, "h");
    let deep = aug.id_of("deep").unwrap();
    let exact = engine.route_ids(aug.id_of("h").unwrap(), deep).unwrap();
    let by_name = engine.route("h", "deep.relay.edu").unwrap();
    assert_eq!(by_name, exact);
    assert_eq!(by_name.name, "deep.relay.edu");
    // The nested domain's own printed name resolves to the domain node.
    assert_eq!(
        engine.route("h", ".relay.edu").unwrap().nodes.last(),
        Some(&aug.id_of(".relay").unwrap())
    );
    // `PATH * dst` accepts the same qualified spelling.
    assert_eq!(engine.via("deep.relay.edu"), engine.via("deep"));
    // Suffix matches alone don't resolve: `gw` is not a member of
    // `.edu`, and `deep` is not a *direct* member of it either.
    assert!(matches!(
        engine.route("h", "gw.edu"),
        Err(RouteError::UnknownDest(_))
    ));
    assert!(matches!(
        engine.route("h", "deep.edu"),
        Err(RouteError::UnknownDest(_))
    ));
}

/// Deterministically appends `adjust` and `delete` statements over the
/// generated hosts so bias folding, the raw-cost source exemption, and
/// node dropping are exercised even where the generator is gentle.
fn with_admin_statements(base: &str, home: &str, seed: u64) -> String {
    let g = pathalias_parser::parse(base).expect("base parses");
    let mut hosts: Vec<&str> = g
        .node_ids()
        .filter(|&id| {
            let n = g.node_ref(id);
            !n.is_net() && g.name(id) != home
        })
        .map(|id| g.name(id))
        .collect();
    hosts.sort_unstable();
    let mut extra = String::from("file { admin }\n");
    for (i, host) in hosts.iter().enumerate() {
        match (i as u64 + seed) % 17 {
            0 => extra.push_str(&format!(
                "adjust {{{host}({})}}\n",
                (seed % 900) as i64 - 300
            )),
            5 => extra.push_str(&format!("delete {{{host}}}\n")),
            _ => {}
        }
    }
    format!("{base}{extra}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(8))]

    /// Generated worlds — cliques (networks), chains, domains, dead
    /// hosts, aliases, injected `adjust`/`delete` — answer identically
    /// from the home and from pseudo-random other endpoints.
    #[test]
    fn generated_worlds_parity(
        hosts in 40usize..120,
        seed in 0u64..10_000,
    ) {
        let map = generate(&MapSpec::small(hosts, seed));
        let text = with_admin_statements(&map.concatenated(), &map.home, seed);
        let (aug, engine, ch_engine) = serving_world(&text, &map.home);
        let home = aug.id_of(&map.home).expect("home survives");
        assert_parity_from(&aug, &engine, &ch_engine, home, 1);
        // Two more endpoints' perspectives, seed-chosen.
        let n = aug.node_count() as u64;
        for k in 1..3u64 {
            let src = NodeId::from_raw(((seed * 7 + k * 13) % n) as u32);
            assert_parity_from(&aug, &engine, &ch_engine, src, 1);
        }
    }
}

/// The paper-scale world: full parity from the home on a sampled
/// destination set, and the pruner must actually prune.
#[test]
fn paper_scale_parity_and_pruning() {
    let map = generate(&MapSpec::usenet_1986(1986));
    let (aug, engine, ch_engine) = serving_world(&map.concatenated(), &map.home);
    let home = aug.id_of(&map.home).expect("home survives");
    assert_parity_from(&aug, &engine, &ch_engine, home, 97);
    // A second perspective from an arbitrary mid-map host.
    let other = NodeId::from_raw((aug.node_count() / 2) as u32);
    assert_parity_from(&aug, &engine, &ch_engine, other, 211);

    // The bidirectional search must do strictly less forward work
    // than the oracle somewhere on a map this size.
    let mut saw_pruning = false;
    for dst in aug.node_ids().filter(|d| d.raw() % 631 == 5) {
        if let Ok((_, stats)) = engine.route_ids_with_stats(home, dst) {
            if stats.pruned > 0 {
                saw_pruning = true;
                break;
            }
        }
    }
    assert!(
        saw_pruning,
        "lower-bound pruning never fired on the paper-scale map"
    );

    // The CH tier must actually answer (certify) on a map this size —
    // if every query fell back, the hierarchy would be dead weight.
    let mut tried = 0u32;
    let mut certified = 0u32;
    for dst in aug.node_ids().filter(|d| d.raw() % 631 == 5) {
        if let Ok((_, stats)) = ch_engine.route_ids_with_stats(home, dst) {
            assert!(stats.tried_ch, "engine carries a hierarchy");
            tried += 1;
            certified += u32::from(stats.ch_certified);
        }
    }
    assert!(
        tried > 0 && certified > 0,
        "CH tier certified {certified}/{tried} sampled queries — it must win sometimes"
    );
}
