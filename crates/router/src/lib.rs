//! Point-to-point route engine: bidirectional Dijkstra over the
//! frozen CSR.
//!
//! The mapper (`pathalias-mapper`) answers "routes from here to
//! everywhere" by building a whole shortest-path tree. This crate
//! answers the other question — "the route from *src* to *dst*" —
//! without materializing a tree: a forward Dijkstra from `src` runs
//! until it settles `dst`, and a backward lower-bound Dijkstra from
//! `dst` over the reverse CSR ([`pathalias_graph::ReverseGraph`])
//! prunes the forward frontier so most of the graph is never touched.
//!
//! The contract is **byte-for-byte parity** with the mapper: the cost,
//! visible-hop count, predecessor chain, and printed route of a
//! `PATH src dst` answer are identical to what the daemon would serve
//! from the shortest-path tree rooted at `src`. That makes the engine
//! safe to serve next to tree-backed resolvers — two code paths, one
//! answer. The parity is enforced three ways: the forward side reuses
//! the mapper's relaxation arithmetic and tie-breaking verbatim; each
//! pruned run *certifies* that no dropped candidate could have touched
//! the answer's chain, falling back to the plain forward oracle on the
//! rare queries where it cannot (the mapper's state-dependent
//! penalties make it non-optimal, so a cheaper real path is not always
//! proof of safety — see the search module docs); and property tests
//! compare whole answer sets against `map_frozen` trees.
//!
//! ```
//! use pathalias_mapper::CostModel;
//! use pathalias_parser::parse;
//! use pathalias_router::PointToPoint;
//! use std::sync::Arc;
//!
//! let g = parse("a b(10)\nb c(20)\n").unwrap();
//! let f = Arc::new(g.freeze());
//! let engine = PointToPoint::new(f, CostModel::default());
//! let answer = engine.route("a", "c").unwrap();
//! assert_eq!(answer.cost, 30);
//! assert_eq!(answer.route, "b!c!%s");
//! ```
//!
//! For serving, build the engine over the *augmented* graph of a
//! mapped tree (`tree.frozen()`), which includes the invented
//! back links — then `PATH home X` agrees with the printed map
//! exactly, and any other source on the same topology is equally
//! well-defined.
//!
//! # The contraction-hierarchy tier
//!
//! On top of the bidirectional search sits an optional fast tier: a
//! [`pathalias_graph::ChIndex`] built (at freeze time, or by
//! [`PointToPoint::with_fresh_hierarchy`]) over [`ch_weights`] — a
//! *source-independent lower bound* on the mapper's per-edge charge.
//! A query first meets in the middle over the hierarchy's shortcut
//! halves; the meeting path is unpacked to concrete edges and
//! re-costed under full forward semantics, and the exact forward
//! search then runs pruned by per-node hierarchy distances. The
//! certification rule is unchanged, so a certified CH answer is
//! byte-identical to the oracle's; uncertified runs (including any
//! query the hierarchy cannot meet on) drop to the bidirectional
//! tier, then to the oracle. The hierarchy never *answers* — it only
//! decides what the exact search may skip — so `PATH` parity survives
//! even a hierarchy missing shortcuts; see `pathalias_graph::ch` for
//! the trust model.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod route;
mod search;

pub use engine::{PointToPoint, RouteError, ViaEntry};
pub use route::PathAnswer;
pub use search::{ch_weights, SearchStats};
