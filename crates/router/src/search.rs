//! The point-to-point searches: the exact-forward oracle and the
//! pruned bidirectional variant.
//!
//! Both produce labels **byte-identical** to the mapper's
//! (`pathalias_mapper::map_frozen_readonly`) on the destination's
//! predecessor chain — same cost, same visible-hop count, same path
//! state bits, same tie-broken predecessors. That is the whole game:
//! a `PATH src dst` answer must agree with the tree the daemon would
//! print from `src`, so this module replicates the mapper's relaxation
//! arithmetic exactly (adjust folding with the raw-cost source
//! exemption, gateway exemptions, the domain relay restriction, dead
//! host/link penalties, mixed-syntax state, and the
//! `(cost, hops, node)` key order with the `(pred, edge)` tie break).
//!
//! # How the bidirectional variant stays exact
//!
//! Classic bidirectional Dijkstra stitches a meeting point and stops
//! when `top_f + top_b >= mu`. That yields the optimal *cost*, but not
//! the mapper's exact label: the path state (hops, syntax bits,
//! tie-broken predecessors) lives only in the forward relaxation. So
//! the bidirectional search here keeps the forward side exact and uses
//! the backward side as a *pruner*:
//!
//! * A backward Dijkstra from `dst` over the reverse CSR computes
//!   `B(v)`, a **lower bound** on the remaining forward cost from `v`
//!   to `dst` (each penalty is included only when it provably applies
//!   to every forward path over that edge — gate and dead penalties
//!   are node/edge properties, the relay penalty applies whenever the
//!   tail is a domain since every forward label at a domain is
//!   tainted; the mixed penalty is state-dependent so it bounds to 0).
//! * `mu` is the cost of the best *concrete* path seen so far:
//!   whenever a forward-labelled node is backward-settled (or vice
//!   versa), the backward chain is re-costed under full forward
//!   semantics from that label. The destination's own tentative
//!   forward label also feeds `mu`.
//! * A forward candidate is dropped — no label write, no heap push —
//!   only when `cand_cost + B(v) > mu`, strictly.
//!
//! # Certification (why optimism is safe)
//!
//! The mapper is a label-*setting* heuristic over state-dependent
//! penalties (the mixed and relay penalties depend on how a path got
//! there), so it is not optimal: a real path can cost less than the
//! mapper's answer when its intermediate label is shadowed by a
//! lower-key label with different syntax state. That means a stitched
//! real-path `mu` may dip below the mapper's final cost `C`, and a
//! prune against it could cut the oracle's chain.
//!
//! The search therefore *certifies* each run. Any candidate that could
//! have influenced the oracle's final answer — created, improved, or
//! tie-rewritten a label ancestral to `dst`'s chain, in either the
//! oracle's run or this one — provably satisfies
//! `cand_cost + B(v) <= answer cost` (its true remaining cost down the
//! answer chain is at least `B(v)`, a global lower bound). So the loop
//! tracks `worst_prune`, the minimum `cand_cost + B(v)` ever pruned:
//!
//! * `worst_prune > answer cost` — no pruned candidate could have
//!   mattered; the labels (and their ties) are exactly the oracle's.
//!   This is the common case: on shadow-free queries `mu` converges to
//!   `C` itself and every prune exceeds it by construction.
//! * otherwise the run is uncertified and the caller falls back to the
//!   forward oracle — correct by construction, merely slower. This
//!   fires exactly when greedy-vs-optimal shadowing is close enough to
//!   the query to matter.
//!
//! The forward side still settles `dst` itself (that is what makes the
//! answer byte-identical); the speedup comes from the frontier the
//! pruning never materializes. The standard `top_f + top_b` bound
//! appears as the backward side's own stopping rule: once `top_b > mu`
//! the backward search can improve nothing and freezes, leaving its
//! last top as the floor bound for every node it never settled.

use pathalias_graph::{
    Cost, Dir, EdgeId, FrozenEdge, FrozenGraph, LinkFlags, NodeFlags, NodeId, ReverseGraph,
};
use pathalias_mapper::CostModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Path-state bits, identical to the mapper's packed run state.
pub(crate) const LABELLED: u8 = 1 << 0;
pub(crate) const HAS_LEFT: u8 = 1 << 1;
pub(crate) const HAS_RIGHT: u8 = 1 << 2;
pub(crate) const TAINTED: u8 = 1 << 3;
pub(crate) const VIA_BACK: u8 = 1 << 4;
pub(crate) const AMBIGUOUS: u8 = 1 << 5;
pub(crate) const MAPPED: u8 = 1 << 6;

/// Backward-side state bits.
const B_LABELLED: u8 = 1 << 0;
const B_SETTLED: u8 = 1 << 1;

/// The source's predecessor sentinel.
pub(crate) const NO_PRED: (u32, u32) = (u32::MAX, u32::MAX);

type Key = u128;

#[inline]
fn pack_key(cost: Cost, hops: u32, node: u32) -> Key {
    ((cost as u128) << 64) | ((hops as u128) << 32) | node as u128
}

/// Backward heap key: cost then node id, so extraction (and therefore
/// the backward tree) is deterministic.
#[inline]
fn pack_bkey(cost: Cost, node: u32) -> Key {
    ((cost as u128) << 32) | node as u128
}

/// Counters from one point-to-point search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Forward heap extractions that settled a node.
    pub settled: u64,
    /// Forward heap insertions.
    pub pushes: u64,
    /// Forward candidates dropped by the lower-bound pruning.
    pub pruned: u64,
    /// Backward (lower-bound) settles.
    pub backward_settled: u64,
    /// The bidirectional run failed certification and the engine
    /// re-ran the forward oracle (see the module docs).
    pub fell_back: bool,
}

/// Reusable search state: dense struct-of-arrays sized to the graph
/// once, then invalidated per query by bumping a generation stamp, so
/// repeated queries allocate nothing (the heaps keep their capacity
/// and are cheap to clear).
pub(crate) struct Scratch {
    generation: u32,
    n: usize,
    // Forward side (the mapper's SoA run state).
    f_key: Vec<Key>,
    f_pred: Vec<(u32, u32)>,
    f_state: Vec<u8>,
    f_stamp: Vec<u32>,
    f_heap: BinaryHeap<Reverse<Key>>,
    // Backward lower-bound side.
    b_dist: Vec<Cost>,
    b_pred: Vec<(u32, u32)>,
    b_state: Vec<u8>,
    b_stamp: Vec<u32>,
    b_heap: BinaryHeap<Reverse<Key>>,
}

impl Scratch {
    pub(crate) fn new() -> Self {
        Scratch {
            generation: 0,
            n: 0,
            f_key: Vec::new(),
            f_pred: Vec::new(),
            f_state: Vec::new(),
            f_stamp: Vec::new(),
            f_heap: BinaryHeap::new(),
            b_dist: Vec::new(),
            b_pred: Vec::new(),
            b_state: Vec::new(),
            b_stamp: Vec::new(),
            b_heap: BinaryHeap::new(),
        }
    }

    /// Starts a new query: size the arrays to the graph (first use
    /// only) and invalidate every slot by bumping the generation.
    fn begin(&mut self, n: usize) {
        if self.n < n {
            self.f_key.resize(n, 0);
            self.f_pred.resize(n, NO_PRED);
            self.f_state.resize(n, 0);
            self.f_stamp.resize(n, 0);
            self.b_dist.resize(n, 0);
            self.b_pred.resize(n, NO_PRED);
            self.b_state.resize(n, 0);
            self.b_stamp.resize(n, 0);
            self.n = n;
        }
        if self.generation == u32::MAX {
            // Generation wrap: one real clear every 2^32 queries.
            self.f_stamp.iter_mut().for_each(|s| *s = 0);
            self.b_stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
        self.f_heap.clear();
        self.b_heap.clear();
    }

    #[inline]
    fn f_live(&self, i: usize) -> bool {
        self.f_stamp[i] == self.generation
    }

    #[inline]
    fn f_state_of(&self, i: usize) -> u8 {
        if self.f_live(i) {
            self.f_state[i]
        } else {
            0
        }
    }

    #[inline]
    fn b_state_of(&self, i: usize) -> u8 {
        if self.b_stamp[i] == self.generation {
            self.b_state[i]
        } else {
            0
        }
    }

    /// The forward predecessor `(node, edge)` of slot `i` — only
    /// meaningful for nodes on the settled chain after a hit.
    #[inline]
    pub(crate) fn pred_of(&self, i: usize) -> (u32, u32) {
        self.f_pred[i]
    }
}

/// Everything the relaxation needs about the tail, mirroring the
/// mapper's `Tail`.
struct TailView {
    u: u32,
    cost: Cost,
    hops: u32,
    state: u8,
    pred_edge: Option<EdgeId>,
    is_domain: bool,
    use_raw: bool,
    dead_extra: Cost,
}

impl TailView {
    fn load(f: &FrozenGraph, model: &CostModel, src: NodeId, s: &Scratch, u: u32) -> TailView {
        let i = u as usize;
        let pred = s.f_pred[i];
        let id = NodeId::from_raw(u);
        let is_source = id == src;
        let uflags = f.flags(id);
        TailView {
            u,
            cost: (s.f_key[i] >> 64) as Cost,
            hops: (s.f_key[i] >> 32) as u32,
            state: s.f_state[i],
            pred_edge: (pred != NO_PRED).then(|| EdgeId::from_raw(pred.1)),
            is_domain: uflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && f.adjust(id) != 0,
            dead_extra: if !is_source && uflags.contains(NodeFlags::DEAD) {
                model.dead_penalty
            } else {
                0
            },
        }
    }
}

/// The mapper's gateway-exemption rule, verbatim.
#[inline]
fn gateway_exempt(tail_is_domain: bool, eflags: LinkFlags, v_is_domain: bool) -> bool {
    eflags.contains(LinkFlags::GATEWAY)
        || eflags.contains(LinkFlags::ALIAS)
        || eflags.contains(LinkFlags::NET_OUT)
        || (eflags.contains(LinkFlags::NET_IN) && v_is_domain && !tail_is_domain)
        || (eflags.is_explicit() && !tail_is_domain)
}

/// The operator side of the visible hop this edge appends, if any
/// (mapper's `visible_dir`).
#[inline]
fn visible_dir(f: &FrozenGraph, tail: &TailView, edge: FrozenEdge) -> Option<Dir> {
    let eflags = edge.flags();
    if eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_IN) {
        return None;
    }
    if eflags.contains(LinkFlags::NET_OUT) {
        let entering = tail
            .pred_edge
            .map(|pe| f.edge(pe).dir())
            .unwrap_or_else(|| edge.dir());
        return Some(entering);
    }
    Some(edge.dir())
}

/// One forward relaxation's arithmetic — the mapper's `relax` with the
/// label bookkeeping factored out, so the search loop and the
/// stitched-path evaluator cost a candidate identically.
#[inline]
fn eval_step(
    f: &FrozenGraph,
    model: &CostModel,
    tail: &TailView,
    e_raw: u32,
    edge: FrozenEdge,
) -> (Cost, u32, u8) {
    let v = edge.to();
    let vflags = f.flags(v);
    let v_is_domain = vflags.contains(NodeFlags::DOMAIN);
    let eflags = edge.flags();

    let base = if tail.use_raw {
        f.edge_raw_cost(EdgeId::from_raw(e_raw))
    } else {
        edge.cost()
    };

    let mut gate = 0;
    let mut relay = 0;
    let mut mixed = 0;
    let mut extra = tail.dead_extra;
    if eflags.contains(LinkFlags::DEAD) {
        extra += model.dead_link_penalty;
    }
    if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
        && !gateway_exempt(tail.is_domain, eflags, v_is_domain)
    {
        gate = model.gate_penalty;
    }
    if tail.state & TAINTED != 0 && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
        relay = model.relay_penalty;
    }

    let vis = visible_dir(f, tail, edge);
    let mut cand_state = (tail.state & !MAPPED) | LABELLED;
    if let Some(dir) = vis {
        match dir {
            Dir::Left => {
                if tail.state & HAS_RIGHT != 0 {
                    mixed = model.mixed_penalty;
                    cand_state |= AMBIGUOUS;
                }
                cand_state |= HAS_LEFT;
            }
            Dir::Right => {
                if model.strict_mixed && tail.state & HAS_LEFT != 0 {
                    mixed = model.mixed_penalty;
                }
                cand_state |= HAS_RIGHT;
            }
        }
    }
    if v_is_domain {
        cand_state |= TAINTED;
    }
    if eflags.contains(LinkFlags::BACK) {
        cand_state |= VIA_BACK;
    }

    let cand_cost = tail
        .cost
        .saturating_add(base)
        .saturating_add(gate)
        .saturating_add(relay)
        .saturating_add(mixed)
        .saturating_add(extra);
    let cand_hops = tail.hops + u32::from(vis.is_some());
    (cand_cost, cand_hops, cand_state)
}

/// The backward side's lower-bound weight for the forward edge
/// `u --e--> v`. Every component is included only when it applies to
/// *all* forward paths crossing the edge, so summing these along any
/// `u ⤳ dst` backward path under-approximates the true remaining
/// forward cost from any label at `u`.
#[inline]
fn lower_bound_weight(
    f: &FrozenGraph,
    model: &CostModel,
    src: NodeId,
    u: NodeId,
    e_raw: u32,
    edge: FrozenEdge,
) -> Cost {
    let uflags = f.flags(u);
    let u_is_domain = uflags.contains(NodeFlags::DOMAIN);
    let v = edge.to();
    let vflags = f.flags(v);
    let v_is_domain = vflags.contains(NodeFlags::DOMAIN);
    let eflags = edge.flags();

    // Exact: the raw-cost source exemption is a property of `u`.
    let base = if u == src && f.adjust(u) != 0 {
        f.edge_raw_cost(EdgeId::from_raw(e_raw))
    } else {
        edge.cost()
    };
    let mut w = base;
    // Exact: dead host/link penalties are node/edge properties.
    if u != src && uflags.contains(NodeFlags::DEAD) {
        w = w.saturating_add(model.dead_penalty);
    }
    if eflags.contains(LinkFlags::DEAD) {
        w = w.saturating_add(model.dead_link_penalty);
    }
    // Exact: the exemption rule only reads node/edge properties.
    if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
        && !gateway_exempt(u_is_domain, eflags, v_is_domain)
    {
        w = w.saturating_add(model.gate_penalty);
    }
    // Every forward label at a domain node is tainted (the source
    // starts tainted if it is a domain; reaching a domain taints), so
    // the relay penalty is exact when `u` is a domain — and only a
    // lower bound (0) otherwise. The mixed penalty is path-state
    // dependent, so it bounds to 0.
    if u_is_domain && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
        w = w.saturating_add(model.relay_penalty);
    }
    w
}

/// The destination's settled label.
pub(crate) struct SearchHit {
    pub cost: Cost,
    pub hops: u32,
    pub state: u8,
}

/// Outcome of a point-to-point search.
pub(crate) struct SearchOutcome {
    /// The destination's label, if reachable.
    pub hit: Option<SearchHit>,
    /// Whether the result is provably identical to the forward
    /// oracle's (always true for the oracle itself). An uncertified
    /// outcome must be discarded and the oracle re-run.
    pub certified: bool,
    pub stats: SearchStats,
}

/// Runs the search from `src` until `dst` is settled (or proven
/// unreachable). With `reverse` the backward pruner runs; without it
/// this is the plain forward oracle. On a hit the destination's
/// predecessor chain is left in `scratch` for the caller to walk.
pub(crate) fn search(
    f: &FrozenGraph,
    reverse: Option<&ReverseGraph>,
    model: &CostModel,
    src: NodeId,
    dst: NodeId,
    scratch: &mut Scratch,
) -> SearchOutcome {
    let n = f.node_count();
    scratch.begin(n);
    let gen = scratch.generation;
    let mut stats = SearchStats::default();

    // Forward init: the mapper's source label.
    let si = src.index();
    scratch.f_stamp[si] = gen;
    scratch.f_key[si] = pack_key(0, 0, src.raw());
    scratch.f_pred[si] = NO_PRED;
    scratch.f_state[si] = LABELLED | if f.is_domain(src) { TAINTED } else { 0 };
    scratch.f_heap.push(Reverse(pack_key(0, 0, src.raw())));
    stats.pushes += 1;

    // Backward init.
    let bidi = reverse.is_some();
    if bidi {
        let di = dst.index();
        scratch.b_stamp[di] = gen;
        scratch.b_dist[di] = 0;
        scratch.b_pred[di] = NO_PRED;
        scratch.b_state[di] = B_LABELLED;
        scratch.b_heap.push(Reverse(pack_bkey(0, dst.raw())));
    }
    // The best concrete path cost seen so far (stitched chains and the
    // destination's own tentative label). Pruning against it is
    // optimistic — the certification below is what makes it safe.
    let mut mu = Cost::MAX;
    // The smallest `cand_cost + B(v)` ever pruned; the run is
    // certified exact iff the answer beats it strictly (module docs).
    let mut worst_prune = Cost::MAX;
    // Backward stopping state: once the backward top exceeds `mu` the
    // search freezes and its last top bounds every unsettled node;
    // once its heap drains, unsettled nodes cannot reach `dst` at all.
    let mut b_active = bidi;
    let mut b_floor: Cost = 0;
    let mut b_exhausted = false;

    loop {
        let Some(&Reverse(fkey)) = scratch.f_heap.peek() else {
            // Forward frontier drained: dst unreached. Only certain if
            // no pruned candidate could have led anywhere (every prune
            // was of a provably dst-unreachable head).
            return SearchOutcome {
                hit: None,
                certified: worst_prune == Cost::MAX,
                stats,
            };
        };
        let f_top_cost = (fkey >> 64) as Cost;

        // Advance the backward pruner while it is the cheaper side.
        while b_active {
            let Some(&Reverse(bkey)) = scratch.b_heap.peek() else {
                b_active = false;
                b_exhausted = true;
                break;
            };
            let b_cost = (bkey >> 32) as Cost;
            if b_cost > mu.saturating_sub(f_top_cost) {
                // The standard `top_f + top_b >= mu` termination
                // bound: every forward candidate from here on costs at
                // least `top_f`, so once the backward floor alone
                // pushes such a candidate past `mu`, settling more
                // backward nodes can only reprove prunes the floor
                // already delivers. Freezing here (rather than at
                // `top_b > mu`) is what keeps the backward side from
                // exploring `dst`'s whole `mu`-ball under its
                // underestimated weights.
                b_active = false;
                b_floor = b_cost;
                break;
            }
            if b_cost > f_top_cost {
                break; // forward's turn
            }
            scratch.b_heap.pop();
            let v = bkey as u32 as usize;
            if scratch.b_state[v] & B_SETTLED != 0 {
                continue; // stale lazy-deletion entry
            }
            scratch.b_state[v] |= B_SETTLED;
            stats.backward_settled += 1;
            // A forward-labelled, backward-settled node stitches a
            // concrete path: re-cost the backward chain under full
            // forward semantics to tighten `mu`.
            if scratch.f_state_of(v) & LABELLED != 0 {
                let lb = ((scratch.f_key[v] >> 64) as Cost).saturating_add(scratch.b_dist[v]);
                if lb < mu {
                    mu = mu.min(stitch(f, model, src, dst, scratch, v as u32));
                }
            }
            let rev = reverse.expect("backward side requires the reverse CSR");
            for (u, e) in rev.in_edges(NodeId::from_raw(v as u32)) {
                let edge = f.edge(e);
                let w = lower_bound_weight(f, model, src, u, e.raw(), edge);
                let cand = scratch.b_dist[v].saturating_add(w);
                let ui = u.index();
                let known = scratch.b_stamp[ui] == gen && scratch.b_state[ui] & B_LABELLED != 0;
                if known && scratch.b_state[ui] & B_SETTLED != 0 {
                    continue;
                }
                if !known || cand < scratch.b_dist[ui] {
                    scratch.b_stamp[ui] = gen;
                    scratch.b_dist[ui] = cand;
                    scratch.b_pred[ui] = (v as u32, e.raw());
                    scratch.b_state[ui] = B_LABELLED;
                    scratch.b_heap.push(Reverse(pack_bkey(cand, u.raw())));
                }
            }
        }

        // Forward extraction (the oracle's loop, verbatim).
        let Some(Reverse(key)) = scratch.f_heap.pop() else {
            return SearchOutcome {
                hit: None,
                certified: worst_prune == Cost::MAX,
                stats,
            };
        };
        let u_raw = key as u32;
        let ui = u_raw as usize;
        if scratch.f_state[ui] & MAPPED != 0 {
            continue; // superseded by a later improvement
        }
        scratch.f_state[ui] |= MAPPED;
        stats.settled += 1;
        if u_raw == dst.raw() {
            // Settled. Certified iff no pruned candidate could have
            // produced, improved, or tie-rewritten any label on the
            // answer's causal chain.
            let cost = (scratch.f_key[ui] >> 64) as Cost;
            return SearchOutcome {
                hit: Some(SearchHit {
                    cost,
                    hops: (scratch.f_key[ui] >> 32) as u32,
                    state: scratch.f_state[ui],
                }),
                certified: worst_prune > cost,
                stats,
            };
        }
        if bidi && scratch.b_state_of(ui) & B_SETTLED != 0 {
            let lb = ((scratch.f_key[ui] >> 64) as Cost).saturating_add(scratch.b_dist[ui]);
            if lb < mu {
                mu = mu.min(stitch(f, model, src, dst, scratch, u_raw));
            }
        }

        // Node-level prune: every candidate out of `u` costs at least
        // `u`'s cost plus a lower-bound edge weight, and `B(u)` is at
        // most that weight plus the head's own bound — so when
        // `cost(u) + B(u)` already exceeds `mu`, each outgoing
        // candidate would be pruned individually below; skip the whole
        // expansion. The recorded `worst_prune` value under-approximates
        // every skipped candidate's `cand + B(v)`, so certification
        // stays conservative (it can only fall back more, never
        // mis-certify).
        if bidi {
            let b_of_u = if scratch.b_state_of(ui) & B_SETTLED != 0 {
                scratch.b_dist[ui]
            } else if b_exhausted {
                Cost::MAX
            } else if b_active {
                scratch
                    .b_heap
                    .peek()
                    .map_or(Cost::MAX, |&Reverse(k)| (k >> 32) as Cost)
            } else {
                b_floor
            };
            let through = ((scratch.f_key[ui] >> 64) as Cost).saturating_add(b_of_u);
            if through > mu || (b_of_u == Cost::MAX && mu == Cost::MAX && b_exhausted) {
                worst_prune = worst_prune.min(through);
                stats.pruned += 1;
                continue;
            }
        }

        let tail = TailView::load(f, model, src, scratch, u_raw);
        let (base_edge, row) = f.edge_slice(NodeId::from_raw(u_raw));
        for (i, &edge) in row.iter().enumerate() {
            let e_raw = base_edge + i as u32;
            let v = edge.to();
            let vi = v.index();
            let vstate = scratch.f_state_of(vi);
            if vstate & MAPPED != 0 {
                continue;
            }
            let (cand_cost, cand_hops, cand_state) = eval_step(f, model, &tail, e_raw, edge);

            // The pruning rule. `B(v)`: exact once backward-settled;
            // otherwise the backward top (everything unsettled costs
            // at least that), the frozen floor, or — backward heap
            // drained — unreachable-from-dst, prune unconditionally.
            if bidi {
                let b_of_v = if scratch.b_state_of(vi) & B_SETTLED != 0 {
                    scratch.b_dist[vi]
                } else if b_exhausted {
                    Cost::MAX
                } else if b_active {
                    scratch
                        .b_heap
                        .peek()
                        .map_or(Cost::MAX, |&Reverse(k)| (k >> 32) as Cost)
                } else {
                    b_floor
                };
                let through = cand_cost.saturating_add(b_of_v);
                if through > mu || (b_of_v == Cost::MAX && mu == Cost::MAX && b_exhausted) {
                    worst_prune = worst_prune.min(through);
                    stats.pruned += 1;
                    continue;
                }
                if v == dst {
                    // The destination's own tentative label is a
                    // concrete path cost — a sound `mu` contribution.
                    mu = mu.min(cand_cost);
                }
            }

            let cand_key = pack_key(cand_cost, cand_hops, v.raw());
            let cand_pred = (u_raw, e_raw);
            if vstate & LABELLED == 0 {
                scratch.f_stamp[vi] = gen;
                scratch.f_key[vi] = cand_key;
                scratch.f_pred[vi] = cand_pred;
                scratch.f_state[vi] = cand_state;
                scratch.f_heap.push(Reverse(cand_key));
                stats.pushes += 1;
            } else {
                let old = scratch.f_key[vi];
                if cand_key < old {
                    scratch.f_key[vi] = cand_key;
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                    scratch.f_heap.push(Reverse(cand_key));
                    stats.pushes += 1;
                } else if cand_key == old && cand_pred < scratch.f_pred[vi] {
                    // The mapper's deterministic tie break.
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                }
            }
        }
    }
}

/// Re-costs the backward predecessor chain from `x` to `dst` under
/// full forward semantics, starting from `x`'s forward label. The
/// result is the cost of a concrete `src ⤳ x ⤳ dst` path — a valid
/// upper bound by construction.
fn stitch(
    f: &FrozenGraph,
    model: &CostModel,
    src: NodeId,
    dst: NodeId,
    scratch: &Scratch,
    x: u32,
) -> Cost {
    let mut tail = TailView::load(f, model, src, scratch, x);
    let mut guard = 0usize;
    while tail.u != dst.raw() {
        let (_, e_raw) = scratch.b_pred[tail.u as usize];
        debug_assert_ne!(e_raw, u32::MAX, "backward chain must reach dst");
        let edge = f.edge(EdgeId::from_raw(e_raw));
        let (cost, hops, state) = eval_step(f, model, &tail, e_raw, edge);
        let v = edge.to();
        let vflags = f.flags(v);
        let is_source = v == src;
        tail = TailView {
            u: v.raw(),
            cost,
            hops,
            state,
            pred_edge: Some(EdgeId::from_raw(e_raw)),
            is_domain: vflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && f.adjust(v) != 0,
            dead_extra: if !is_source && vflags.contains(NodeFlags::DEAD) {
                model.dead_penalty
            } else {
                0
            },
        };
        guard += 1;
        debug_assert!(guard <= f.node_count(), "backward chain cycled");
        if guard > f.node_count() {
            return Cost::MAX;
        }
    }
    tail.cost
}
